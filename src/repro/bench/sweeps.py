"""Parameter sweeps: machine-size scaling and paper-geometry runs.

The paper measured a 32-processor CM-5.  The default figures use 8 nodes
with scaled problems; this module provides

* :func:`node_scaling` — hold the problem fixed and sweep the node count,
  showing that the predictive protocol's advantage holds (and grows) as
  communication surface increases with the machine;
* :func:`paper_geometry_fig5` — a 32-node Adaptive comparison with the
  paper's rows-per-node ratio, for spot-checking that the 8-node defaults
  are not a geometry artifact.
"""

from __future__ import annotations

from repro.apps import adaptive, water
from repro.core import make_machine
from repro.util.config import MachineConfig
from repro.util.tables import format_table


def node_scaling(nodes_list=(2, 4, 8, 16), n: int = 96) -> str:
    """Water under unopt/opt while the machine grows."""
    rows = []
    for nodes in nodes_list:
        cfg = MachineConfig(n_nodes=nodes, page_size=512, block_size=32,
                            per_byte_cost=0.6)
        base = water.build(n=n, iterations=3, work_scale=8.0).run(
            make_machine(cfg, "stache"), optimized=False
        ).finish()
        pred = water.build(n=n, iterations=3, work_scale=8.0).run(
            make_machine(cfg, "predictive"), optimized=True
        ).finish()
        rows.append([
            nodes,
            base.wall_time,
            pred.wall_time,
            base.wall_time / pred.wall_time,
            pred.hit_rate,
        ])
    return format_table(
        ["nodes", "unopt cycles", "opt cycles", "speedup", "opt hit rate"],
        rows,
        title=f"Node-count scaling (Water, {n} molecules)",
        floatfmt=".4g",
    )


def paper_geometry_fig5(size: int = 64, iterations: int = 6) -> str:
    """Adaptive on 32 nodes with the paper's 128x128/32p row geometry
    (4 rows per node band): the Figure-5 headline at paper geometry."""
    cfg = MachineConfig(n_nodes=32, page_size=512, per_byte_cost=0.6)
    rows = []
    results = {}
    for label, protocol, opt, bs in [
        ("unopt (32)", "stache", False, 32),
        ("unopt (256)", "stache", False, 256),
        ("opt (32)", "predictive", True, 32),
        ("opt (256)", "predictive", True, 256),
    ]:
        prog = adaptive.build(size=size, iterations=iterations,
                              threshold=0.05, work_scale=8.0)
        m = make_machine(cfg.with_(block_size=bs), protocol)
        stats = prog.run(m, optimized=opt).finish()
        results[label] = stats.wall_time
        rows.append([label, stats.wall_time, stats.hit_rate])
    best_unopt = min(results["unopt (32)"], results["unopt (256)"])
    best_opt = min(results["opt (32)"], results["opt (256)"])
    out = format_table(
        ["version", "cycles", "hit rate"],
        rows,
        title=f"Adaptive at paper geometry: 32 nodes, {size}x{size} mesh",
        floatfmt=".4g",
    )
    return out + (
        f"\nbest-opt is {best_unopt / best_opt:.2f}x faster than best-unopt "
        f"(paper: 1.56x at 128x128; our refined stripe covers a smaller "
        f"fraction of larger meshes, shrinking the headline ratio while the "
        f"per-block-size ordering stays the paper's)"
    )
