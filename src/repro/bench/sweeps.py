"""Parameter sweeps: structured grids plus the legacy scaling tables.

The paper measured a 32-processor CM-5.  The default figures use 8 nodes
with scaled problems; this module provides

* :func:`sweep_grid` — the general Cartesian machine-parameter grid behind
  ``repro sweep``.  The same grid runs against two backends: ``"sim"``
  (one full simulation per point) and ``"model"`` (``repro.model``
  closed-form prediction — milliseconds per point, since cost-axis points
  reuse one cached walk).  Both backends emit *identical document shapes*
  (schema, row keys, row order), so a model grid is byte-comparable with a
  sim grid and diffable point by point;
* :func:`export_grid` — atomic JSON/CSV export for ``repro sweep --out``;
* :func:`node_scaling` — hold the problem fixed and sweep the node count,
  showing that the predictive protocol's advantage holds (and grows) as
  communication surface increases with the machine;
* :func:`paper_geometry_fig5` — a 32-node Adaptive comparison with the
  paper's rows-per-node ratio, for spot-checking that the 8-node defaults
  are not a geometry artifact.
"""

from __future__ import annotations

import pathlib

from repro.apps import adaptive, water
from repro.core import make_machine
from repro.util.config import MachineConfig
from repro.util.errors import ConfigError
from repro.util.tables import format_table

SWEEP_SCHEMA = "repro.sweep/v1"

#: recognized grid axes, in canonical (document and CLI) order; "protocol"
#: selects the coherence protocol, the rest are MachineConfig fields
SWEEP_AXES = ("protocol", "n_nodes", "block_size", "msg_latency",
              "per_byte_cost", "fault_cost", "handler_cost")

#: per-point metrics every backend must fill, in column order
GRID_COLUMNS = ("wall_time", "compute", "remote_wait", "predictive",
                "synch", "misses", "local_hits", "messages",
                "bytes_on_wire", "presend_blocks_sent")


def _grid_points(axes: dict) -> list[dict]:
    """Cartesian product of axis values in canonical axis order."""
    import itertools

    for name in axes:
        if name not in SWEEP_AXES:
            raise ConfigError(
                f"unknown sweep axis {name!r}; expected one of {SWEEP_AXES}")
        if not axes[name]:
            raise ConfigError(f"sweep axis {name!r} has no values")
    names = [a for a in SWEEP_AXES if a in axes]
    return [dict(zip(names, values))
            for values in itertools.product(*(axes[n] for n in names))]


def _point_row(point: dict, stats) -> dict:
    """One grid row: the point's axis values plus the shared metric columns
    (mean cycles per category, as in the paper's figures)."""
    from repro.sim.stats import TimeCategory

    totals = stats.totals()
    row = dict(point)
    row.update(
        wall_time=float(stats.wall_time),
        compute=float(totals[TimeCategory.COMPUTE]),
        remote_wait=float(totals[TimeCategory.REMOTE_WAIT]),
        predictive=float(totals[TimeCategory.PREDICTIVE]),
        synch=float(totals[TimeCategory.SYNCH]),
        misses=int(stats.misses),
        local_hits=int(stats.local_hits),
        messages=int(stats.messages),
        bytes_on_wire=int(stats.bytes_on_wire),
        presend_blocks_sent=int(sum(n.presend_blocks_sent
                                    for n in stats.nodes)),
    )
    return row


def sweep_grid(app, build_kwargs: dict, *, base_config: MachineConfig,
               axes: dict, backend: str = "sim", protocol: str = "stache",
               optimized: bool = False, variant: str = "cstar",
               calibration=None, fast: bool = False,
               progress=None) -> dict:
    """Run one Cartesian parameter grid; returns a ``repro.sweep/v1`` doc.

    ``axes`` maps axis names (:data:`SWEEP_AXES`) to value lists; fields
    not swept come from ``base_config`` (and ``protocol``/``optimized``).
    The document is fully deterministic — wall-clock timing is *not*
    recorded here so sim- and model-backed grids of the same spec differ
    only where their simulated/predicted numbers differ (callers that want
    seconds measure around this call; see ``repro.model.validate``).
    """
    if backend not in ("sim", "model"):
        raise ConfigError(f"unknown sweep backend {backend!r}")
    points = _grid_points(axes)
    rows = []
    for i, point in enumerate(points):
        proto = point.get("protocol", protocol)
        cfg = base_config.with_(
            **{k: v for k, v in point.items() if k != "protocol"})
        if progress is not None:
            progress(f"[{backend}] point {i + 1}/{len(points)}: "
                     + ", ".join(f"{k}={v}" for k, v in point.items()))
        if backend == "sim":
            from repro.bench.harness import VersionSpec, run_version

            spec = VersionSpec(f"sweep point {i}", app, proto, optimized,
                               cfg, dict(build_kwargs), variant=variant)
            stats = run_version(spec, fast=fast).stats
        else:
            from repro.model.predictor import predict

            stats = predict(app, dict(build_kwargs), protocol=proto,
                            optimized=optimized, config=cfg,
                            variant=variant, calibration=calibration).stats
        rows.append(_point_row(point, stats))
    from dataclasses import asdict

    return {
        "schema": SWEEP_SCHEMA,
        "app": app.__name__.rsplit(".", 1)[-1],
        "variant": variant,
        "backend": backend,
        "protocol": protocol,
        "optimized": optimized,
        "build_kwargs": dict(build_kwargs),
        "base_config": asdict(base_config),
        "axes": {k: list(axes[k]) for k in SWEEP_AXES if k in axes},
        "columns": list(GRID_COLUMNS),
        "rows": rows,
    }


def render_grid(doc: dict) -> str:
    """Human-readable table of a sweep document."""
    axis_names = list(doc["axes"])
    headers = axis_names + [c for c in doc["columns"]
                            if c in ("wall_time", "remote_wait", "misses",
                                     "messages")]
    rows = [[row[h] for h in headers] for row in doc["rows"]]
    return format_table(
        headers, rows,
        title=(f"{doc['app']} sweep [{doc['backend']}] "
               f"({len(doc['rows'])} points)"),
        floatfmt=".4g",
    )


def export_grid(path, doc: dict) -> None:
    """Atomically export a sweep document as ``.json`` or ``.csv``.

    The CSV projection holds the rows only (axis columns then metric
    columns, same order as the JSON), so either format is diffable
    between backends.
    """
    from repro.util.atomicio import atomic_write_json, atomic_write_text

    out = pathlib.Path(path)
    if out.suffix == ".json":
        atomic_write_json(out, doc)
    elif out.suffix == ".csv":
        import csv
        import io

        headers = list(doc["axes"]) + list(doc["columns"])
        buf = io.StringIO()
        writer = csv.writer(buf, lineterminator="\n")
        writer.writerow(headers)
        for row in doc["rows"]:
            writer.writerow([row[h] for h in headers])
        atomic_write_text(out, buf.getvalue())
    else:
        raise ConfigError(
            f"unsupported sweep export format {out.suffix!r} "
            f"(want .json or .csv)")


def node_scaling(nodes_list=(2, 4, 8, 16), n: int = 96) -> str:
    """Water under unopt/opt while the machine grows."""
    rows = []
    for nodes in nodes_list:
        cfg = MachineConfig(n_nodes=nodes, page_size=512, block_size=32,
                            per_byte_cost=0.6)
        base = water.build(n=n, iterations=3, work_scale=8.0).run(
            make_machine(cfg, "stache"), optimized=False
        ).finish()
        pred = water.build(n=n, iterations=3, work_scale=8.0).run(
            make_machine(cfg, "predictive"), optimized=True
        ).finish()
        rows.append([
            nodes,
            base.wall_time,
            pred.wall_time,
            base.wall_time / pred.wall_time,
            pred.hit_rate,
        ])
    return format_table(
        ["nodes", "unopt cycles", "opt cycles", "speedup", "opt hit rate"],
        rows,
        title=f"Node-count scaling (Water, {n} molecules)",
        floatfmt=".4g",
    )


def paper_geometry_fig5(size: int = 64, iterations: int = 6) -> str:
    """Adaptive on 32 nodes with the paper's 128x128/32p row geometry
    (4 rows per node band): the Figure-5 headline at paper geometry."""
    cfg = MachineConfig(n_nodes=32, page_size=512, per_byte_cost=0.6)
    rows = []
    results = {}
    for label, protocol, opt, bs in [
        ("unopt (32)", "stache", False, 32),
        ("unopt (256)", "stache", False, 256),
        ("opt (32)", "predictive", True, 32),
        ("opt (256)", "predictive", True, 256),
    ]:
        prog = adaptive.build(size=size, iterations=iterations,
                              threshold=0.05, work_scale=8.0)
        m = make_machine(cfg.with_(block_size=bs), protocol)
        stats = prog.run(m, optimized=opt).finish()
        results[label] = stats.wall_time
        rows.append([label, stats.wall_time, stats.hit_rate])
    best_unopt = min(results["unopt (32)"], results["unopt (256)"])
    best_opt = min(results["opt (32)"], results["opt (256)"])
    out = format_table(
        ["version", "cycles", "hit rate"],
        rows,
        title=f"Adaptive at paper geometry: 32 nodes, {size}x{size} mesh",
        floatfmt=".4g",
    )
    return out + (
        f"\nbest-opt is {best_unopt / best_opt:.2f}x faster than best-unopt "
        f"(paper: 1.56x at 128x128; our refined stripe covers a smaller "
        f"fraction of larger meshes, shrinking the headline ratio while the "
        f"per-block-size ordering stays the paper's)"
    )
