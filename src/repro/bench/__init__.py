"""The benchmark harness: regenerates every table and figure of the paper.

* :mod:`repro.bench.harness` — run one application version on one machine
  configuration; collect the paper's three-segment time breakdown.
* :mod:`repro.bench.figures` — frozen configurations for Table 1 and
  Figures 5/6/7, with shape checks against the paper's claims.
* :mod:`repro.bench.ablations` — design-choice ablations called out in the
  paper's text (block coalescing, incremental vs. rebuilt schedules,
  schedule flushing under deletions, block-size sweeps).

Scaled sizes: pure-Python simulation is orders of magnitude slower per
simulated access than the CM-5, so default problem sizes are reduced
(Table 1 prints both).  The machine keeps 8 nodes with the paper's
geometry preserved (thin row bands, one C** cell object per 32-byte
block); EXPERIMENTS.md records paper-vs-measured shape for every figure.
"""

from repro.bench.harness import VersionSpec, VersionResult, FigureResult, run_version
from repro.bench.figures import fig5_adaptive, fig6_barnes, fig7_water, table1

__all__ = [
    "VersionSpec",
    "VersionResult",
    "FigureResult",
    "run_version",
    "fig5_adaptive",
    "fig6_barnes",
    "fig7_water",
    "table1",
]
