"""Frozen configurations regenerating Table 1 and Figures 5-7.

Every figure function runs the same version matrix the paper plots and
returns a :class:`~repro.bench.harness.FigureResult`; ``check_*`` functions
assert the paper's qualitative claims hold (tests and benches share them).

Calibration notes (full rationale in EXPERIMENTS.md):

* problem sizes are scaled down (pure-Python simulator); the machine keeps
  8 nodes with the paper's *geometry* (rows-per-node, cells-per-block);
* ``per_byte_cost`` reflects CM-5 per-node bandwidth (~0.6 B/cycle);
* each app's ``work_scale`` positions the compute/communication balance
  where the paper's 33 MHz nodes had it.
"""

from __future__ import annotations

from repro.apps import adaptive, barnes, water
from repro.bench.harness import FigureResult, VersionSpec, run_specs, run_version
from repro.util.config import MachineConfig
from repro.util.tables import format_table

# --------------------------------------------------------------------------- #
# Table 1
# --------------------------------------------------------------------------- #

TABLE1_ROWS = [
    ["Adaptive", "Structured adaptive mesh", "128x128 mesh, 100 iterations",
     "16x16 mesh, 10 iterations"],
    ["Barnes", "Gravitational N-body simulation", "16384 bodies, 3 iterations",
     "128 bodies, 3 iterations"],
    ["Water", "Molecular dynamics", "512 molecules, 20 iterations",
     "96 molecules, 4 iterations"],
]


def table1() -> str:
    return format_table(
        ["Program", "Brief Description", "Paper data set", "Scaled data set"],
        TABLE1_ROWS,
        title="Table 1: Benchmark applications",
    )


# --------------------------------------------------------------------------- #
# Figure 5: Adaptive
# --------------------------------------------------------------------------- #

ADAPTIVE_KW = dict(size=16, iterations=10, threshold=0.05, work_scale=8.0)
ADAPTIVE_CFG = MachineConfig(n_nodes=8, page_size=512, per_byte_cost=0.6)


def fig5_adaptive(fast: bool = False, jobs: int = 1,
                  corpus=None) -> FigureResult:
    """Four C** versions of Adaptive: {unopt, opt} x {32 B, 256 B} blocks."""
    specs = [
        VersionSpec("C** unopt (32)", adaptive, "stache", False,
                    ADAPTIVE_CFG.with_(block_size=32), ADAPTIVE_KW),
        VersionSpec("C** unopt (256)", adaptive, "stache", False,
                    ADAPTIVE_CFG.with_(block_size=256), ADAPTIVE_KW),
        VersionSpec("C** opt (32)", adaptive, "predictive", True,
                    ADAPTIVE_CFG.with_(block_size=32), ADAPTIVE_KW),
        VersionSpec("C** opt (256)", adaptive, "predictive", True,
                    ADAPTIVE_CFG.with_(block_size=256), ADAPTIVE_KW),
    ]
    fig = FigureResult(
        "Figure 5",
        "Execution time for 4 C** versions of Adaptive",
        run_specs(specs, jobs=jobs, fast=fast, corpus=corpus),
    )
    best_unopt = min(fig.result("C** unopt (32)").wall,
                     fig.result("C** unopt (256)").wall)
    best_opt = min(fig.result("C** opt (32)").wall,
                   fig.result("C** opt (256)").wall)
    fig.notes.append(
        f"best optimized is {best_unopt / best_opt:.2f}x faster than best "
        f"unoptimized (paper: 1.56x)"
    )
    return fig


def check_fig5(fig: FigureResult) -> None:
    """The paper's Figure-5 claims."""
    # the predictive protocol reduces shared-data wait time (32 B)
    assert (
        fig.result("C** opt (32)").breakdown()["Remote data wait"]
        < fig.result("C** unopt (32)").breakdown()["Remote data wait"]
    )
    # 256 B is the best case for the unoptimized program
    assert (
        fig.result("C** unopt (256)").wall < fig.result("C** unopt (32)").wall
    )
    # the predictive protocol is less effective at larger blocks
    gain_32 = fig.result("C** unopt (32)").wall / fig.result("C** opt (32)").wall
    gain_256 = fig.result("C** unopt (256)").wall / fig.result("C** opt (256)").wall
    assert gain_32 > gain_256
    # best optimized clearly faster than best unoptimized (paper: 1.56x)
    best_unopt = min(fig.result("C** unopt (32)").wall,
                     fig.result("C** unopt (256)").wall)
    best_opt = min(fig.result("C** opt (32)").wall,
                   fig.result("C** opt (256)").wall)
    assert best_unopt / best_opt > 1.3


# --------------------------------------------------------------------------- #
# Figure 6: Barnes
# --------------------------------------------------------------------------- #

BARNES_KW = dict(n=128, iterations=3, theta=0.6, dt=0.15, vel_scale=1.0,
                 work_scale=5.0)
BARNES_CFG = MachineConfig(n_nodes=8, page_size=1024, per_byte_cost=1.15)


def fig6_barnes(fast: bool = False, jobs: int = 1,
                corpus=None) -> FigureResult:
    """Five versions of Barnes: {unopt, opt} x {32 B, 1024 B} + SPMD."""
    specs = [
        VersionSpec("C** unopt (32)", barnes, "stache", False,
                    BARNES_CFG.with_(block_size=32), BARNES_KW),
        VersionSpec("C** unopt (1024)", barnes, "stache", False,
                    BARNES_CFG.with_(block_size=1024), BARNES_KW),
        VersionSpec("C** opt (32)", barnes, "predictive", True,
                    BARNES_CFG.with_(block_size=32), BARNES_KW),
        VersionSpec("C** opt (1024)", barnes, "predictive", True,
                    BARNES_CFG.with_(block_size=1024), BARNES_KW),
        VersionSpec("SPMD (32)", barnes, "write-update", False,
                    BARNES_CFG.with_(block_size=32), BARNES_KW,
                    variant="spmd"),
    ]
    fig = FigureResult(
        "Figure 6",
        "Execution time for 5 versions of Barnes",
        run_specs(specs, jobs=jobs, fast=fast, corpus=corpus),
    )
    fig.notes.append(
        "paper: at 32 B the optimized version wins on remote wait; at "
        "1024 B spatial locality makes the versions comparable, with the "
        "unoptimized one marginally ahead; SPMD lands in the same near-tie"
    )
    return fig


def check_fig6(fig: FigureResult) -> None:
    # communication optimization reduces wait time significantly at 32 B
    assert (
        fig.result("C** opt (32)").breakdown()["Remote data wait"]
        < 0.8 * fig.result("C** unopt (32)").breakdown()["Remote data wait"]
    )
    # excellent spatial locality: 1024 B blocks are a big win for unopt
    assert (
        fig.result("C** unopt (1024)").wall
        < 0.6 * fig.result("C** unopt (32)").wall
    )
    # at 1024 B the optimized and unoptimized versions are comparable
    r = (fig.result("C** opt (1024)").wall
         / fig.result("C** unopt (1024)").wall)
    assert 0.85 < r < 1.2
    # the top three versions (both 1024 B + SPMD) form a near-tie
    top = [fig.result("C** opt (1024)").wall,
           fig.result("C** unopt (1024)").wall,
           fig.result("SPMD (32)").wall]
    assert max(top) / min(top) < 1.25


# --------------------------------------------------------------------------- #
# Figure 7: Water
# --------------------------------------------------------------------------- #

WATER_KW = dict(n=96, iterations=4, work_scale=60.0)
WATER_CFG = MachineConfig(n_nodes=8, page_size=512, per_byte_cost=0.6)


def fig7_water(fast: bool = False, jobs: int = 1,
               corpus=None) -> FigureResult:
    """Three versions of Water: C** opt, C** unopt, and Splash.

    Block sizes per version are each version's best case, as in the paper.
    """
    specs = [
        VersionSpec("C** unopt (64)", water, "stache", False,
                    WATER_CFG.with_(block_size=64), WATER_KW),
        VersionSpec("C** opt (32)", water, "predictive", True,
                    WATER_CFG.with_(block_size=32), WATER_KW),
        VersionSpec("Splash (64)", water, "stache", False,
                    WATER_CFG.with_(block_size=64), WATER_KW,
                    variant="splash"),
    ]
    fig = FigureResult(
        "Figure 7",
        "Execution time for 3 versions of Water",
        run_specs(specs, jobs=jobs, fast=fast, corpus=corpus),
    )
    fig.notes.append(
        f"opt is {fig.relative('C** unopt (64)'):.2f}x over unopt "
        f"(paper: 1.05x) and {fig.relative('Splash (64)'):.2f}x over "
        f"Splash (paper: 1.2x)"
    )
    return fig


def check_fig7(fig: FigureResult) -> None:
    # optimization reduces shared-memory wait time
    assert (
        fig.result("C** opt (32)").breakdown()["Remote data wait"]
        < fig.result("C** unopt (64)").breakdown()["Remote data wait"]
    )
    # ... with a small overall improvement (paper: 1.05x)
    r = fig.result("C** unopt (64)").wall / fig.result("C** opt (32)").wall
    assert 1.0 < r < 1.2
    # the optimized version clearly beats Splash (paper: 1.2x)
    r = fig.result("Splash (64)").wall / fig.result("C** opt (32)").wall
    assert r > 1.1
