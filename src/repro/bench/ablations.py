"""Ablations of the design choices the paper's text calls out.

(a) **Block coalescing** (§3.4): the pre-send phase transfers runs of
    neighboring blocks in bulk messages "to amortize message startup
    costs".  We run Water optimized with coalescing on/off.
(b) **Incremental schedules vs. rebuild** (§3.3, §2): schedules grow
    incrementally instead of being rebuilt whenever the pattern changes
    (the inspector-executor approach re-runs its inspector).  We run
    Adaptive with ``rebuild_every_group`` on/off.
(c) **Deletions and schedule flushing** (§3.3): the protocol does not
    track deletions, so a shifting consumer set accumulates useless
    pre-sends until the schedule is flushed.  A synthetic producer-consumer
    workload with a rotating consumer set measures useless transfers with
    and without periodic flushes.
(d) **Block-size sweep** (§5, "we experimented with different cache block
    sizes"): the predictive protocol works best at small blocks.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

from repro.apps import adaptive, water
from repro.core import make_machine
from repro.core.predictive import PredictiveProtocol
from repro.tempest.machine import PhaseTrace
from repro.tempest.tags import AccessTag
from repro.util.config import MachineConfig
from repro.util.tables import format_table


@contextmanager
def predictive_knobs(coalesce: bool = True, rebuild: bool = False,
                     anticipate: bool = False):
    """Temporarily flip PredictiveProtocol's class-level policy knobs."""
    saved = (PredictiveProtocol.coalesce_presend,
             PredictiveProtocol.rebuild_every_group,
             PredictiveProtocol.anticipate_conflicts)
    PredictiveProtocol.coalesce_presend = coalesce
    PredictiveProtocol.rebuild_every_group = rebuild
    PredictiveProtocol.anticipate_conflicts = anticipate
    try:
        yield
    finally:
        (PredictiveProtocol.coalesce_presend,
         PredictiveProtocol.rebuild_every_group,
         PredictiveProtocol.anticipate_conflicts) = saved


# --------------------------------------------------------------------------- #
# (a) coalescing
# --------------------------------------------------------------------------- #


def ablation_coalescing(n: int = 96, iterations: int = 4) -> str:
    cfg = MachineConfig(n_nodes=8, page_size=512, block_size=32, per_byte_cost=0.6)
    rows = []
    results = {}
    for coalesce in (True, False):
        with predictive_knobs(coalesce=coalesce):
            prog = water.build(n=n, iterations=iterations, work_scale=8.0)
            m = make_machine(cfg, "predictive")
            stats = prog.run(m, optimized=True).finish()
        results[coalesce] = stats
        rows.append([
            "coalesced (bulk messages)" if coalesce else "one message per block",
            stats.wall_time,
            stats.figure_breakdown()["Predictive protocol"],
            float(m.protocol.presend_messages),
            float(m.protocol.presend_blocks),
        ])
    out = format_table(
        ["pre-send policy", "wall cycles", "predictive cycles",
         "pre-send msgs", "blocks sent"],
        rows,
        title="Ablation (a): pre-send block coalescing (Water, optimized, 32 B)",
        floatfmt=".4g",
    )
    speed = results[False].wall_time / results[True].wall_time
    return out + f"\ncoalescing speeds the run by {speed:.2f}x"


def check_coalescing() -> tuple[float, str]:
    report = ablation_coalescing()
    speed = float(report.rsplit(" ", 1)[-1].rstrip("x"))
    return speed, report


# --------------------------------------------------------------------------- #
# (b) incremental vs rebuild
# --------------------------------------------------------------------------- #


def ablation_incremental(size: int = 16, iterations: int = 10) -> str:
    cfg = MachineConfig(n_nodes=8, page_size=512, block_size=32, per_byte_cost=0.6)
    rows = []
    results = {}
    for rebuild in (False, True):
        with predictive_knobs(rebuild=rebuild):
            prog = adaptive.build(size=size, iterations=iterations,
                                  threshold=0.05, work_scale=8.0)
            m = make_machine(cfg, "predictive")
            stats = prog.run(m, optimized=True).finish()
        results[rebuild] = stats
        rows.append([
            "rebuilt every phase (inspector-executor style)" if rebuild
            else "incremental (this paper)",
            stats.wall_time,
            float(stats.misses),
            stats.hit_rate,
        ])
    out = format_table(
        ["schedule policy", "wall cycles", "misses", "hit rate"],
        rows,
        title="Ablation (b): incremental schedules vs. rebuild (Adaptive, optimized)",
        floatfmt=".4g",
    )
    speed = results[True].wall_time / results[False].wall_time
    return out + f"\nincremental schedules speed the run by {speed:.2f}x"


# --------------------------------------------------------------------------- #
# (c) deletions + flush
# --------------------------------------------------------------------------- #


def _rotating_consumer_run(
    iterations: int, shift_every: int, flush_every: int | None,
    n_nodes: int = 8, blocks_per_phase: int = 24,
) -> tuple[float, int]:
    """Producer-consumer with a consumer set that rotates every
    ``shift_every`` iterations (deletions the schedule cannot track).

    Returns (wall_time, useless_presends).
    """
    cfg = MachineConfig(n_nodes=n_nodes, block_size=32, page_size=512)
    m = make_machine(cfg, "predictive")
    region = m.addr_space.allocate("data", 8 * cfg.page_size,
                                   home_policy=lambda p: 0)
    first = m.addr_space.block_of(region.base)
    for b in range(first, first + region.size // cfg.block_size):
        m.nodes[0].tags.set(b, AccessTag.READ_WRITE)
    blocks = list(range(first, first + blocks_per_phase))

    for it in range(iterations):
        consumer = 1 + (it // shift_every) % (n_nodes - 1)
        if flush_every is not None and it % flush_every == 0 and it > 0:
            m.protocol.flush_schedule(1)
        # read phase: current consumer reads all blocks
        m.begin_group(1)
        ops = [[] for _ in range(n_nodes)]
        ops[consumer] = [("r", b) for b in blocks]
        m.run_phase(PhaseTrace(f"read#{it}", ops))
        m.end_group()
        # write phase: producer updates all blocks
        m.begin_group(2)
        ops = [[] for _ in range(n_nodes)]
        ops[0] = [("w", b) for b in blocks]
        m.run_phase(PhaseTrace(f"write#{it}", ops))
        m.end_group()
    stats = m.finish()
    useless = sum(nd.presend_useless_blocks for nd in stats.nodes)
    return stats.wall_time, useless


def ablation_flush(iterations: int = 24, shift_every: int = 6) -> str:
    rows = []
    results = {}
    for label, flush_every in [("never flushed", None),
                               ("flushed at each shift", shift_every)]:
        wall, useless = _rotating_consumer_run(iterations, shift_every, flush_every)
        results[label] = wall
        rows.append([label, wall, float(useless)])
    out = format_table(
        ["flush policy", "wall cycles", "useless pre-sent blocks"],
        rows,
        title="Ablation (c): deletions accumulate useless pre-sends until a "
              "flush (rotating consumer)",
        floatfmt=".4g",
    )
    speed = results["never flushed"] / results["flushed at each shift"]
    return out + f"\nflushing at pattern shifts speeds the run by {speed:.2f}x"


# --------------------------------------------------------------------------- #
# (d) block-size sweep
# --------------------------------------------------------------------------- #


def ablation_latency_sweep(latencies=(100, 300, 1000, 3000)) -> str:
    """§5.4: "This technique is beneficial on multiprocessor machines with
    significant remote memory access latency ... The tradeoff is likely to
    be different for shared-memory multiprocessors or hardware-assisted
    DSMs, which have smaller remote access latencies."

    Sweep the network latency from hardware-DSM-like (100 cycles) to
    software-DSM-like (3000 cycles) and measure the predictive protocol's
    speedup on Water.
    """
    rows = []
    for lat in latencies:
        cfg = MachineConfig(n_nodes=8, page_size=512, block_size=32,
                            per_byte_cost=0.6, msg_latency=lat,
                            handler_cost=max(25, lat // 8))
        base = water.build(n=48, iterations=4, work_scale=8.0).run(
            make_machine(cfg, "stache"), optimized=False
        ).finish()
        pred = water.build(n=48, iterations=4, work_scale=8.0).run(
            make_machine(cfg, "predictive"), optimized=True
        ).finish()
        rows.append([
            lat,
            base.wall_time,
            pred.wall_time,
            base.wall_time / pred.wall_time,
        ])
    return format_table(
        ["msg latency (cycles)", "unopt cycles", "opt cycles", "speedup"],
        rows,
        title="Ablation (e): predictive pre-sending pays off with remote "
              "latency (§5.4) — hardware DSMs gain less",
        floatfmt=".4g",
    )


def ablation_block_sweep(sizes=(32, 64, 128, 256)) -> str:
    rows = []
    for bs in sizes:
        cfg = MachineConfig(n_nodes=8, page_size=512, block_size=bs,
                            per_byte_cost=0.6)
        gains = {}
        prog = adaptive.build(size=16, iterations=8, threshold=0.05,
                              work_scale=8.0)
        m_base = make_machine(cfg, "stache")
        base = prog.run(m_base, optimized=False).finish()
        prog2 = adaptive.build(size=16, iterations=8, threshold=0.05,
                               work_scale=8.0)
        m_pred = make_machine(cfg, "predictive")
        pred = prog2.run(m_pred, optimized=True).finish()
        rows.append([
            bs,
            base.wall_time,
            pred.wall_time,
            base.wall_time / pred.wall_time,
        ])
    return format_table(
        ["block size", "unopt cycles", "opt cycles", "speedup"],
        rows,
        title="Ablation (d): the predictive protocol works best at small "
              "blocks (Adaptive)",
        floatfmt=".4g",
    )
