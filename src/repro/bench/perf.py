"""Wall-clock benchmarks and regression gate for the compiled fast path.

The suite times the Table-1 workloads (the Figure 5-7 configurations from
:mod:`repro.bench.figures`) on both the reference path and the compiled
fast path (:mod:`repro.fastpath`), plus a lock-step microbenchmark that
isolates pure per-event engine overhead.  Every pair of runs must agree on
``wall_time`` and ``total_dispatched`` — the fast path is bit-identical by
contract, so any divergence is a hard error, not a perf number.

Snapshots (``benchmarks/BENCH_baseline.json`` / ``BENCH_fastpath.json``,
schema :data:`BENCH_SCHEMA`) embed the per-workload timings, the measured
speedups, and the runs' stats as a ``repro.metrics/v1`` registry.  The
regression gate (:func:`compare_snapshots`) is **ratio-based**: absolute
seconds are machine-dependent, but the fastpath/baseline speedup measured
in one process is stable, so CI re-measures the quick profile and fails
when a speedup falls more than ``tolerance`` below the committed one.

See ``docs/PERFORMANCE.md`` for the measured trajectory and the analysis
of why the bit-identical 1:1 event mandate bounds the achievable speedup.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core import make_machine
from repro.obs.metrics import MetricsRegistry, registry_from_run
from repro.sim.stats import RunStats
from repro.tempest.machine import PhaseTrace
from repro.util.config import MachineConfig
from repro.util.errors import SimulationError

BENCH_SCHEMA = "repro.bench/v1"

#: synthetic pseudo-app label for the engine microbenchmark
MICROBENCH = "microbench/lockstep"


@dataclass(frozen=True)
class BenchCase:
    """One benchmarked workload configuration."""

    label: str
    app: str  # app module name under repro.apps, or MICROBENCH
    protocol: str
    optimized: bool
    block_size: int
    build_kwargs: dict
    profile: str  # "full" (committed numbers) or "quick" (CI gate)


def _figure_cases() -> list[BenchCase]:
    from repro.bench.figures import (
        ADAPTIVE_KW,
        BARNES_KW,
        WATER_KW,
    )

    full = [
        BenchCase("adaptive/stache-unopt (32)", "adaptive", "stache", False,
                  32, dict(ADAPTIVE_KW), "full"),
        BenchCase("adaptive/predictive-opt (32)", "adaptive", "predictive",
                  True, 32, dict(ADAPTIVE_KW), "full"),
        BenchCase("barnes/predictive-opt (32)", "barnes", "predictive", True,
                  32, dict(BARNES_KW), "full"),
        BenchCase("water/stache-unopt (64)", "water", "stache", False,
                  64, dict(WATER_KW), "full"),
        BenchCase("water/predictive-opt (32)", "water", "predictive", True,
                  32, dict(WATER_KW), "full"),
        BenchCase("water/predictive-opt (256)", "water", "predictive", True,
                  256, dict(WATER_KW), "full"),
        BenchCase(MICROBENCH, MICROBENCH, "predictive", True, 32, {}, "full"),
    ]
    quick = [
        BenchCase("adaptive/quick (32)", "adaptive", "predictive", True,
                  32, dict(ADAPTIVE_KW, iterations=3), "quick"),
        BenchCase("water/quick (32)", "water", "predictive", True,
                  32, dict(WATER_KW, iterations=2), "quick"),
        BenchCase(MICROBENCH + " quick", MICROBENCH, "predictive", True, 32,
                  dict(ops=20_000), "quick"),
    ]
    return full + quick


def table1_cases(profile: str | None = None) -> list[BenchCase]:
    """The benchmark matrix; ``profile`` filters to "full" or "quick"."""
    cases = _figure_cases()
    if profile is None:
        return cases
    return [c for c in cases if c.profile == profile]


def _case_config(case: BenchCase) -> MachineConfig:
    from repro.bench.figures import ADAPTIVE_CFG, BARNES_CFG, WATER_CFG

    base = {
        "adaptive": ADAPTIVE_CFG,
        "barnes": BARNES_CFG,
        "water": WATER_CFG,
        MICROBENCH: MachineConfig(n_nodes=8, page_size=512),
    }[case.app]
    return base.with_(block_size=case.block_size)


@dataclass
class CaseResult:
    case: BenchCase
    fast: bool
    sim_seconds: float
    total_seconds: float
    wall_cycles: float
    events: int
    stats: RunStats


def _run_microbench(case: BenchCase, fast: bool) -> tuple[float, RunStats, int]:
    """Pure engine overhead: all nodes compute in lock step, one op per
    dispatch (every op advances time past the peers' horizon)."""
    cfg = _case_config(case)
    ops_per_node = int(case.build_kwargs.get("ops", 100_000))
    machine = make_machine(cfg, case.protocol, fast=fast)
    trace = PhaseTrace(
        "micro", [[("c", 1.0)] * ops_per_node
                  for _ in range(cfg.n_nodes)]
    )
    t0 = time.perf_counter()
    machine.run_phase(trace)
    elapsed = time.perf_counter() - t0
    stats = machine.finish()
    return elapsed, stats, machine.engine.total_dispatched


def _run_app(case: BenchCase, fast: bool,
             warm=None) -> tuple[float, float, RunStats, int]:
    """One timed run; returns (sim_seconds, total_seconds, stats, events).

    ``sim_seconds`` covers ``run_phase`` + ``begin_group`` only — the part
    the fast path accelerates; trace generation (app physics) is identical
    Python on both paths and would only dilute the ratio.
    """
    import repro.apps as apps

    app = getattr(apps, case.app)
    prog = app.build(**case.build_kwargs)
    machine = make_machine(_case_config(case), case.protocol, fast=fast,
                           warm=warm)

    sim = [0.0]
    inner_run_phase = machine.run_phase
    inner_begin_group = machine.begin_group

    def run_phase(trace):
        t0 = time.perf_counter()
        try:
            return inner_run_phase(trace)
        finally:
            sim[0] += time.perf_counter() - t0

    def begin_group(directive_id):
        t0 = time.perf_counter()
        try:
            return inner_begin_group(directive_id)
        finally:
            sim[0] += time.perf_counter() - t0

    machine.run_phase = run_phase
    machine.begin_group = begin_group
    t0 = time.perf_counter()
    env = prog.run(machine, optimized=case.optimized)
    stats = env.finish()
    total = time.perf_counter() - t0
    return sim[0], total, stats, machine.engine.total_dispatched


def run_case(case: BenchCase, fast: bool, repeats: int = 3,
             warm=None) -> CaseResult:
    """Best-of-``repeats`` timing of one case on one path.

    ``warm`` (corpus schedule records) must be supplied to *both* paths of
    a pair identically — the ref/fast bit-identity check compares their
    simulated results, and warming only one side would be a false
    divergence.  The microbenchmark has no shared data and ignores it.
    """
    best_sim = best_total = float("inf")
    stats = None
    events = 0
    for _ in range(max(1, repeats)):
        if case.app == MICROBENCH:
            elapsed, stats, events = _run_microbench(case, fast)
            sim_s = total_s = elapsed
        else:
            sim_s, total_s, stats, events = _run_app(case, fast, warm=warm)
        best_sim = min(best_sim, sim_s)
        best_total = min(best_total, total_s)
    return CaseResult(case, fast, best_sim, best_total,
                      stats.wall_time, events, stats)


def measure(cases, repeats: int = 3):
    """Run every case on both paths; enforce simulated-result equality.

    Returns ``[(reference, fastpath), ...]`` pairs.  A ``wall_time`` or
    event-count divergence means the fast path broke its bit-identical
    contract and raises immediately — perf numbers for a wrong simulation
    are meaningless.
    """
    pairs = []
    for case in cases:
        ref = run_case(case, fast=False, repeats=repeats)
        fst = run_case(case, fast=True, repeats=repeats)
        if ref.wall_cycles != fst.wall_cycles or ref.events != fst.events:
            raise SimulationError(
                f"fast path diverged on {case.label!r}: "
                f"wall {ref.wall_cycles} vs {fst.wall_cycles}, "
                f"events {ref.events} vs {fst.events}"
            )
        pairs.append((ref, fst))
    return pairs


def _workload_row(result: CaseResult, paired: CaseResult | None) -> dict:
    case = result.case
    row = {
        "label": case.label,
        "app": case.app,
        "protocol": case.protocol,
        "optimized": case.optimized,
        "block_size": case.block_size,
        "profile": case.profile,
        "sim_seconds": result.sim_seconds,
        "total_seconds": result.total_seconds,
        "wall_cycles": result.wall_cycles,
        "events": result.events,
    }
    if paired is not None:
        row["speedup_sim"] = paired.sim_seconds / result.sim_seconds
        row["speedup_total"] = paired.total_seconds / result.total_seconds
    return row


def snapshot(pairs, mode: str, repeats: int) -> dict:
    """Serialize one path's results (``mode`` = "baseline" | "fastpath").

    Fastpath rows carry ``speedup_*`` relative to the paired baseline run
    from the same process.  Run stats ride along as a ``repro.metrics/v1``
    registry so the snapshot round-trips through
    :meth:`~repro.obs.metrics.MetricsRegistry.from_dict`.
    """
    if mode not in ("baseline", "fastpath"):
        raise ValueError(f"unknown snapshot mode {mode!r}")
    fast = mode == "fastpath"
    rows = []
    registries = []
    for ref, fst in pairs:
        own, other = (fst, ref) if fast else (ref, fst)
        rows.append(_workload_row(own, other if fast else None))
        registries.append(registry_from_run(
            own.stats, bench=own.case.label, path=mode,
            protocol=own.case.protocol, block_size=own.case.block_size,
        ))
    return {
        "schema": BENCH_SCHEMA,
        "mode": mode,
        "repeats": repeats,
        "workloads": rows,
        "metrics": MetricsRegistry.merge_all(registries).to_dict(),
    }


def load_snapshot(doc: dict) -> dict:
    """Validate a snapshot document (schema + embedded metrics registry)."""
    if doc.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"unsupported bench schema {doc.get('schema')!r}; "
            f"expected {BENCH_SCHEMA!r}"
        )
    MetricsRegistry.from_dict(doc["metrics"])  # raises on a bad registry
    return doc


def compare_snapshots(committed: dict, measured: dict,
                      tolerance: float = 0.15) -> list[str]:
    """The regression gate: measured speedups vs the committed snapshot.

    Returns a list of human-readable regressions (empty = pass).  A
    workload regresses when its measured ``speedup_sim`` falls more than
    ``tolerance`` (fractionally) below the committed value; committed
    workloads the measurement skipped are ignored (CI runs the quick
    profile only), as are newly added ones (no baseline yet).
    """
    load_snapshot(committed)
    load_snapshot(measured)
    old = {w["label"]: w for w in committed["workloads"]}
    problems = []
    for row in measured["workloads"]:
        base = old.get(row["label"])
        if base is None:
            continue
        was, now = base.get("speedup_sim"), row.get("speedup_sim")
        if was is None or now is None:
            continue
        if now < was * (1.0 - tolerance):
            problems.append(
                f"{row['label']}: fastpath speedup regressed "
                f"{was:.2f}x -> {now:.2f}x "
                f"(> {tolerance:.0%} below the committed snapshot)"
            )
    return problems


# -- campaign farm sharding ---------------------------------------------------
#
# One farm job = one case timed on both paths, so the bit-identity check
# stays local to the worker and the payload is plain JSON.  Host timings
# are machine-load-dependent and therefore NOT part of the determinism
# contract; the simulated results (wall_cycles, events, metrics) are, and
# the farm differential tests compare exactly those.


def case_to_spec(case: BenchCase, repeats: int = 1) -> dict:
    """A transport-safe (JSON) form of one case for ``repro.farm`` params."""
    return {
        "label": case.label, "app": case.app, "protocol": case.protocol,
        "optimized": case.optimized, "block_size": case.block_size,
        "build_kwargs": dict(case.build_kwargs), "profile": case.profile,
        "repeats": repeats,
    }


def spec_to_case(spec: dict) -> BenchCase:
    return BenchCase(spec["label"], spec["app"], spec["protocol"],
                     spec["optimized"], spec["block_size"],
                     dict(spec["build_kwargs"]), spec["profile"])


def _path_payload(result: CaseResult, mode: str) -> dict:
    case = result.case
    return {
        "sim_seconds": result.sim_seconds,
        "total_seconds": result.total_seconds,
        "wall_cycles": result.wall_cycles,
        "events": result.events,
        "metrics": registry_from_run(
            result.stats, bench=case.label, path=mode,
            protocol=case.protocol, block_size=case.block_size,
        ).to_dict(),
    }


def bench_case_job(spec: dict) -> dict:
    """Farm job body: time one case on both paths; returns a JSON payload.

    The fast path's bit-identity check runs inside the job, so a diverging
    worker fails its job (and the whole farm) immediately.  ``spec`` may
    carry a coordinator-computed ``"warm"`` corpus envelope, applied to
    both paths identically.
    """
    case = spec_to_case(spec)
    repeats = int(spec.get("repeats", 1))
    warm = spec.get("warm")
    ref = run_case(case, fast=False, repeats=repeats, warm=warm)
    fst = run_case(case, fast=True, repeats=repeats, warm=warm)
    if ref.wall_cycles != fst.wall_cycles or ref.events != fst.events:
        raise SimulationError(
            f"fast path diverged on {case.label!r}: "
            f"wall {ref.wall_cycles} vs {fst.wall_cycles}, "
            f"events {ref.events} vs {fst.events}"
        )
    return {
        "case": case_to_spec(case),
        "ref": _path_payload(ref, "baseline"),
        "fast": _path_payload(fst, "fastpath"),
    }


def measure_payloads(cases, repeats: int = 3, jobs: int = 1,
                     tracer=None, progress=None, corpus=None) -> list[dict]:
    """:func:`measure` in payload form, optionally sharded across a farm.

    ``jobs=1`` runs :func:`bench_case_job` in-process per case (the same
    computation the farm workers do), so the parallel path differs only in
    where the work ran.  ``corpus`` warms each case's schedule-learning
    protocol from the durable store (lookup coordinator-side, read-only —
    the perf suite never harvests; use the figure harness or verify runs
    to populate the corpus).
    """
    specs = [case_to_spec(case, repeats) for case in cases]
    if corpus is not None:
        from repro.corpus import bench_key, supports_warm

        for case, spec in zip(cases, specs):
            if case.app == MICROBENCH or not supports_warm(case.protocol):
                continue
            cfg = _case_config(case)
            entry = corpus.lookup(
                bench_key(case.app, case.protocol, cfg,
                          optimized=case.optimized,
                          build_kwargs=dict(case.build_kwargs)),
                cfg.n_nodes,
            )
            if entry is not None:
                spec["warm"] = entry["records"]
    if jobs > 1 and len(specs) > 1:
        from repro.farm import FarmJob, run_farm

        farm = run_farm(
            [FarmJob(index=i, kind="bench-case", params=spec)
             for i, spec in enumerate(specs)],
            n_workers=jobs, tracer=tracer, progress=progress,
        )
        return [farm.results[i] for i in range(len(specs))]
    return [bench_case_job(spec) for spec in specs]


def snapshot_from_payloads(payloads, mode: str, repeats: int) -> dict:
    """:func:`snapshot` over farm payloads (same document structure)."""
    if mode not in ("baseline", "fastpath"):
        raise ValueError(f"unknown snapshot mode {mode!r}")
    fast = mode == "fastpath"
    rows = []
    registries = []
    for payload in payloads:
        own = payload["fast"] if fast else payload["ref"]
        row = dict(payload["case"])
        row.pop("repeats", None)
        row.update(
            sim_seconds=own["sim_seconds"], total_seconds=own["total_seconds"],
            wall_cycles=own["wall_cycles"], events=own["events"],
        )
        if fast:
            other = payload["ref"]
            row["speedup_sim"] = other["sim_seconds"] / own["sim_seconds"]
            row["speedup_total"] = (other["total_seconds"]
                                    / own["total_seconds"])
        rows.append(row)
        registries.append(MetricsRegistry.from_dict(own["metrics"]))
    return {
        "schema": BENCH_SCHEMA,
        "mode": mode,
        "repeats": repeats,
        "workloads": rows,
        "metrics": MetricsRegistry.merge_all(registries).to_dict(),
    }


def render_payloads(payloads) -> str:
    from repro.util.tables import format_table

    rows = []
    for payload in payloads:
        ref, fst = payload["ref"], payload["fast"]
        rows.append([
            payload["case"]["label"],
            payload["case"]["profile"],
            ref["sim_seconds"],
            fst["sim_seconds"],
            ref["sim_seconds"] / fst["sim_seconds"],
            ref["total_seconds"] / fst["total_seconds"],
            float(ref["events"]),
        ])
    return format_table(
        ["workload", "profile", "ref sim s", "fast sim s",
         "sim speedup", "total speedup", "events"],
        rows,
        floatfmt=".3g",
        title="fast path vs reference (best-of-N wall clock)",
    )


def _bench_sim_doc(payloads) -> list[dict]:
    """The deterministic (simulated-only) projection of bench payloads."""
    return [
        {
            "label": p["case"]["label"],
            "wall_cycles": p["ref"]["wall_cycles"],
            "events": p["ref"]["events"],
            "ref_metrics": p["ref"]["metrics"],
            "fast_metrics": p["fast"]["metrics"],
        }
        for p in payloads
    ]


def farm_scaling(jobs_curve=(1, 2, 4, 8), *, fuzz_seeds: int = 300,
                 fault_seeds: int = 3, progress=None) -> dict:
    """Measure the farm's wall-clock scaling curve; returns a snapshot doc.

    Runs the verify fuzz sweep, the fault campaign, and the quick bench
    matrix at every worker count in ``jobs_curve``, asserting each parallel
    report is byte-identical to its sequential (``jobs=1``) report before
    recording the timing.  The document uses the :data:`BENCH_SCHEMA`
    snapshot format with ``mode: "farm"`` — rows are labelled
    ``<sweep>/jobs=N`` with ``speedup_sim`` relative to the sweep's own
    sequential run, so :func:`compare_snapshots` gates on it unchanged.
    ``host_cpus`` records how much hardware parallelism the measuring host
    actually had (a 1-core host can only show ~1.0x).
    """
    import json
    import os

    from repro.faults.campaign import run_campaign
    from repro.verify.fuzz import fuzz

    # sweep sizes are chosen so each sequential run takes seconds, not
    # milliseconds — otherwise worker startup dominates and the curve
    # measures process-spawn cost instead of campaign throughput
    tiny = [
        BenchCase(f"tiny{i}/lockstep", MICROBENCH, "predictive", True, 32,
                  dict(ops=8_000), "quick")
        for i in range(8)
    ]
    sweeps = [
        ("verify-fuzz",
         lambda jobs: fuzz(seeds=fuzz_seeds, jobs=jobs),
         lambda report: report.to_dict()),
        ("faults-sweep",
         lambda jobs: run_campaign(seeds=fault_seeds, variants=1,
                                   traces_dir=None, shrink=False, jobs=jobs),
         lambda report: report.to_dict()),
        ("bench-cases",
         lambda jobs: measure_payloads(tiny, repeats=1, jobs=jobs),
         _bench_sim_doc),
    ]
    rows = []
    registries = []
    for name, run, canon in sweeps:
        base_doc = None
        base_elapsed = None
        for jobs in jobs_curve:
            if progress:
                progress(f"[farm-scaling] {name} at jobs={jobs} ...")
            t0 = time.perf_counter()
            result = run(jobs)
            elapsed = time.perf_counter() - t0
            doc = json.dumps(canon(result), sort_keys=True)
            if base_doc is None:
                base_doc, base_elapsed = doc, elapsed
                if hasattr(result, "metrics"):
                    registries.append(result.metrics)
            elif doc != base_doc:
                raise SimulationError(
                    f"farm run of {name!r} at jobs={jobs} diverged from "
                    f"its sequential report"
                )
            rows.append({
                "label": f"{name}/jobs={jobs}",
                "profile": "farm",
                "workers": jobs,
                "sim_seconds": elapsed,
                "total_seconds": elapsed,
                "speedup_sim": base_elapsed / elapsed,
                "equal_to_sequential": True,
            })
    return {
        "schema": BENCH_SCHEMA,
        "mode": "farm",
        "repeats": 1,
        "host_cpus": os.cpu_count(),
        "workloads": rows,
        "metrics": MetricsRegistry.merge_all(registries).to_dict(),
    }


def render_pairs(pairs) -> str:
    from repro.util.tables import format_table

    rows = []
    for ref, fst in pairs:
        rows.append([
            ref.case.label,
            ref.case.profile,
            ref.sim_seconds,
            fst.sim_seconds,
            ref.sim_seconds / fst.sim_seconds,
            ref.total_seconds / fst.total_seconds,
            float(ref.events),
        ])
    return format_table(
        ["workload", "profile", "ref sim s", "fast sim s",
         "sim speedup", "total speedup", "events"],
        rows,
        floatfmt=".3g",
        title="fast path vs reference (best-of-N wall clock)",
    )
