"""Generic machinery for running one benchmark version and rendering figures."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core import make_machine
from repro.sim.stats import RunStats
from repro.util.config import MachineConfig
from repro.util.tables import format_bar_chart, format_table


@dataclass(frozen=True)
class VersionSpec:
    """One bar of a figure: an application version on a machine config."""

    label: str
    app: Any  # module with build(**kwargs)
    protocol: str
    optimized: bool
    config: MachineConfig
    build_kwargs: dict = field(default_factory=dict)
    variant: str = "cstar"


@dataclass
class VersionResult:
    spec: VersionSpec
    stats: RunStats

    @property
    def wall(self) -> float:
        return self.stats.wall_time

    def breakdown(self) -> dict[str, float]:
        return self.stats.figure_breakdown()


def run_version(spec: VersionSpec) -> VersionResult:
    """Build the program, run it on a fresh machine, and collect stats."""
    kwargs = dict(spec.build_kwargs)
    if spec.variant != "cstar":
        kwargs["variant"] = spec.variant
    prog = spec.app.build(**kwargs)
    machine = make_machine(spec.config, spec.protocol)
    env = prog.run(machine, optimized=spec.optimized)
    stats = env.finish()
    stats.check_conservation()
    return VersionResult(spec=spec, stats=stats)


@dataclass
class FigureResult:
    """All bars of one paper figure plus its shape checks."""

    name: str
    description: str
    versions: list[VersionResult]
    notes: list[str] = field(default_factory=list)

    def result(self, label: str) -> VersionResult:
        for v in self.versions:
            if v.spec.label == label:
                return v
        raise KeyError(label)

    def relative(self, label: str) -> float:
        """Execution time relative to the fastest version (paper's y-axis)."""
        fastest = min(v.wall for v in self.versions)
        return self.result(label).wall / fastest

    def render(self, width: int = 56) -> str:
        bars = [(v.spec.label, v.breakdown()) for v in self.versions]
        lines = [f"=== {self.name}: {self.description} ===", ""]
        lines.append(format_bar_chart(bars, width=width))
        lines.append("")
        rows = []
        fastest = min(v.wall for v in self.versions)
        for v in self.versions:
            b = v.breakdown()
            rows.append([
                v.spec.label,
                v.wall,
                v.wall / fastest,
                b["Remote data wait"],
                b["Predictive protocol"],
                b["Compute+Synch"],
                v.stats.hit_rate,
                float(v.stats.misses),
            ])
        lines.append(
            format_table(
                ["version", "cycles", "rel", "remote wait", "predictive",
                 "compute+synch", "hit rate", "misses"],
                rows,
                floatfmt=".3g",
            )
        )
        for n in self.notes:
            lines.append(f"note: {n}")
        return "\n".join(lines)
