"""Generic machinery for running one benchmark version and rendering figures."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core import make_machine
from repro.obs.metrics import MetricsRegistry, registry_from_run
from repro.sim.stats import RunStats
from repro.util.config import MachineConfig
from repro.util.tables import format_bar_chart, format_table


@dataclass(frozen=True)
class VersionSpec:
    """One bar of a figure: an application version on a machine config."""

    label: str
    app: Any  # module with build(**kwargs)
    protocol: str
    optimized: bool
    config: MachineConfig
    build_kwargs: dict = field(default_factory=dict)
    variant: str = "cstar"
    #: run on the compiled fast path (bit-identical; see repro.fastpath)
    fast: bool = False


@dataclass
class VersionResult:
    spec: VersionSpec
    stats: RunStats
    #: learned schedule records, filled only when run with ``harvest=True``
    harvest: list = field(default_factory=list)

    @property
    def wall(self) -> float:
        return self.stats.wall_time

    def breakdown(self) -> dict[str, float]:
        return self.stats.figure_breakdown()

    def metrics(self, **labels) -> MetricsRegistry:
        """This version's stats as a metrics registry (repro.obs schema).

        Every series carries the version/protocol/block-size labels (plus
        any caller-supplied ones, e.g. ``figure=...``), which is what lets
        ablation and sweep results merge into one registry instead of
        ad-hoc dicts.
        """
        return registry_from_run(
            self.stats,
            version=self.spec.label,
            protocol=self.spec.protocol,
            optimized=self.spec.optimized,
            block_size=self.spec.config.block_size,
            **labels,
        )


def spec_to_params(spec: VersionSpec, fast: bool | None = None) -> dict:
    """A transport-safe (JSON) form of one spec for ``repro.farm`` params.

    App modules do not cross process boundaries, so the spec travels with
    the module's dotted name and :func:`spec_from_params` re-imports it.
    """
    from dataclasses import asdict

    return {
        "label": spec.label,
        "app": spec.app.__name__,
        "protocol": spec.protocol,
        "optimized": spec.optimized,
        "config": asdict(spec.config),
        "build_kwargs": dict(spec.build_kwargs),
        "variant": spec.variant,
        "fast": spec.fast if fast is None else fast,
    }


def spec_from_params(params: dict) -> VersionSpec:
    import importlib

    return VersionSpec(
        label=params["label"],
        app=importlib.import_module(params["app"]),
        protocol=params["protocol"],
        optimized=params["optimized"],
        config=MachineConfig(**params["config"]),
        build_kwargs=dict(params["build_kwargs"]),
        variant=params["variant"],
        fast=params["fast"],
    )


def spec_corpus_key(spec: VersionSpec) -> str:
    """The durable-corpus key of one spec's (program, protocol, placement)."""
    from repro.corpus import bench_key

    return bench_key(
        spec.app.__name__.rsplit(".", 1)[-1], spec.protocol, spec.config,
        optimized=spec.optimized, build_kwargs=dict(spec.build_kwargs),
        variant=spec.variant,
    )


def version_job(params: dict) -> dict:
    """Farm job body: run one version; ship its stats back as plain JSON.

    ``params`` may carry the coordinator-computed corpus envelope:
    ``"warm"`` (schedule records seeded before the run) and ``"harvest"``
    (return what the run learned, for the coordinator to persist).
    """
    result = run_version(spec_from_params(params),
                         warm=params.get("warm"),
                         harvest=bool(params.get("harvest")))
    out = {"stats": result.stats.to_dict()}
    if params.get("harvest"):
        out["harvest"] = result.harvest
    return out


def run_specs(specs, jobs: int = 1, fast: bool | None = None,
              tracer=None, progress=None, corpus=None) -> list[VersionResult]:
    """Run a list of specs, optionally sharded across a farm worker pool.

    Results come back in spec order regardless of scheduling, and each
    version's simulation is seeded entirely by its spec, so the list is
    identical to the sequential one (``RunStats`` round-trips losslessly
    through :meth:`~repro.sim.stats.RunStats.to_dict`).  ``corpus``
    warm-starts every schedule-learning spec from the durable corpus and
    harvests what each run learned back into it; lookups and stores both
    happen here (coordinator-side), so farm workers stay stateless.
    """
    from repro.corpus import supports_warm

    specs = list(specs)
    keys: list[str | None] = [None] * len(specs)
    params_list = [spec_to_params(spec, fast=fast) for spec in specs]
    if corpus is not None:
        for i, spec in enumerate(specs):
            if not supports_warm(spec.protocol):
                continue
            keys[i] = spec_corpus_key(spec)
            params_list[i]["harvest"] = True
            entry = corpus.lookup(keys[i], spec.config.n_nodes)
            if entry is not None:
                params_list[i]["warm"] = entry["records"]
    if jobs > 1 and len(specs) > 1:
        from repro.farm import FarmJob, run_farm

        farm = run_farm(
            [FarmJob(index=i, kind="bench-version", params=params)
             for i, params in enumerate(params_list)],
            n_workers=jobs, tracer=tracer, progress=progress,
        )
        results = [
            VersionResult(spec=spec,
                          stats=RunStats.from_dict(farm.results[i]["stats"]),
                          harvest=list(farm.results[i].get("harvest") or []))
            for i, spec in enumerate(specs)
        ]
    else:
        results = [run_version(spec, fast=fast,
                               warm=params.get("warm"),
                               harvest=bool(params.get("harvest")))
                   for spec, params in zip(specs, params_list)]
    if corpus is not None:
        for spec, key, result in zip(specs, keys, results):
            if key is not None and result.harvest:
                corpus.store(key, {"protocol": spec.protocol,
                                   "n_nodes": spec.config.n_nodes,
                                   "records": result.harvest})
    return results


def run_version(spec: VersionSpec, tracer=None, fast: bool | None = None,
                warm=None, harvest: bool = False) -> VersionResult:
    """Build the program, run it on a fresh machine, and collect stats.

    ``tracer`` optionally attaches a :class:`repro.obs.events.Tracer` to the
    machine so benchmark runs can export event timelines.  ``fast``
    overrides ``spec.fast`` when given (``repro reproduce --fast`` threads
    it here without rebuilding every spec).  ``warm`` seeds corpus schedule
    records before the run; ``harvest=True`` returns the learned records in
    ``VersionResult.harvest``.
    """
    kwargs = dict(spec.build_kwargs)
    if spec.variant != "cstar":
        kwargs["variant"] = spec.variant
    prog = spec.app.build(**kwargs)
    use_fast = spec.fast if fast is None else fast
    machine = make_machine(spec.config, spec.protocol, fast=use_fast,
                           warm=warm)
    if tracer is not None:
        machine.attach_tracer(tracer)
    env = prog.run(machine, optimized=spec.optimized)
    stats = env.finish()
    stats.check_conservation()
    result = VersionResult(spec=spec, stats=stats)
    if harvest:
        store = getattr(machine.protocol, "schedules", None)
        if store is not None:
            result.harvest = [s.to_record() for s in store.values()
                              if s.entries]
    return result


@dataclass
class FigureResult:
    """All bars of one paper figure plus its shape checks."""

    name: str
    description: str
    versions: list[VersionResult]
    notes: list[str] = field(default_factory=list)

    def result(self, label: str) -> VersionResult:
        for v in self.versions:
            if v.spec.label == label:
                return v
        raise KeyError(label)

    def relative(self, label: str) -> float:
        """Execution time relative to the fastest version (paper's y-axis)."""
        fastest = min(v.wall for v in self.versions)
        return self.result(label).wall / fastest

    def metrics(self) -> MetricsRegistry:
        """All versions' stats merged into one registry, tagged by figure."""
        return MetricsRegistry.merge_all(
            v.metrics(figure=self.name) for v in self.versions
        )

    def render(self, width: int = 56) -> str:
        bars = [(v.spec.label, v.breakdown()) for v in self.versions]
        lines = [f"=== {self.name}: {self.description} ===", ""]
        lines.append(format_bar_chart(bars, width=width))
        lines.append("")
        rows = []
        fastest = min(v.wall for v in self.versions)
        for v in self.versions:
            b = v.breakdown()
            rows.append([
                v.spec.label,
                v.wall,
                v.wall / fastest,
                b["Remote data wait"],
                b["Predictive protocol"],
                b["Compute+Synch"],
                v.stats.hit_rate,
                float(v.stats.misses),
            ])
        lines.append(
            format_table(
                ["version", "cycles", "rel", "remote wait", "predictive",
                 "compute+synch", "hit rate", "misses"],
                rows,
                floatfmt=".3g",
            )
        )
        for n in self.notes:
            lines.append(f"note: {n}")
        return "\n".join(lines)
