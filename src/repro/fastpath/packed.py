"""Packed-int/array state representations for the fast path.

Three hot per-object structures get flat encodings:

* :class:`NodeSet` — sharer sets as a single int bitmask.  Node ids are
  small (a machine has a handful of nodes), so membership, union and
  difference are one machine-word operation, and iteration is *always
  ascending* — which also makes every sharers walk deterministic instead
  of depending on CPython hash-set ordering.  Adopted by the directory on
  both paths (protocol code is shared between reference and fast).
* :class:`PackedTagTable` — per-node block→tag map as a ``bytearray``
  indexed by global block id (tag values are the :class:`AccessTag` ints
  0/1/2).  The replay hot loop reads raw bytes; the full
  :class:`~repro.tempest.tags.TagTable` API is preserved for protocol
  code.  Adopted only on fast machines so the reference path keeps its
  dict-backed, independently-validated representation.
* :class:`PackedBitVector` — the data-flow vector of
  :mod:`repro.util.bitvec` backed by a ``numpy`` ``uint64`` word array,
  for analyses whose widths make single-int shifting expensive.

All three are differentially property-tested against their reference
counterparts in ``tests/fastpath/test_properties.py``.
"""

from __future__ import annotations

from collections.abc import Set
from typing import Iterable, Iterator

try:  # numpy backs PackedBitVector only; the rest of the fast path
    import numpy as _np  # does not require it
except ImportError:  # pragma: no cover - the container bakes numpy in
    _np = None

from repro.tempest.tags import AccessTag
from repro.util.errors import SimulationError

#: whether PackedBitVector is usable in this interpreter
HAVE_NUMPY = _np is not None

# ---------------------------------------------------------------------------
# NodeSet
# ---------------------------------------------------------------------------


class NodeSet(Set):
    """A mutable set of small non-negative ints stored as one bitmask.

    Subclassing :class:`collections.abc.Set` supplies the full operator
    algebra (including reflected forms, so ``plain_set - node_set`` works)
    on top of the three primitives below; results of binary operators are
    rebuilt as :class:`NodeSet` via ``_from_iterable``.  Iteration is in
    ascending id order, making consumers deterministic by construction.
    """

    __slots__ = ("_mask",)

    def __init__(self, iterable: Iterable[int] = ()) -> None:
        mask = 0
        for i in iterable:
            if i < 0:
                raise ValueError(f"NodeSet members must be >= 0, got {i}")
            mask |= 1 << i
        self._mask = mask

    @classmethod
    def _from_iterable(cls, it: Iterable[int]) -> "NodeSet":
        return cls(it)

    # -- set protocol ---------------------------------------------------------

    def __contains__(self, i: object) -> bool:
        return isinstance(i, int) and i >= 0 and (self._mask >> i) & 1 == 1

    def __iter__(self) -> Iterator[int]:
        mask = self._mask
        while mask:
            low = mask & -mask
            yield low.bit_length() - 1
            mask ^= low

    def __len__(self) -> int:
        return self._mask.bit_count()

    def __bool__(self) -> bool:
        return self._mask != 0

    # sets compare by value and are unhashable, mirroring builtin set
    __hash__ = None  # type: ignore[assignment]

    # -- mutation (the directory treats sharers as a mutable set) -------------

    def add(self, i: int) -> None:
        if i < 0:
            raise ValueError(f"NodeSet members must be >= 0, got {i}")
        self._mask |= 1 << i

    def discard(self, i: int) -> None:
        if i >= 0:
            self._mask &= ~(1 << i)

    def clear(self) -> None:
        self._mask = 0

    def update(self, other: Iterable[int]) -> None:
        if isinstance(other, NodeSet):
            self._mask |= other._mask
        else:
            for i in other:
                self.add(i)

    def intersection_update(self, other: Iterable[int]) -> None:
        if not isinstance(other, NodeSet):
            other = NodeSet(other)
        self._mask &= other._mask

    def copy(self) -> "NodeSet":
        dup = NodeSet()
        dup._mask = self._mask
        return dup

    def __repr__(self) -> str:
        return f"NodeSet({sorted(self)})"


# ---------------------------------------------------------------------------
# PackedTagTable
# ---------------------------------------------------------------------------

#: byte value -> AccessTag, index-aligned with the enum's int values
_TAG_OF = (AccessTag.INVALID, AccessTag.READ_ONLY, AccessTag.READ_WRITE)


class PackedTagTable:
    """Block→tag map as a byte-per-block array (fast-path tag storage).

    API-compatible with :class:`~repro.tempest.tags.TagTable`; missing or
    out-of-range blocks are INVALID, so capacity is an optimization, not a
    correctness requirement (:meth:`reserve` presizes; :meth:`set` grows).
    ``clear`` zeroes *in place* — crash recovery resets tags between
    processor steps and the storage object must keep its identity.

    The replay hot loop bypasses this API and reads ``_data`` directly;
    everything else (protocols, checkpointing, the monitor) goes through
    the same methods the reference table offers.
    """

    __slots__ = ("node", "_data", "_count")

    def __init__(self, node: int):
        self.node = node
        self._data = bytearray()
        self._count = 0  # nonzero bytes, maintained incrementally

    def reserve(self, n_blocks: int) -> None:
        """Grow capacity to ``n_blocks`` so hot-loop reads never miss."""
        if n_blocks > len(self._data):
            self._data.extend(bytes(n_blocks - len(self._data)))

    def get(self, block: int) -> AccessTag:
        data = self._data
        if 0 <= block < len(data):
            return _TAG_OF[data[block]]
        return AccessTag.INVALID

    def set(self, block: int, tag: AccessTag) -> None:
        v = int(tag)
        data = self._data
        if block >= len(data):
            if v == 0:
                return
            # grow with slack so block-by-block installs don't realloc
            self._data.extend(bytes(block + 64 - len(data)))
            data = self._data
        old = data[block]
        if old != v:
            self._count += (v != 0) - (old != 0)
            data[block] = v

    def permits(self, block: int, kind: str) -> bool:
        data = self._data
        t = data[block] if 0 <= block < len(data) else 0
        if kind == "r":
            return t != 0
        if kind == "w":
            return t == 2
        raise SimulationError(f"unknown access kind {kind!r}")

    def downgrade(self, block: int) -> None:
        """READ_WRITE -> READ_ONLY (keep data, lose write permission)."""
        data = self._data
        if 0 <= block < len(data) and data[block] == 2:
            data[block] = 1

    def invalidate(self, block: int) -> None:
        self.set(block, AccessTag.INVALID)

    def blocks_with_tag(self, tag: AccessTag) -> list[int]:
        v = int(tag)
        return [b for b, byte in enumerate(self._data) if byte == v and byte]

    def items(self) -> Iterator[tuple[int, AccessTag]]:
        """Yield ``(block, tag)`` for non-INVALID blocks, ascending."""
        for b, byte in enumerate(self._data):
            if byte:
                yield b, _TAG_OF[byte]

    def __len__(self) -> int:
        return self._count

    def clear(self) -> None:
        data = self._data
        data[:] = bytes(len(data))  # in place: storage identity survives
        self._count = 0


# ---------------------------------------------------------------------------
# PackedBitVector
# ---------------------------------------------------------------------------

_WORD = 64


class PackedBitVector:
    """A :class:`~repro.util.bitvec.BitVector` drop-in over uint64 words.

    Same indexing, operator, and error semantics (width mismatch raises
    ``ValueError``, out-of-range bit access raises ``IndexError``); widths
    in the thousands cost O(width/64) per whole-vector op without big-int
    shifting.  Operations never mix with the reference class — data-flow
    lattices are built from one representation end to end.
    """

    __slots__ = ("width", "_words")

    def __init__(self, width: int, bits: int = 0):
        if _np is None:  # pragma: no cover - numpy is baked into the image
            raise SimulationError("PackedBitVector requires numpy")
        if width < 0:
            raise ValueError(f"width must be >= 0, got {width}")
        mask = (1 << width) - 1
        if bits & ~mask:
            raise ValueError("initial bits exceed width")
        self.width = width
        n_words = (width + _WORD - 1) // _WORD
        words = _np.zeros(n_words, dtype=_np.uint64)
        i = 0
        while bits:
            words[i] = bits & 0xFFFFFFFFFFFFFFFF
            bits >>= _WORD
            i += 1
        self._words = words

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_indices(cls, width: int, indices: Iterable[int]) -> "PackedBitVector":
        v = cls(width)
        for i in indices:
            v.set(i)
        return v

    @classmethod
    def full(cls, width: int) -> "PackedBitVector":
        v = cls(width)
        v._words[:] = _np.uint64(0xFFFFFFFFFFFFFFFF)
        tail = width % _WORD
        if tail and len(v._words):
            v._words[-1] = _np.uint64((1 << tail) - 1)
        return v

    def copy(self) -> "PackedBitVector":
        dup = PackedBitVector(self.width)
        dup._words[:] = self._words
        return dup

    # -- single-bit operations ------------------------------------------------

    def _check(self, i: int) -> None:
        if not (0 <= i < self.width):
            raise IndexError(f"bit {i} out of range for width {self.width}")

    def set(self, i: int) -> None:
        self._check(i)
        self._words[i // _WORD] |= _np.uint64(1 << (i % _WORD))

    def clear(self, i: int) -> None:
        self._check(i)
        self._words[i // _WORD] &= _np.uint64(~(1 << (i % _WORD)) & 0xFFFFFFFFFFFFFFFF)

    def test(self, i: int) -> bool:
        self._check(i)
        return bool((int(self._words[i // _WORD]) >> (i % _WORD)) & 1)

    __getitem__ = test

    # -- whole-vector operations ----------------------------------------------

    def _check_width(self, other: "PackedBitVector") -> None:
        if not isinstance(other, PackedBitVector):
            raise TypeError(
                f"expected PackedBitVector, got {type(other).__name__}"
            )
        if self.width != other.width:
            raise ValueError(f"width mismatch: {self.width} vs {other.width}")

    def _make(self, words) -> "PackedBitVector":
        dup = PackedBitVector(self.width)
        dup._words = words
        return dup

    def __or__(self, other: "PackedBitVector") -> "PackedBitVector":
        self._check_width(other)
        return self._make(self._words | other._words)

    def __and__(self, other: "PackedBitVector") -> "PackedBitVector":
        self._check_width(other)
        return self._make(self._words & other._words)

    def __sub__(self, other: "PackedBitVector") -> "PackedBitVector":
        """Set difference: bits in self and not in other."""
        self._check_width(other)
        return self._make(self._words & ~other._words)

    def __ior__(self, other: "PackedBitVector") -> "PackedBitVector":
        self._check_width(other)
        self._words |= other._words
        return self

    def __iand__(self, other: "PackedBitVector") -> "PackedBitVector":
        self._check_width(other)
        self._words &= other._words
        return self

    def __isub__(self, other: "PackedBitVector") -> "PackedBitVector":
        self._check_width(other)
        self._words &= ~other._words
        return self

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PackedBitVector):
            return NotImplemented
        return self.width == other.width and bool(
            _np.array_equal(self._words, other._words)
        )

    def __hash__(self) -> int:
        return hash((self.width, self._words.tobytes()))

    def __bool__(self) -> bool:
        return bool(self._words.any())

    def __len__(self) -> int:
        return self.width

    def __iter__(self) -> Iterator[bool]:
        for i in range(self.width):
            yield bool((int(self._words[i // _WORD]) >> (i % _WORD)) & 1)

    def indices(self) -> Iterator[int]:
        """Yield the indices of set bits, ascending."""
        for w, word in enumerate(self._words):
            bits = int(word)
            base = w * _WORD
            while bits:
                low = bits & -bits
                yield base + low.bit_length() - 1
                bits ^= low

    def count(self) -> int:
        return int(_np.bitwise_count(self._words).sum())

    def is_subset(self, other: "PackedBitVector") -> bool:
        self._check_width(other)
        return not bool((self._words & ~other._words).any())

    def __repr__(self) -> str:
        bits = 0
        for w in range(len(self._words) - 1, -1, -1):
            bits = (bits << _WORD) | int(self._words[w])
        return f"PackedBitVector({self.width}, 0b{bits:0{max(self.width, 1)}b})"
