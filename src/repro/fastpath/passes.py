"""The pass-group pipeline: analyze → specialize → schedule.

Modeled on pymtl3's staged simulation passes: each phase trace is compiled
once, up front, into static dispatch state, so the per-event hot loop does
no dict lookups, no closure allocation, and no virtual protocol calls.

* :class:`AnalyzeTracePass` — one linear scan validating every op (shape,
  kind, non-negative charges) and sizing the packed tag tables from the
  allocated address space.  The reference path surfaces the same modelling
  bugs lazily (mid-run, when the bad op executes); rejecting them before
  the phase starts is strictly more conservative and keeps the hot loop
  free of per-op validation.
* :class:`SpecializeProcessorsPass` — builds one
  :class:`FastReplayProcessor` per node against presized
  :class:`~repro.fastpath.packed.PackedTagTable` storage.
* :class:`StaticSchedulePass` — launches the phase as one calendar slot:
  N step entries in node order, exactly the (time, seq) layout the
  reference path's N ``schedule`` calls would produce.

:class:`FastReplayProcessor.step` is the compiled replica of
:meth:`~repro.tempest.machine.ReplayProcessor._run`.  Equivalence is
bit-exact by construction — the same sequence of float additions against
the COMPUTE accumulator, the same yield points (one op minimum per
dispatch, then re-yield at the conservative horizon), the same
sequence-number allocation — and enforced by the differential suite in
``tests/fastpath/``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.events import EventKind
from repro.sim.stats import TimeCategory
from repro.tempest.machine import Machine, PhaseTrace, ReplayProcessor
from repro.util.errors import SimulationError

_COMPUTE = TimeCategory.COMPUTE


class FastReplayProcessor(ReplayProcessor):
    """A :class:`ReplayProcessor` whose dispatch loop is specialized.

    Differences from the reference ``_run`` are mechanical only:

    * dispatched from the calendar queue's batch loop (no Event, no
      closure, no incarnation lambda — the queue carries the incarnation
      stamp), either through the engine's fused single-op fast path or
      through :meth:`step` for catch-up dispatches;
    * tag checks read the packed table's byte array directly;
    * the COMPUTE accumulator and local-hit counter live in ``_acc`` /
      ``_hits`` between dispatches and flush to ``stats`` at every
      *observable* exit (miss, crash, barrier) — nothing reads them
      between yields, and the float-addition order is exactly the
      reference path's;
    * ``machine.note_access`` is inlined (same effects, same hook calls).

    ``resume`` after a miss and crash/restart handling reuse the
    inherited cold paths, re-syncing the cached accumulators afterwards.
    """

    __slots__ = ("_acc", "_hits", "_data", "_n", "_nid", "_hit",
                 "_accessed", "_pwrites", "_hooks")

    def __init__(self, machine, node, ops, start: float) -> None:
        super().__init__(machine, node, ops, start)
        stats = node.stats
        # cached hot state; _acc/_hits are canonical between flush points
        self._acc = stats.cycles[_COMPUTE]
        self._hits = stats.local_hits
        self._data = node.tags._data  # bytearray identity is stable
        self._n = len(ops)
        self._nid = node.id
        self._hit = machine.config.cache_hit_cost
        self._accessed = machine.group_accessed
        self._pwrites = machine.phase_writes
        self._hooks = machine.access_hooks

    def _schedule_run(self, t: float) -> None:
        # Incarnation-guarded like the reference closure, but the stamp
        # travels in the queue entry instead of a lambda cell.
        ctl = self.machine.crash_controller
        inc = -1 if ctl is None else ctl.incarnations[self.node.id]
        self.machine.engine.push_step(t, self, inc)

    # -- cold exits (shared by step() and the engine's fused path) -----------

    def _flush(self) -> None:
        stats = self.node.stats
        stats.cycles[_COMPUTE] = self._acc
        stats.local_hits = self._hits

    def _done_exit(self) -> None:
        self._flush()
        self.done = True
        self.machine._arrive_barrier(self, self.t)

    def _crash_exit(self) -> None:
        self._flush()
        self.machine.crash_controller.crash_now(self)

    def _miss_exit(self, op) -> None:
        self._flush()
        kind = op[0]
        b = op[1]
        t = self.t
        stats = self.node.stats
        self.waiting = True
        self.miss_start = t
        self.pending_op = op
        if kind == "r":
            stats.read_misses += 1
        else:
            stats.write_misses += 1
        machine = self.machine
        obs = machine.obs
        if obs.enabled:
            obs.emit(EventKind.MISS_BEGIN, t, node=self._nid, block=b,
                     access=kind)
        machine.protocol.fault(self, b, kind, t)

    def resume(self, t: float) -> None:
        # The inherited path charges REMOTE_WAIT + the completing hit's
        # COMPUTE against stats directly (our miss exit flushed first);
        # re-sync the cached accumulators before the next dispatch.
        super().resume(t)
        stats = self.node.stats
        self._acc = stats.cycles[_COMPUTE]
        self._hits = stats.local_hits

    def step(self, horizon: float) -> float | None:
        """Process ops inline up to the conservative ``horizon``.

        Returns the yield time (the engine re-pushes the continuation,
        allocating the same sequence number ``_schedule_run`` would) or
        None when the dispatch ended in a miss, crash, or barrier
        arrival.  ``horizon`` is the engine's next-live-event time
        (``inf`` when the queue is empty) — the same value ``_run``
        reads via ``peek_time()``.

        The check order per op matches ``_run`` exactly: crash guard,
        then horizon (skipped before the first op), then the op itself.
        """
        if self.done:
            raise SimulationError(f"processor {self.node.id} ran after completion")
        i = self.index
        n = self._n
        if i >= n:  # empty trace: arrive immediately, as _run's loop would
            self._done_exit()
            return None
        ops = self.ops
        t = self.t
        acc = self._acc
        hits = self._hits
        data = self._data
        limit = len(data)
        hit = self._hit
        ca = self.crash_at
        if ca is None:
            ca = n + 1
        nid = self._nid
        accessed = self._accessed
        hooks = self._hooks
        if i >= ca:
            self._crash_exit()
            return None
        while True:
            op = ops[i]
            kind = op[0]
            if kind == "r":
                b = op[1]
                if b < limit and data[b]:
                    t += hit
                    acc += hit
                    hits += 1
                    i += 1
                    accessed.add((nid, b))
                    if hooks:
                        for h in hooks:
                            h(nid, b, "r")
                else:
                    self.index = i
                    self.t = t
                    self._acc = acc
                    self._hits = hits
                    self._miss_exit(op)
                    return None
            elif kind == "c":
                c = op[1]
                t += c
                acc += c
                i += 1
            elif kind == "w":
                b = op[1]
                if b < limit and data[b] == 2:
                    t += hit
                    acc += hit
                    hits += 1
                    i += 1
                    accessed.add((nid, b))
                    self._pwrites.add((nid, b))
                    if hooks:
                        for h in hooks:
                            h(nid, b, "w")
                else:
                    self.index = i
                    self.t = t
                    self._acc = acc
                    self._hits = hits
                    self._miss_exit(op)
                    return None
            else:
                raise SimulationError(f"unknown trace op {op!r}")
            if i >= n:
                self.index = i
                self.t = t
                self._acc = acc
                self._hits = hits
                self._done_exit()
                return None
            if i >= ca:
                self.index = i
                self.t = t
                self._acc = acc
                self._hits = hits
                self._crash_exit()
                return None
            if t >= horizon:
                self.index = i
                self.t = t
                self._acc = acc
                self._hits = hits
                return t


@dataclass
class PhaseProgram:
    """The compiled form of one phase: what the passes hand each other."""

    trace: PhaseTrace
    start: float
    op_count: int = 0
    tag_blocks: int = 0
    procs: list[FastReplayProcessor] = field(default_factory=list)


class AnalyzeTracePass:
    """Validate the trace and size the packed state, in one linear scan."""

    def run(self, prog: PhaseProgram, machine: Machine) -> None:
        count = 0
        for node_ops in prog.trace.ops:
            for op in node_ops:
                kind = op[0]
                if kind == "c":
                    if op[1] < 0:
                        raise SimulationError(
                            f"negative compute charge in trace op {op!r}"
                        )
                elif kind == "r" or kind == "w":
                    if op[1] < 0:
                        raise SimulationError(
                            f"negative block index in trace op {op!r}"
                        )
                else:
                    raise SimulationError(f"unknown trace op {op!r}")
            count += len(node_ops)
        prog.op_count = count
        if machine.config.cache_hit_cost < 0:
            # the engine's fused single-op dispatch proves "exactly one op
            # before re-yield" from non-negative time charges
            raise SimulationError(
                f"fast path requires cache_hit_cost >= 0, "
                f"got {machine.config.cache_hit_cost}"
            )
        # Presize tag storage to cover every allocated block, so hot-loop
        # byte reads never fall off the end (growth stays possible; it is
        # an optimization, not a correctness requirement).
        end = max((r.end for r in machine.addr_space.regions), default=0)
        bs = machine.config.block_size
        prog.tag_blocks = (end + bs - 1) // bs


class SpecializeProcessorsPass:
    """Build per-node specialized processors over presized packed tags."""

    def run(self, prog: PhaseProgram, machine: Machine) -> None:
        for node in machine.nodes:
            tags = node.tags
            if getattr(tags, "_data", None) is None:
                raise SimulationError(
                    "fast path requires packed tag tables "
                    "(machine was not switched via use_fastpath)"
                )
            tags.reserve(prog.tag_blocks)
        prog.procs = [
            FastReplayProcessor(machine, machine.nodes[i], prog.trace.ops[i],
                                prog.start)
            for i in range(machine.config.n_nodes)
        ]


class StaticSchedulePass:
    """Install the phase's start batch as one calendar slot.

    Entries go in node order with consecutive sequence numbers — the
    identical (time, seq) frontier the reference path's per-processor
    ``schedule`` calls build.
    """

    def run(self, prog: PhaseProgram, machine: Machine) -> None:
        ctl = machine.crash_controller
        if ctl is None:
            entries = [(p, -1) for p in prog.procs]
        else:
            entries = [(p, ctl.incarnations[p.node.id]) for p in prog.procs]
        machine.engine.push_steps(prog.start, entries)


class FastPathPipeline:
    """Drives the pass groups for one machine.

    ``compile`` runs analyze + specialize (the machine then arms any crash
    plan on the returned processors, as the reference path does);
    ``launch`` runs the schedule pass, after which the engine drains the
    phase.
    """

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self.compile_passes = [AnalyzeTracePass(), SpecializeProcessorsPass()]
        self.schedule_pass = StaticSchedulePass()

    def compile(self, trace: PhaseTrace, start: float) -> PhaseProgram:
        prog = PhaseProgram(trace=trace, start=start)
        for p in self.compile_passes:
            p.run(prog, self.machine)
        return prog

    def launch(self, prog: PhaseProgram) -> None:
        self.schedule_pass.run(prog, self.machine)
