"""A slotted calendar queue engine with batched same-timestamp dispatch.

The reference :class:`~repro.sim.engine.Engine` pays for every event three
times: an :class:`~repro.sim.engine.Event` allocation, a closure allocation
for the callback, and ``heappush``/``heappop`` with dataclass ``__lt__``
comparisons.  Profiling the Table-1 workloads (``repro profile``) shows
those three costs dominating the drain loop.

:class:`FastEngine` keeps the exact dispatch semantics — (time, seq) order
with FIFO tie-break, ``until``/``max_events``/``pending``/``peek_time``
behaviour, the same ``_seq`` allocation per scheduled item — but stores the
queue as a *calendar*: a dict mapping each distinct timestamp to its slot
(a list of entries) plus a small heap of the distinct slot times.  Because
sequence numbers are allocated globally in increasing order, every slot
list is seq-ascending by construction and never needs sorting; a whole
same-timestamp batch dispatches with one dict pop and one heap pop.

Two kinds of entry share a slot:

* :class:`~repro.sim.engine.Event` instances from :meth:`schedule` — the
  generic (cancellable) path, used by protocols, transports and timers;
* bare ``(proc, incarnation)`` tuples from :meth:`push_step` — processor
  continuations, dispatched by calling ``proc.step(horizon)`` directly so
  the hot replay loop allocates no Event and no closure.  ``incarnation``
  mirrors the crash-restart guard the reference path closes over
  (``ReplayProcessor._run_alive``): a stale or down incarnation is counted
  as a dispatched event that does nothing, exactly like the reference.

Stale-peek pruning
------------------

Building this queue surfaced a cancel/:attr:`pending` interaction worth
making explicit: a slot whose entries are *all* cancelled would keep
``peek_time`` reporting that slot's stale frontier time (and ``pending``
counting garbage) unless peeking deletes the dead slot and pops its heap
time.  :meth:`_peek_future` performs that pruning; the reference engine's
equivalent contract (``Engine._prune_cancelled_front``) is documented and
regression-tested against both engines in ``tests/fastpath``.
"""

from __future__ import annotations

from heapq import heappop, heappush
from math import inf
from typing import Callable

from repro.sim.engine import Engine, Event
from repro.util.errors import SimulationError


class FastEngine(Engine):
    """Drop-in :class:`Engine` with a calendar queue and step-entry batching.

    Behavioural contract (checked by the Hypothesis differential suite):
    for any sequence of ``schedule``/``cancel``/``run`` calls, dispatch
    order, ``now``, ``pending``, ``peek_time``, ``total_dispatched`` and
    ``max_events`` errors are identical to the reference engine.
    """

    def __init__(self, default_max_events: int | None = None) -> None:
        super().__init__()
        #: time -> seq-ascending list of Event | (proc, incarnation)
        self._slots: dict[float, list] = {}
        #: heap of distinct slot times present in ``_slots``
        self._times: list[float] = []
        #: batch currently being dispatched (run() in progress), or None;
        #: peek_time/pending must see its not-yet-dispatched remainder
        self._cur_list: list | None = None
        self._cur_time: float = 0.0
        self._cur_idx: int = 0
        #: applied when run() is called without an explicit max_events
        #: (the fault campaign's livelock guard, cf. ExplorerEngine)
        self.default_max_events = default_max_events

    # -- scheduling ----------------------------------------------------------

    def schedule(self, time: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` at absolute ``time`` (generic, cancellable)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self.now}"
            )
        ev = Event(time, self._seq, fn)
        self._seq += 1
        slot = self._slots.get(time)
        if slot is None:
            self._slots[time] = [ev]
            heappush(self._times, time)
        else:
            slot.append(ev)
        return ev

    def push_step(self, time: float, proc, incarnation: int = -1) -> None:
        """Schedule a processor continuation without Event/closure overhead.

        ``proc.step(horizon)`` runs when the entry dispatches, unless
        ``incarnation >= 0`` and the proc's node is down or has been
        restarted since (the dispatch still counts, like the reference
        path's ``_run_alive`` guard event).  Step entries are never
        cancelled — nothing in the model cancels a processor continuation.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self.now}"
            )
        self._seq += 1
        slot = self._slots.get(time)
        if slot is None:
            self._slots[time] = [(proc, incarnation)]
            heappush(self._times, time)
        else:
            slot.append((proc, incarnation))

    def push_steps(self, time: float, procs_with_inc: list) -> None:
        """Batch form of :meth:`push_step`: one slot, N entries, N seqs.

        Used by the schedule pass to launch a phase: entries land in one
        calendar slot in node order, mirroring the reference path's N
        ``schedule`` calls at the phase start time.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self.now}"
            )
        if not procs_with_inc:
            return
        self._seq += len(procs_with_inc)
        slot = self._slots.get(time)
        if slot is None:
            self._slots[time] = list(procs_with_inc)
            heappush(self._times, time)
        else:
            slot.extend(procs_with_inc)

    # -- queue inspection ----------------------------------------------------

    def _peek_future(self) -> float | None:
        """Earliest slot time holding a live entry; prunes dead slots.

        This is where the stale-peek bug is fixed: leading cancelled
        events are compacted away and an all-cancelled slot is deleted
        outright (its heap time popped), so a frontier of cancelled
        timers can never be reported as the next event time.
        """
        slots, times = self._slots, self._times
        while times:
            t = times[0]
            slot = slots.get(t)
            if slot is None:
                # slot emptied through a non-run() path (e.g. _next_event)
                heappop(times)
                continue
            i, n = 0, len(slot)
            while i < n:
                e = slot[i]
                if type(e) is tuple or not e.cancelled:
                    break
                i += 1
            if i == n:
                del slots[t]
                heappop(times)
                continue
            if i:
                del slot[:i]  # keep repeated peeks O(1) amortized
            return t
        return None

    def peek_time(self) -> float | None:
        """Timestamp of the next live event, or None if the queue is empty.

        Mid-batch (from inside a callback running under :meth:`run`) the
        not-yet-dispatched remainder of the current slot is part of the
        queue, exactly as same-timestamp events still in the reference
        engine's heap would be.
        """
        lst = self._cur_list
        if lst is not None:
            i, n = self._cur_idx, len(lst)
            while i < n:
                e = lst[i]
                if type(e) is tuple or not e.cancelled:
                    return self._cur_time
                i += 1
        return self._peek_future()

    @property
    def pending(self) -> int:
        """Live (not dispatched, not cancelled) entry count; prunes garbage.

        Same contract as :attr:`Engine.pending`: quiescence checks rely on
        a zero return meaning the queue holds nothing at all, so cancelled
        events are removed rather than merely skipped.
        """
        slots = self._slots
        n = 0
        dead: list[float] = []
        for t, slot in slots.items():
            live = [e for e in slot if type(e) is tuple or not e.cancelled]
            if len(live) != len(slot):
                if live:
                    slots[t] = live
                else:
                    dead.append(t)
            n += len(live)
        for t in dead:
            del slots[t]
            # the heap time goes stale; _peek_future prunes it lazily
        lst = self._cur_list
        if lst is not None:
            for j in range(self._cur_idx, len(lst)):
                e = lst[j]
                if type(e) is tuple or not e.cancelled:
                    n += 1
        return n

    def _next_event(self) -> Event | None:
        """API-compat hook; the batched :meth:`run` below never calls it."""
        t = self._peek_future()
        if t is None:
            return None
        slot = self._slots[t]
        e = slot[0]
        if type(e) is tuple:
            raise SimulationError(
                "FastEngine step entries are dispatched only by run()"
            )
        del slot[0]
        if not slot:
            del self._slots[t]
        return e

    # -- execution -----------------------------------------------------------

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Dispatch events in (time, seq) order until the queue empties.

        Identical semantics to :meth:`Engine.run`, including the
        ``until`` cutoff (the first later event stays queued), the
        ``max_events`` guard raising *after* the offending dispatch, and
        the idle-clock advance to ``until`` when the queue drains.

        The hot case is fused inline: a step entry followed by another
        live entry in the same slot has horizon == slot time, so (op
        charges being non-negative — the analyze pass checks) the
        processor provably executes *exactly one* op before re-yielding.
        That single op is interpreted here without calling ``step``, and
        the continuation tuple is re-pushed unchanged (the incarnation
        cannot change during a hit/compute op).  The slot's last live
        step entry takes the general ``proc.step(horizon)`` catch-up
        path.  ``_dispatched`` accumulates in a local and flushes in the
        ``finally`` — nothing reads it mid-run (checkpointing requires
        quiescence).
        """
        if max_events is None:
            max_events = self.default_max_events
        if self._running:
            raise SimulationError("Engine.run is not reentrant")
        self._running = True
        dispatched = 0
        limit = (1 << 62) if max_events is None else max_events
        slots, times = self._slots, self._times
        slots_get = slots.get
        peek_future = self._peek_future
        exhausted = False
        try:
            while True:
                # inline _peek_future + slot claim: find the earliest slot
                # holding a live entry, pruning dead slots and stale heap
                # times on the way (one dict lookup, no method call)
                while times:
                    t = times[0]
                    lst = slots.get(t)
                    if lst is None:
                        heappop(times)
                        continue
                    i = 0
                    n = len(lst)
                    while i < n:
                        e0 = lst[i]
                        if type(e0) is tuple or not e0.cancelled:
                            break
                        i += 1
                    if i == n:
                        del slots[t]
                        heappop(times)
                        continue
                    break
                else:
                    exhausted = True
                    break
                if until is not None and t > until:
                    break
                # take the whole same-timestamp batch in one pop (leading
                # cancelled entries are skipped via ``i``, as the reference
                # heap pops them undispatched); entries scheduled at t
                # *during* the batch open a fresh slot and join the next
                # iteration (same (time, seq) order as the reference)
                del slots[t]
                heappop(times)
                self._cur_time = t
                self._cur_list = lst
                self.now = t
                try:
                    while i < n:
                        e = lst[i]
                        i += 1
                        self._cur_idx = i
                        if type(e) is tuple:
                            proc = e[0]
                            inc = e[1]
                            if inc >= 0:
                                ctl = proc.machine.crash_controller
                                nid = proc._nid
                                if nid in ctl.down or ctl.incarnations[nid] != inc:
                                    # stale incarnation: the guard event
                                    # still counts as dispatched, exactly
                                    # like _run_alive returning early
                                    dispatched += 1
                                    if dispatched >= limit:
                                        raise SimulationError(
                                            f"exceeded max_events={max_events}; "
                                            "likely a livelocked model"
                                        )
                                    continue
                            if proc.done:
                                raise SimulationError(
                                    f"processor {proc._nid} ran after completion"
                                )
                            if i < n:
                                e2 = lst[i]
                                live = type(e2) is tuple or not e2.cancelled
                                if not live:
                                    j = i + 1
                                    while j < n:
                                        e2 = lst[j]
                                        if type(e2) is tuple or not e2.cancelled:
                                            live = True
                                            break
                                        j += 1
                            else:
                                live = False
                            if live:
                                # fused single-op dispatch (horizon == t)
                                ip = proc.index
                                ca = proc.crash_at
                                n_p = proc._n
                                if ip >= n_p:
                                    proc._done_exit()  # empty trace
                                elif ca is not None and ip >= ca:
                                    proc._crash_exit()
                                else:
                                    op = proc.ops[ip]
                                    kind = op[0]
                                    if kind == "r":
                                        b = op[1]
                                        data = proc._data
                                        if b < len(data) and data[b]:
                                            hc = proc._hit
                                            t2 = proc.t + hc
                                            proc.t = t2
                                            proc._acc += hc
                                            proc._hits += 1
                                            ip += 1
                                            proc.index = ip
                                            nid = proc._nid
                                            proc._accessed.add((nid, b))
                                            hooks = proc._hooks
                                            if hooks:
                                                for h in hooks:
                                                    h(nid, b, "r")
                                            if ip >= n_p:
                                                proc._done_exit()
                                            elif ca is not None and ip >= ca:
                                                # crash fires before the
                                                # yield, as _run checks
                                                proc._crash_exit()
                                            else:
                                                self._seq += 1
                                                slot2 = slots_get(t2)
                                                if slot2 is None:
                                                    slots[t2] = [e]
                                                    heappush(times, t2)
                                                else:
                                                    slot2.append(e)
                                        else:
                                            proc._miss_exit(op)
                                    elif kind == "c":
                                        c = op[1]
                                        t2 = proc.t + c
                                        proc.t = t2
                                        proc._acc += c
                                        ip += 1
                                        proc.index = ip
                                        if ip >= n_p:
                                            proc._done_exit()
                                        elif ca is not None and ip >= ca:
                                            proc._crash_exit()
                                        else:
                                            self._seq += 1
                                            slot2 = slots_get(t2)
                                            if slot2 is None:
                                                slots[t2] = [e]
                                                heappush(times, t2)
                                            else:
                                                slot2.append(e)
                                    elif kind == "w":
                                        b = op[1]
                                        data = proc._data
                                        if b < len(data) and data[b] == 2:
                                            hc = proc._hit
                                            t2 = proc.t + hc
                                            proc.t = t2
                                            proc._acc += hc
                                            proc._hits += 1
                                            ip += 1
                                            proc.index = ip
                                            nid = proc._nid
                                            proc._accessed.add((nid, b))
                                            proc._pwrites.add((nid, b))
                                            hooks = proc._hooks
                                            if hooks:
                                                for h in hooks:
                                                    h(nid, b, "w")
                                            if ip >= n_p:
                                                proc._done_exit()
                                            elif ca is not None and ip >= ca:
                                                # crash fires before the
                                                # yield, as _run checks
                                                proc._crash_exit()
                                            else:
                                                self._seq += 1
                                                slot2 = slots_get(t2)
                                                if slot2 is None:
                                                    slots[t2] = [e]
                                                    heappush(times, t2)
                                                else:
                                                    slot2.append(e)
                                        else:
                                            proc._miss_exit(op)
                                    else:
                                        raise SimulationError(
                                            f"unknown trace op {op!r}"
                                        )
                            else:
                                horizon = peek_future()
                                r = proc.step(
                                    horizon if horizon is not None else inf
                                )
                                if r is not None:
                                    # re-yield: same tuple, next seq — the
                                    # allocation _schedule_run would make
                                    self._seq += 1
                                    slot2 = slots.get(r)
                                    if slot2 is None:
                                        slots[r] = [e]
                                        heappush(times, r)
                                    else:
                                        slot2.append(e)
                            dispatched += 1
                            if dispatched >= limit:
                                raise SimulationError(
                                    f"exceeded max_events={max_events}; "
                                    "likely a livelocked model"
                                )
                        elif not e.cancelled:
                            e.fn()
                            dispatched += 1
                            if dispatched >= limit:
                                raise SimulationError(
                                    f"exceeded max_events={max_events}; "
                                    "likely a livelocked model"
                                )
                finally:
                    self._cur_list = None
                    rem = lst[i:]
                    if rem:
                        # an exception unwound mid-batch: restore the
                        # undispatched remainder so the queue state matches
                        # the reference engine's (events stay in the heap)
                        existing = slots.get(t)
                        if existing is None:
                            slots[t] = rem
                            heappush(times, t)
                        else:
                            # entries scheduled at t during the batch carry
                            # higher seqs, so remainder-first keeps order
                            slots[t] = rem + existing
            if until is not None and self.now < until and exhausted:
                self.now = until
        finally:
            self._running = False
            self._dispatched += dispatched
        if self.obs is not None and self.obs.enabled and dispatched:
            self.obs.emit("engine.run", self.now, dispatched=dispatched)
        return dispatched
