"""The compiled simulation fast path (opt-in, behind ``--fast``).

``repro.fastpath`` replaces the three interpreter-bound layers of the
reference simulator with compiled-down equivalents while preserving
*bit-identical* observable behaviour (RunStats, checkpoints, dispatch
order):

* :mod:`~repro.fastpath.calqueue` — a slotted calendar queue
  (:class:`FastEngine`) that dispatches same-timestamp batches without
  per-event heap churn or closure allocation;
* :mod:`~repro.fastpath.packed` — packed-int/array representations for
  sharer sets, tag tables, and data-flow bit vectors;
* :mod:`~repro.fastpath.passes` — a pass-group pipeline
  (analyze → specialize → schedule) that turns each phase trace into
  static dispatch state for :class:`FastReplayProcessor`, whose ``step``
  loop avoids dict lookups and virtual calls.

The reference path stays untouched and authoritative: the differential
equivalence suite (``tests/fastpath/``) proves the two paths agree before
any benchmark number is trusted (see ``docs/PERFORMANCE.md``).
"""

from repro.fastpath.calqueue import FastEngine
from repro.fastpath.packed import NodeSet, PackedBitVector, PackedTagTable
from repro.fastpath.passes import FastPathPipeline, FastReplayProcessor

__all__ = [
    "FastEngine",
    "FastPathPipeline",
    "FastReplayProcessor",
    "NodeSet",
    "PackedBitVector",
    "PackedTagTable",
]
