"""A fixed-width bit vector for iterative data-flow analysis.

The C** compiler's *reaching unstructured accesses* analysis (paper §4.3) is
"an iterative bit-vector based data-flow computation"; this class provides the
vector.  It is a thin, well-tested wrapper over a Python int so union /
intersection / difference are single machine operations regardless of width.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class BitVector:
    """A mutable fixed-width vector of bits.

    Bits are indexed ``0 .. width-1``.  Operations between vectors require
    equal widths (data-flow lattices never mix widths).
    """

    __slots__ = ("width", "_bits")

    def __init__(self, width: int, bits: int = 0):
        if width < 0:
            raise ValueError(f"width must be >= 0, got {width}")
        mask = (1 << width) - 1
        if bits & ~mask:
            raise ValueError("initial bits exceed width")
        self.width = width
        self._bits = bits

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_indices(cls, width: int, indices: Iterable[int]) -> "BitVector":
        v = cls(width)
        for i in indices:
            v.set(i)
        return v

    @classmethod
    def full(cls, width: int) -> "BitVector":
        return cls(width, (1 << width) - 1)

    def copy(self) -> "BitVector":
        return BitVector(self.width, self._bits)

    # -- single-bit operations ------------------------------------------------

    def _check(self, i: int) -> None:
        if not (0 <= i < self.width):
            raise IndexError(f"bit {i} out of range for width {self.width}")

    def set(self, i: int) -> None:
        self._check(i)
        self._bits |= 1 << i

    def clear(self, i: int) -> None:
        self._check(i)
        self._bits &= ~(1 << i)

    def test(self, i: int) -> bool:
        self._check(i)
        return bool(self._bits >> i & 1)

    __getitem__ = test

    # -- whole-vector operations ----------------------------------------------

    def _check_width(self, other: "BitVector") -> None:
        if self.width != other.width:
            raise ValueError(f"width mismatch: {self.width} vs {other.width}")

    def __or__(self, other: "BitVector") -> "BitVector":
        self._check_width(other)
        return BitVector(self.width, self._bits | other._bits)

    def __and__(self, other: "BitVector") -> "BitVector":
        self._check_width(other)
        return BitVector(self.width, self._bits & other._bits)

    def __sub__(self, other: "BitVector") -> "BitVector":
        """Set difference: bits in self and not in other."""
        self._check_width(other)
        return BitVector(self.width, self._bits & ~other._bits)

    def __ior__(self, other: "BitVector") -> "BitVector":
        self._check_width(other)
        self._bits |= other._bits
        return self

    def __iand__(self, other: "BitVector") -> "BitVector":
        self._check_width(other)
        self._bits &= other._bits
        return self

    def __isub__(self, other: "BitVector") -> "BitVector":
        self._check_width(other)
        self._bits &= ~other._bits
        return self

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitVector):
            return NotImplemented
        return self.width == other.width and self._bits == other._bits

    def __hash__(self) -> int:
        return hash((self.width, self._bits))

    def __bool__(self) -> bool:
        return self._bits != 0

    def __len__(self) -> int:
        return self.width

    def __iter__(self) -> Iterator[bool]:
        bits = self._bits
        for _ in range(self.width):
            yield bool(bits & 1)
            bits >>= 1

    def indices(self) -> Iterator[int]:
        """Yield the indices of set bits, ascending."""
        bits = self._bits
        i = 0
        while bits:
            if bits & 1:
                yield i
            bits >>= 1
            i += 1

    def count(self) -> int:
        return self._bits.bit_count()

    def is_subset(self, other: "BitVector") -> bool:
        self._check_width(other)
        return self._bits & ~other._bits == 0

    def __repr__(self) -> str:
        return f"BitVector({self.width}, 0b{self._bits:0{max(self.width, 1)}b})"
