"""Shared utilities: configuration, bit vectors, errors, and table rendering.

These helpers are deliberately dependency-light; every other subpackage of
:mod:`repro` may import from here, but :mod:`repro.util` imports nothing from
the rest of the package.
"""

from repro.util.config import MachineConfig, CM5_DEFAULTS
from repro.util.errors import (
    ReproError,
    ConfigError,
    ProtocolError,
    SimulationError,
    StructuredError,
    TransportTimeout,
    CompileError,
)
from repro.util.bitvec import BitVector
from repro.util.tables import format_table, format_bar_chart

__all__ = [
    "MachineConfig",
    "CM5_DEFAULTS",
    "ReproError",
    "ConfigError",
    "ProtocolError",
    "SimulationError",
    "StructuredError",
    "TransportTimeout",
    "CompileError",
    "BitVector",
    "format_table",
    "format_bar_chart",
]
