"""Plain-text table and bar-chart rendering for the benchmark harness.

The paper presents its results as stacked bar charts (Figures 5-7) of
execution time relative to the fastest version.  The harness reproduces those
as aligned ASCII output so `pytest benchmarks/ --benchmark-only` prints the
same rows/series the paper reports.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    floatfmt: str = ".3f",
) -> str:
    """Render rows as an aligned monospace table.

    Numbers are right-aligned and formatted with ``floatfmt``; everything else
    is left-aligned ``str()``.
    """

    def cell(v: object) -> str:
        if isinstance(v, bool):
            return str(v)
        if isinstance(v, float):
            return format(v, floatfmt)
        return str(v)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))

    def is_num(v: object) -> bool:
        return isinstance(v, (int, float)) and not isinstance(v, bool)

    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for raw, row in zip(rows, str_rows):
        cells = []
        for i, c in enumerate(row):
            cells.append(c.rjust(widths[i]) if is_num(raw[i]) else c.ljust(widths[i]))
        lines.append("  ".join(cells))
    return "\n".join(lines)


#: Glyphs used for the stacked bar segments, in category order.
_BAR_GLYPHS = "#=+~@%"


def format_bar_chart(
    bars: Sequence[tuple[str, Mapping[str, float]]],
    width: int = 60,
    normalize: bool = True,
) -> str:
    """Render stacked horizontal bars, one per (label, {category: value}).

    With ``normalize`` the longest bar spans ``width`` characters and every
    bar is annotated with its total relative to the *shortest* total — the
    same presentation as the paper's "execution time relative to the fastest
    version" figures.
    """
    if not bars:
        return "(no data)"
    categories: list[str] = []
    for _, parts in bars:
        for c in parts:
            if c not in categories:
                categories.append(c)
    totals = [sum(parts.values()) for _, parts in bars]
    max_total = max(totals)
    min_total = min(t for t in totals if t > 0) if any(totals) else 1.0
    scale = width / max_total if (normalize and max_total > 0) else 1.0
    label_w = max(len(label) for label, _ in bars)

    lines = []
    for (label, parts), total in zip(bars, totals):
        segs = []
        for i, cat in enumerate(categories):
            v = parts.get(cat, 0.0)
            n = int(round(v * scale))
            segs.append(_BAR_GLYPHS[i % len(_BAR_GLYPHS)] * n)
        rel = total / min_total if min_total else 0.0
        lines.append(f"{label.ljust(label_w)} |{''.join(segs).ljust(width)}| {rel:5.2f}x")
    legend = "  ".join(
        f"{_BAR_GLYPHS[i % len(_BAR_GLYPHS)]}={cat}" for i, cat in enumerate(categories)
    )
    lines.append(f"{' ' * label_w}  legend: {legend}  (lengths relative to fastest=1.00x)")
    return "\n".join(lines)
