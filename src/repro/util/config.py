"""Machine and cost-model configuration.

All timing in the simulator is expressed in abstract *cycles*.  The default
constants are calibrated to the Blizzard-on-CM-5 platform the paper measured:
a 33 MHz SPARC node where an average remote shared-data access costs roughly
200 microseconds (~6,600 cycles) while a local cache hit costs one cycle, and
where the fat-tree network favors small messages.  Absolute numbers are not
the point (see DESIGN.md); the ratios — remote access several thousand times
a local hit, software handler occupancy per message, cheap hardware barriers
— are what drive the paper's effects.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

from repro.util.errors import ConfigError


def _is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


@dataclass(frozen=True)
class MachineConfig:
    """Parameters of the simulated distributed-shared-memory machine.

    Attributes
    ----------
    n_nodes:
        Number of processing nodes (the paper uses 32; scaled runs use fewer).
    block_size:
        Coherence granularity in bytes.  Tempest supports fine-grain access
        control at 32-128 byte blocks; the paper sweeps 32 to 1024 bytes.
    page_size:
        Allocation granularity for home assignment (Stache distributes data
        at page granularity).
    cache_hit_cost:
        Cycles for an access whose block tag already permits it.
    fault_cost:
        Cycles to detect an access fault and vector it to the user-level
        handler (Blizzard's fine-grain trap path).
    handler_cost:
        Protocol-handler occupancy, in cycles, charged per protocol message
        received at a node.
    msg_latency:
        Network flight time plus injection overhead per message, cycles.
    per_byte_cost:
        Additional network cycles per payload byte (bandwidth term).
    bulk_msg_overhead:
        Fixed startup cost of a coalesced bulk message in the pre-send phase.
        Bulk transfers amortize this over many blocks.
    presend_entry_cost:
        Home-side cycles to walk one schedule entry during pre-send.
    barrier_latency:
        Cost of a global barrier (the CM-5 has a hardware barrier network,
        so this is small).
    directory_lookup_cost:
        Home-side cycles to consult/update directory state per request.
    """

    n_nodes: int = 8
    block_size: int = 32
    page_size: int = 4096
    cache_hit_cost: int = 1
    fault_cost: int = 100
    handler_cost: int = 150
    msg_latency: int = 1000
    per_byte_cost: float = 0.5
    bulk_msg_overhead: int = 400
    presend_entry_cost: int = 20
    barrier_latency: int = 150
    directory_lookup_cost: int = 25

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ConfigError(f"n_nodes must be >= 1, got {self.n_nodes}")
        if not _is_power_of_two(self.block_size):
            raise ConfigError(f"block_size must be a power of two, got {self.block_size}")
        if not _is_power_of_two(self.page_size):
            raise ConfigError(f"page_size must be a power of two, got {self.page_size}")
        if self.page_size < self.block_size:
            raise ConfigError(
                f"page_size ({self.page_size}) must be >= block_size ({self.block_size})"
            )
        for name in (
            "cache_hit_cost",
            "fault_cost",
            "handler_cost",
            "msg_latency",
            "bulk_msg_overhead",
            "presend_entry_cost",
            "barrier_latency",
            "directory_lookup_cost",
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative")
        if self.per_byte_cost < 0:
            raise ConfigError("per_byte_cost must be non-negative")

    # -- derived quantities -------------------------------------------------

    def message_cost(self, payload_bytes: int = 0) -> float:
        """Network cost of a single (small) protocol message."""
        return self.msg_latency + self.per_byte_cost * payload_bytes

    def bulk_message_cost(self, payload_bytes: int) -> float:
        """Network cost of one coalesced bulk data message."""
        return self.bulk_msg_overhead + self.msg_latency + self.per_byte_cost * payload_bytes

    def blocks_per_page(self) -> int:
        return self.page_size // self.block_size

    def with_(self, **kwargs) -> "MachineConfig":
        """Return a copy with selected fields replaced (frozen dataclass)."""
        return replace(self, **kwargs)


#: The configuration used for paper-shaped experiments: a 32-node machine
#: as in the paper's CM-5 runs (benchmarks scale ``n_nodes`` down further
#: when they also scale the problem size).
CM5_DEFAULTS = MachineConfig(n_nodes=32)
