"""Crash-safe file writes: write-temp + fsync + rename.

Every artifact the toolchain persists for later runs to trust — bench
snapshots, fault-script reproducer archives, machine checkpoints, corpus
segments — must never be observable half-written.  A plain
``open(path, "w").write(...)`` can tear on crash or power loss, leaving a
truncated JSON document at the final path.  The pattern here is the
standard durable-replace discipline:

1. write the full content to a temporary file *in the same directory*
   (so the final rename cannot cross filesystems),
2. flush and ``fsync`` the temporary file,
3. ``os.replace`` it over the destination (atomic on POSIX),
4. best-effort ``fsync`` the containing directory so the rename itself
   is durable.

Readers therefore see either the old content or the new content in full,
never a prefix.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

__all__ = ["atomic_write_bytes", "atomic_write_text", "atomic_write_json",
           "fsync_path", "fsync_dir"]


def fsync_path(path: str | Path) -> None:
    """Flush one file's content to stable storage (best effort)."""
    fd = os.open(str(path), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def fsync_dir(path: str | Path) -> None:
    """Durably record a directory entry change (rename/create); best effort.

    Some filesystems refuse to fsync a directory fd — that only weakens
    durability of the *rename*, never atomicity, so failures are ignored.
    """
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str | Path, data: bytes) -> None:
    """Atomically replace ``path`` with ``data`` (write-temp+fsync+rename)."""
    path = Path(path)
    if path.parent != Path():
        path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(prefix=f".{path.name}.", suffix=".tmp",
                               dir=str(path.parent) or ".")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    fsync_dir(path.parent)


def atomic_write_text(path: str | Path, text: str) -> None:
    atomic_write_bytes(path, text.encode("utf-8"))


def atomic_write_json(path: str | Path, doc, *, indent: int = 2,
                      sort_keys: bool = True) -> None:
    """Atomically write ``doc`` as newline-terminated JSON.

    Byte-compatible with the previous plain writes across the repo
    (``json.dumps(..., indent=N, sort_keys=True) + "\\n"``), so artifacts
    CI compares with ``cmp`` are unchanged — only the write became atomic.
    """
    atomic_write_text(
        path, json.dumps(doc, indent=indent, sort_keys=sort_keys) + "\n"
    )
