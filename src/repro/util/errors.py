"""Exception hierarchy for the repro package.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch one type at an API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigError(ReproError):
    """An invalid :class:`repro.util.config.MachineConfig` or run parameter."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class ProtocolError(ReproError):
    """A coherence protocol observed an illegal state/message combination.

    Raised by the teapot dispatcher when a message arrives for which the
    current (directory or cache) state defines no transition.  In a correct
    protocol this never fires; tests assert both that legal traces never
    raise it and that deliberately-corrupted traces do.
    """


class CompileError(ReproError):
    """A C** source program failed to lex, parse, or analyze.

    Carries an optional source location so messages can point at the
    offending token.
    """

    def __init__(self, message: str, line: int | None = None, col: int | None = None):
        self.line = line
        self.col = col
        if line is not None:
            message = f"line {line}" + (f", col {col}" if col is not None else "") + f": {message}"
        super().__init__(message)
