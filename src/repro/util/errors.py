"""Exception hierarchy for the repro package.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch one type at an API boundary.

Simulation-side errors carry optional *structured context* — the node, the
simulated time, and a compact repr of the message being processed — so a
failure deep inside a fault-injection campaign is diagnosable from the error
object alone, without re-running the campaign.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigError(ReproError):
    """An invalid :class:`repro.util.config.MachineConfig` or run parameter."""


class StructuredError(ReproError):
    """A runtime error with optional simulation context attached.

    All keyword fields are optional and default to None; a plain
    ``StructuredError("message")`` behaves exactly like before structured
    context existed.  When context is supplied it is appended to the string
    form as ``[node=…, t=…, block=…, msg=…, event=…]`` and kept on the
    instance for programmatic inspection (fault campaigns report these
    fields instead of asking users to re-run).
    """

    def __init__(self, message: str, *, node: int | None = None,
                 time: float | None = None, block: int | None = None,
                 message_repr: str | None = None, event: object = None):
        self.node = node
        self.time = time
        self.block = block
        self.message_repr = message_repr
        self.event = event
        super().__init__(message + self.context_suffix())

    def context_suffix(self) -> str:
        parts = []
        if self.node is not None:
            parts.append(f"node={self.node}")
        if self.time is not None:
            parts.append(f"t={self.time:g}")
        if self.block is not None:
            parts.append(f"block={self.block}")
        if self.message_repr is not None:
            parts.append(f"msg={self.message_repr}")
        if self.event is not None:
            parts.append(f"event={self.event}")
        return f" [{', '.join(parts)}]" if parts else ""

    def context(self) -> dict:
        """The attached context as a dict (None values omitted)."""
        fields = {
            "node": self.node,
            "time": self.time,
            "block": self.block,
            "message": self.message_repr,
            "event": self.event,
        }
        return {k: v for k, v in fields.items() if v is not None}


class SimulationError(StructuredError):
    """The discrete-event simulation reached an inconsistent state."""


class ProtocolError(StructuredError):
    """A coherence protocol observed an illegal state/message combination.

    Raised by the teapot dispatcher when a message arrives for which the
    current (directory or cache) state defines no transition.  In a correct
    protocol this never fires; tests assert both that legal traces never
    raise it and that deliberately-corrupted traces do.
    """


class TransportTimeout(SimulationError):
    """The reliable transport exhausted its retry/timeout budget.

    Raised when a message could not be delivered and acknowledged within
    the fault plan's budget — the structured context names the unreachable
    node, the block in flight, and the fault event that doomed the message,
    so an unrecoverable fault plan fails fast instead of hanging.
    """


class CompileError(ReproError):
    """A C** source program failed to lex, parse, or analyze.

    Carries an optional source location so messages can point at the
    offending token.
    """

    def __init__(self, message: str, line: int | None = None, col: int | None = None):
        self.line = line
        self.col = col
        if line is not None:
            message = f"line {line}" + (f", col {col}" if col is not None else "") + f": {message}"
        super().__init__(message)
