"""Block-run coalescing.

Shared by the predictive protocol's pre-send phase and the write-update
protocol's update push: neighboring cache blocks bound for the same
destination travel in one bulk message "to amortize message startup costs"
(paper §3.4).
"""

from __future__ import annotations

from typing import Iterable


def coalesce_blocks(blocks: Iterable[int]) -> list[tuple[int, int]]:
    """Group block indices into maximal runs of consecutive blocks.

    Returns ``(first_block, count)`` pairs, ascending.  Duplicates are
    ignored.
    """
    runs: list[tuple[int, int]] = []
    start: int | None = None
    prev = 0
    for b in sorted(set(blocks)):
        if start is None:
            start, prev = b, b
        elif b == prev + 1:
            prev = b
        else:
            runs.append((start, prev - start + 1))
            start, prev = b, b
    if start is not None:
        runs.append((start, prev - start + 1))
    return runs
