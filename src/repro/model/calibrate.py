"""Calibration: fit the model's residual coefficients to reference sims.

The walk/assemble pipeline is exact for counts on data-parallel sharing but
approximate for cycles: the event fold cannot see intra-phase ping-pong (a
node re-missing after another node stole the block mid-phase), and the
M/D/1 contention term is an estimate, not a queue replay.  Those residuals
scale with observable phase features, so instead of modeling them
structurally we *fit* them — per protocol — against a handful of short
reference simulations:

    phase remote-wait  =  base(walk, cost table)
                          + alpha * (misses in phase)
                          + gamma * (raw contention-cycle estimate)
                          + delta * (raw ping-pong-cycle exposure)

``alpha`` absorbs per-miss effects the fold misses, ``gamma`` rescales the
M/D/1 contention estimate, and ``delta`` is the fraction of the walk's
ping-pong *chain exposure* (burst-compressed op-position interleaving,
charged to every block participant) the simulator's timing actually
realizes.  Only delta is fitted — by a deterministic coarse-to-fine grid
search on reference wall-clock error — and the result is a tiny, fully
deterministic :class:`Calibration` persisted as canonical JSON
(``repro.model-calibration/v1``) via :mod:`repro.util.atomicio`.

The reference matrix deliberately exercises each protocol's distinct
timing machinery: large-block adaptive refinement for two-sharer boundary
ping-pong, large-block Barnes-Hut for many-sharer tree ping-pong (stache
and predictive), and SPMD Barnes-Hut for write-update's push trains
(write-update forbids remote writes, so it has no ping-pong to fit).
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field

import numpy as np

from repro.model.predictor import PROTOCOLS, predict
from repro.util.errors import ConfigError, ReproError

CALIBRATION_SCHEMA = "repro.model-calibration/v1"

#: feature columns fitted per phase (see the module docstring)
_FEATURES = ("alpha", "gamma", "delta")

#: search ceiling for the fitted ping-pong fraction: delta is the realized
#: share of the positional chain exposure, physically ~[0, 1]; the margin
#: above 1 absorbs chains the position proxy slightly under-counts
_DELTA_MAX = 2.0


class CalibrationError(ReproError):
    """Model and simulator disagreed structurally during calibration."""


@dataclass(frozen=True)
class Calibration:
    """Per-protocol residual coefficients (see the module docstring)."""

    alpha: dict[str, float]
    gamma: dict[str, float]
    delta: dict[str, float] = field(default_factory=dict)
    #: per-protocol fit diagnostics (rms residual before/after, phase count)
    diagnostics: dict[str, dict] = field(default_factory=dict)

    def for_protocol(self, protocol: str) -> tuple[float, float, float]:
        return (self.alpha.get(protocol, 0.0),
                self.gamma.get(protocol, 1.0),
                self.delta.get(protocol, 0.0))

    def to_doc(self) -> dict:
        return {
            "schema": CALIBRATION_SCHEMA,
            "alpha": {p: self.alpha[p] for p in sorted(self.alpha)},
            "gamma": {p: self.gamma[p] for p in sorted(self.gamma)},
            "delta": {p: self.delta[p] for p in sorted(self.delta)},
            "diagnostics": {p: self.diagnostics[p]
                            for p in sorted(self.diagnostics)},
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "Calibration":
        if doc.get("schema") != CALIBRATION_SCHEMA:
            raise ConfigError(
                f"not a calibration document: schema="
                f"{doc.get('schema')!r} (want {CALIBRATION_SCHEMA!r})")
        return cls(
            alpha={p: float(v) for p, v in doc.get("alpha", {}).items()},
            gamma={p: float(v) for p, v in doc.get("gamma", {}).items()},
            delta={p: float(v) for p, v in doc.get("delta", {}).items()},
            diagnostics=dict(doc.get("diagnostics", {})),
        )


def default_calibration() -> Calibration:
    """The uncalibrated identity: raw contention, no fitted residuals."""
    return Calibration(
        alpha={p: 0.0 for p in PROTOCOLS},
        gamma={p: 1.0 for p in PROTOCOLS},
        delta={p: 0.0 for p in PROTOCOLS},
    )


def reference_specs() -> dict[str, list]:
    """The per-protocol reference matrix (short sims, seconds each)."""
    from repro.apps import adaptive, barnes
    from repro.bench.figures import (
        ADAPTIVE_CFG,
        ADAPTIVE_KW,
        BARNES_CFG,
        BARNES_KW,
    )
    from repro.bench.harness import VersionSpec

    return {
        "stache": [
            VersionSpec("calib adaptive (256)", adaptive, "stache", False,
                        ADAPTIVE_CFG.with_(block_size=256), dict(ADAPTIVE_KW)),
            VersionSpec("calib barnes (1024)", barnes, "stache", False,
                        BARNES_CFG.with_(block_size=1024), dict(BARNES_KW)),
        ],
        "predictive": [
            VersionSpec("calib adaptive (256)", adaptive, "predictive", True,
                        ADAPTIVE_CFG.with_(block_size=256), dict(ADAPTIVE_KW)),
            VersionSpec("calib barnes (1024)", barnes, "predictive", True,
                        BARNES_CFG.with_(block_size=1024), dict(BARNES_KW)),
        ],
        "write-update": [
            VersionSpec("calib barnes spmd (32)", barnes, "write-update",
                        False, BARNES_CFG.with_(block_size=32),
                        dict(BARNES_KW), variant="spmd"),
        ],
    }


def _check_structure(spec, protocol: str, sim, base) -> None:
    """The fit is only meaningful if model and sim agree on the phases."""
    if len(sim.phases) != len(base.stats.phases):
        raise CalibrationError(
            f"[{protocol}] {spec.label}: phase count mismatch — sim ran "
            f"{len(sim.phases)} phases, model predicted "
            f"{len(base.stats.phases)}")
    for sp, mp in zip(sim.phases, base.stats.phases):
        if sp.phase_name != mp.phase_name:
            raise CalibrationError(
                f"[{protocol}] {spec.label}: phase sequence diverged — "
                f"sim {sp.phase_name!r} vs model {mp.phase_name!r}")


def _fit_protocol(specs, protocol: str, *, fast: bool):
    """Fit ``delta`` by a deterministic grid search on wall-clock error.

    Only delta is fitted: away from ping-pong regimes the base model is
    already within a couple of percent, and per-phase residual features
    (misses, contention, ping-pong) are collinear within any one workload,
    so a joint alpha/gamma/delta least-squares produces huge offsetting
    coefficients that extrapolate terribly outside the reference matrix.
    The fit criterion is the summed squared *relative wall-clock error*
    over the references rather than per-phase remote-wait sums: realized
    ping-pong concentrates on the bounce chain's critical path (and lands
    on everyone else's barrier), so matching per-node wait *sums* still
    under-predicts the wall.  A coarse-to-fine grid (0.05 then 0.005)
    keeps the search exactly reproducible; delta stays in
    ``[0, _DELTA_MAX]`` by construction.
    """
    from repro.bench.harness import run_version

    refs = []
    walls = {}
    for spec in specs:
        sim = run_version(spec, fast=fast).stats
        base = predict(
            spec.app, spec.build_kwargs, protocol=protocol,
            optimized=spec.optimized, config=spec.config,
            variant=spec.variant,
            calibration=Calibration(alpha={protocol: 0.0},
                                    gamma={protocol: 1.0},
                                    delta={protocol: 0.0}),
        )
        _check_structure(spec, protocol, sim, base)
        refs.append((spec, sim.wall_time))
        walls[spec.label] = sim.wall_time

    def total_err(delta: float) -> float:
        cal = Calibration(alpha={protocol: 0.0}, gamma={protocol: 1.0},
                          delta={protocol: delta})
        err = 0.0
        for spec, wall in refs:
            pr = predict(
                spec.app, spec.build_kwargs, protocol=protocol,
                optimized=spec.optimized, config=spec.config,
                variant=spec.variant, calibration=cal)
            err += ((pr.stats.wall_time - wall) / wall) ** 2
        return err

    err_before = total_err(0.0)
    best, best_err = 0.0, err_before
    coarse = 0.05
    for i in range(1, int(round(_DELTA_MAX / coarse)) + 1):
        d = round(i * coarse, 9)
        e = total_err(d)
        if e < best_err:
            best, best_err = d, e
    fine = 0.005
    for i in range(-9, 10):
        if i == 0:
            continue
        d = round(best + i * fine, 9)
        if d < 0.0 or d > _DELTA_MAX:
            continue
        e = total_err(d)
        if e < best_err:
            best, best_err = d, e

    diag = {
        "references": {label: round(float(w), 6)
                       for label, w in walls.items()},
        "rms_wall_err_before": round(float(np.sqrt(err_before / len(refs))),
                                     6),
        "rms_wall_err_after": round(float(np.sqrt(best_err / len(refs))), 6),
    }
    return (0.0, 1.0, round(float(best), 9)), diag


def calibrate(*, fast: bool = True, progress=None,
              tracer=None) -> Calibration:
    """Fit per-protocol residual coefficients from the reference sims.

    Fully deterministic: the reference simulations, the walk, and the
    least-squares fit all have a single possible outcome, so repeated
    calibrations produce byte-identical documents.
    """
    alpha: dict[str, float] = {}
    gamma: dict[str, float] = {}
    delta: dict[str, float] = {}
    diagnostics: dict[str, dict] = {}
    for protocol, specs in reference_specs().items():
        if progress is not None:
            progress(f"calibrating {protocol} against "
                     f"{len(specs)} reference(s) ...")
        (a, g, dl), diag = _fit_protocol(specs, protocol, fast=fast)
        alpha[protocol] = a
        gamma[protocol] = g
        delta[protocol] = dl
        diagnostics[protocol] = diag
        if tracer is not None and tracer.enabled:
            from repro.obs.events import EventKind

            tracer.emit(EventKind.MODEL_CALIBRATE, 0.0, protocol=protocol,
                        alpha=a, gamma=g, delta=dl)
    return Calibration(alpha=alpha, gamma=gamma, delta=delta,
                       diagnostics=diagnostics)


def save_calibration(path, calibration: Calibration) -> None:
    from repro.util.atomicio import atomic_write_json

    out = pathlib.Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_json(out, calibration.to_doc())


def load_calibration(path) -> Calibration:
    import json

    return Calibration.from_doc(json.loads(pathlib.Path(path).read_text()))
