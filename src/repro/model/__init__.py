"""repro.model — the analytical performance model (no event loop).

The simulator answers "what happened" by replaying every message through a
discrete-event engine; this package answers "what would happen" in closed
form.  It consumes the same inputs the simulator does — the compiler's
placed program, machine parameters, a protocol choice, and (optionally)
learned communication schedules — and produces a
:class:`~repro.sim.stats.RunStats`-shaped prediction in milliseconds, which
is what makes ``repro sweep --model`` parameter grids instant.

Pipeline (docs/MODEL.md has the derivations):

1. :mod:`.recording` runs the program's *value pass* once on a machine-free
   stand-in, capturing per-phase aggregate access streams (no timing).
2. :mod:`.predictor` *walks* those streams against an analytical directory
   (cost-independent: miss classes, pre-send programs, learned schedules),
   then *assembles* cycles from any cost table — so sweeps over cost
   parameters reuse one walk.
3. :mod:`.calibrate` fits per-protocol residual coefficients (handler
   contention, per-miss queueing) from a handful of short reference
   simulations.
4. :mod:`.validate` cross-validates model vs. simulator over the full
   benchmark suite and gates the committed error budgets.
"""

from repro.model.calibrate import (
    Calibration,
    calibrate,
    default_calibration,
    load_calibration,
    save_calibration,
)
from repro.model.predictor import ModelPrediction, predict
from repro.model.recording import ProgramRecording, record_program

__all__ = [
    "Calibration",
    "ModelPrediction",
    "ProgramRecording",
    "calibrate",
    "default_calibration",
    "load_calibration",
    "predict",
    "record_program",
    "save_calibration",
]
