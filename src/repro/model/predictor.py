"""The analytical predictor: walk the recording, then assemble cycles.

The simulator replays every access through a discrete-event engine; the
predictor replaces that timing pass with two closed-form stages:

**Walk** (cost-independent, cached per ``(recording, block_size, protocol,
optimized, warm-start)``): fold each phase's access streams to at most two
events per (node, block) — the first read and the first write — and evolve
an analytical directory through them.  Every miss is classified into one of
six coefficient vectors over the cost basis ``(fault, control-flight,
data-flight, handler, dir-lookup)``; pre-send phases, schedule learning,
deferred judgment and degradation run against the *real*
:class:`~repro.core.schedule.CommSchedule` / ``ScheduleStore`` classes, so
fault-free pre-send counts are exact by construction.  The walk also counts
every message and byte the protocol would send.

**Assemble** (per cost table): evaluate the walk's coefficient sums against
a :class:`~repro.util.config.MachineConfig`, replay pre-send token programs
and write-update push programs for their cursor arithmetic, add an M/D/1
home-handler contention estimate, and apply the calibration's per-protocol
residual coefficients.  The output is a :class:`~repro.sim.stats.RunStats`
in the simulator's own schema, conservative by construction: each node's
category cycles sum to wall time because phases are assembled exactly the
way the machine charges them (compute + wait -> barrier arrival; barrier
release = max arrival + latency; the remainder is SYNCH).

Splitting walk from assemble is what makes ``repro sweep --model`` fast:
a grid over cost axes (``msg_latency``, ``per_byte_cost``, ...) reuses one
walk per structural point and pays only the assemble per cell.

Miss classes (derived from :mod:`repro.protocols.stache` +
:mod:`repro.protocols.base`; ``k`` = remote sharers invalidated, and ACK /
WB_DATA handlers pay ``handler_cost + directory_lookup_cost``):

========================  ==========================================  ===================
class                     fault path                                  (F, L, DATA, H, D)
========================  ==========================================  ===================
``LOC_IDLE``              local fault, home grants immediately        (1, 0, 0, 1, 1)
``LOC_RECALL``            local fault recalls a remote writer         (1, 1, 1, 3, 2)
``LOC_WRITE_SHARED(k)``   local write invalidates k remote readers    (1, 2, 0, 2+k, 1+k)
``REM_CURRENT``           remote fault, home memory is current        (1, 1, 1, 2, 1)
``REM_RECALL``            remote fault recalls the current writer     (1, 2, 2, 4, 2)
``REM_WRITE_SHARED(k)``   remote write invalidates k other readers    (1, 3, 1, 3+k, 1+k)
========================  ==========================================  ===================
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np

from repro.core.schedule import (
    CommSchedule,
    EntryKind,
    ScheduleStore,
    coalesce_blocks,
)
from repro.model.layout import LayoutModel
from repro.model.recording import ProgramRecording, record_program
from repro.sim.stats import PhaseBreakdown, RunStats, TimeCategory
from repro.util.config import MachineConfig
from repro.util.errors import ConfigError, ProtocolError

PROTOCOLS = ("stache", "predictive", "write-update")

# analytical directory states (the walk never needs the transient BUSY
# states: queued requests are simply processed in sequence)
_IDLE, _SHARED, _EXCL, _UPD = 0, 1, 2, 3

# coefficient columns: fault, control flight (L), data flight (L + pb*B),
# handler (h), directory lookup (d)
_F, _L, _DATA, _H, _D = range(5)

#: default knobs mirrored from PredictiveProtocol (the model predicts the
#: default configuration; ablation knobs are a simulator-only affair)
_DEGRADE_PATIENCE = 3
_DEGRADE_COOLDOWN = 2
_MAX_SCHEDULES = 64

#: M/D/1 utilization clamp — keeps the contention estimate finite when a
#: phase's handler demand approaches its makespan
_RHO_MAX = 0.95

#: ping-pong burst compression: consecutive same-(node, block) ops whose
#: positions are at most this far apart count as one atomic burst (a few
#: ops take far less time than a steal's fault round-trip, so a mid-burst
#: steal is not a realizable ownership alternation)
_BURST_GAP = 8


def _permits_r(st: list, node: int, home: int) -> bool:
    s = st[0]
    if s == _IDLE:
        return node == home
    if s == _EXCL:
        return node == st[2]
    return node == home or node in st[1]  # SHARED / UPDATE_SHARED


def _permits_w(st: list, node: int, home: int) -> bool:
    s = st[0]
    if s == _IDLE or s == _UPD:
        return node == home
    if s == _EXCL:
        return node == st[2]
    return False  # SHARED


@dataclass
class PhaseWalk:
    """Cost-independent summary of one phase (all nodes)."""

    name: str
    directive: int | None
    compute: np.ndarray        # (n,) value-pass compute cycles
    accesses: np.ndarray       # (n,) shared-access op count
    read_misses: np.ndarray    # (n,)
    write_misses: np.ndarray   # (n,)
    coeff: np.ndarray          # (n, 5) summed miss-class coefficients
    messages: np.ndarray       # (n,) messages sent during the phase
    bytes_sent: np.ndarray     # (n,)
    #: (n, n): (handler+lookup) services node i's misses demand at node j
    services: np.ndarray
    #: (n,) intra-phase ping-pong exposure: how many times each node
    #: *re*-acquired a block it had already written this phase (ownership
    #: alternation the first-access fold cannot see; the calibration fits
    #: a per-protocol scale ``delta`` for how much of it the simulator's
    #: timing actually realizes)
    pingpong: np.ndarray = None
    #: write-update push program: [(producer, [(consumer, n_runs), ...])]
    pushes: list | None = None


@dataclass
class PresendWalk:
    """One pre-send phase: per-home token programs plus its exact counters.

    Tokens — ``("e",)`` schedule-entry walk, ``("recall",)`` synchronous
    writer recall, ``("inv", dst)`` pre-send invalidation, ``("send", dst,
    count)`` a (possibly bulk) data transfer — carry everything the assemble
    stage needs to recompute cursors and arrival queues under any cost table.
    """

    directive: int
    programs: list[list[tuple]]
    messages: np.ndarray
    bytes_sent: np.ndarray
    blocks_sent: np.ndarray
    blocks_received: np.ndarray


@dataclass
class WalkResult:
    """Everything cost-independent about one (program, protocol) execution."""

    n_nodes: int
    block_size: int
    steps: list[tuple[str, object]]   # ("presend", PresendWalk) | ("phase", PhaseWalk)
    useless: np.ndarray               # (n,) presend_useless_blocks
    degraded: int
    total_requests: int


@dataclass
class ModelPrediction:
    """A model run: simulator-schema stats plus the model's own metadata."""

    stats: RunStats
    protocol: str
    optimized: bool
    #: per recorded phase: (total misses, raw contention cycles, raw
    #: ping-pong cycles) — the feature vector the calibration fits against
    phase_features: list[tuple[float, float, float]]
    walk_cached: bool


# -- the walk -----------------------------------------------------------------


class _Walker:
    """Evolves the analytical directory through one recorded execution."""

    def __init__(self, recording: ProgramRecording, layout: LayoutModel,
                 protocol: str, optimized: bool, warm) -> None:
        self.recording = recording
        self.layout = layout
        self.protocol = protocol
        self.optimized = optimized
        self.n = recording.n_nodes
        self.block_size = layout.block_size
        self.dir: dict[int, list] = {}
        self.steps: list[tuple[str, object]] = []
        self.useless = np.zeros(self.n, dtype=np.int64)
        self.degraded = 0
        self.total_requests = 0
        self.current_directive: int | None = None
        # predictive mirror state (uses the real schedule classes)
        self.predictive = protocol == "predictive" and optimized
        self.store = ScheduleStore(_MAX_SCHEDULES) if self.predictive else None
        self.suppress_learning = False
        self.pending: dict[tuple[int, int], CommSchedule] = {}
        self.presented: set[tuple[int, int]] = set()
        self.group_accessed: set[tuple[int, int]] = set()
        if self.predictive and warm:
            self._warm_seed(warm)

    def _warm_seed(self, records) -> None:
        # mirrors PredictiveProtocol.warm_seed
        for record in records or ():
            try:
                sched = CommSchedule.from_record(record)
            except Exception:
                continue
            if not sched.entries or sched.directive_id in self.store:
                continue
            self.store.insert(sched)

    def _state(self, block: int) -> list:
        st = self.dir.get(block)
        if st is None:
            st = [_IDLE, set(), None]
            self.dir[block] = st
        return st

    def run(self) -> WalkResult:
        for kind, payload in self.recording.events:
            if kind == "begin_group":
                if self.optimized:
                    self._begin_group(payload)
            elif kind == "end_group":
                if self.optimized:
                    self._end_group()
            else:
                self.steps.append(("phase", self._walk_phase(payload)))
        return WalkResult(
            n_nodes=self.n,
            block_size=self.block_size,
            steps=self.steps,
            useless=self.useless,
            degraded=self.degraded,
            total_requests=self.total_requests,
        )

    # -- phase groups ---------------------------------------------------------

    def _begin_group(self, directive: int) -> None:
        self.current_directive = directive
        self.group_accessed.clear()
        if not self.predictive:
            return
        sched = self.store.fetch(directive)
        sched.begin_instance()
        self.presented.clear()
        self.suppress_learning = False
        if sched.wasted_streak >= _DEGRADE_PATIENCE:
            sched.degrade(_DEGRADE_COOLDOWN)
            self.degraded += 1
            self.pending = {
                pair: owner for pair, owner in self.pending.items()
                if owner is not sched
            }
        if sched.cooldown > 0:
            sched.cooldown -= 1
            self.suppress_learning = True
            return
        if not sched.entries:
            return
        self.steps.append(("presend", self._walk_presend(directive, sched)))

    def _end_group(self) -> None:
        if self.predictive:
            presented = len(self.presented)
            useless = 0
            for dst, block in self.presented:
                if (dst, block) not in self.group_accessed:
                    self.useless[dst] += 1
                    useless += 1
            self.presented.clear()
            self.suppress_learning = False
            sched = self.store.get(self.current_directive)
            if sched is not None:
                sched.note_presend_outcome(presented, useless)
                sched.fold_instance_judgment()
        self.current_directive = None

    def _register_presend(self, dst: int, block: int,
                          sched: CommSchedule) -> None:
        prev = self.pending.get((dst, block))
        if prev is not None:
            prev.note_waste()
        self.pending[(dst, block)] = sched

    def _walk_presend(self, directive: int, sched: CommSchedule) -> PresendWalk:
        """Mirror of ``PredictiveProtocol.begin_group``'s per-home walk."""
        n, B = self.n, self.block_size
        home_of = self.layout.home
        programs: list[list[tuple]] = []
        messages = np.zeros(n, dtype=np.int64)
        bytes_sent = np.zeros(n, dtype=np.int64)
        blocks_sent = np.zeros(n, dtype=np.int64)
        blocks_received = np.zeros(n, dtype=np.int64)

        for node in range(n):
            prog: list[tuple] = []
            outgoing: dict[tuple[int, int], list[int]] = {}  # (dst, 1=RO/2=RW)
            for entry in sched.entries_for_home(home_of, node):
                prog.append(("e",))
                kind = entry.kind
                if kind is EntryKind.CONFLICT:
                    continue  # no anticipated action (§3.4)
                st = self._state(entry.block)
                if kind is EntryKind.READ:
                    if st[0] == _EXCL:
                        owner = st[2]
                        prog.append(("recall",))
                        messages[node] += 1
                        messages[owner] += 1
                        bytes_sent[owner] += B
                        st[0], st[2] = _IDLE, None
                        st[1].clear()
                        self._register_presend(node, entry.block, sched)
                    for reader in sorted(entry.readers):
                        if reader == node:
                            continue
                        if _permits_r(st, reader, node):
                            continue
                        outgoing.setdefault((reader, 1), []).append(entry.block)
                        st[1].add(reader)
                        st[0] = _SHARED
                else:  # WRITE
                    writer = entry.writer
                    if st[0] == _EXCL:
                        if st[2] == writer:
                            continue
                        owner = st[2]
                        prog.append(("recall",))
                        messages[node] += 1
                        messages[owner] += 1
                        bytes_sent[owner] += B
                        st[0], st[2] = _IDLE, None
                        st[1].clear()
                    elif st[0] == _SHARED:
                        for sharer in sorted(st[1]):
                            if sharer == writer:
                                continue
                            prog.append(("inv", sharer))
                            messages[node] += 1
                        st[1].intersection_update({writer})
                    if writer == node:
                        st[1].clear()
                        st[0], st[2] = _IDLE, None
                    else:
                        if _permits_w(st, writer, node):
                            continue
                        outgoing.setdefault((writer, 2), []).append(entry.block)
                        st[1].clear()
                        st[0], st[2] = _EXCL, writer
            # bulk sends, mirroring _send_bulk's (dst, tag) order
            for (dst, _tag), blocks in sorted(outgoing.items()):
                for first, count in coalesce_blocks(blocks):
                    prog.append(("send", dst, count))
                    messages[node] += 1
                    bytes_sent[node] += count * B
                    blocks_sent[node] += count
                    blocks_received[dst] += count
                    for b in range(first, first + count):
                        self.presented.add((dst, b))
                        self._register_presend(dst, b, sched)
            programs.append(prog)

        return PresendWalk(
            directive=directive,
            programs=programs,
            messages=messages,
            bytes_sent=bytes_sent,
            blocks_sent=blocks_sent,
            blocks_received=blocks_received,
        )

    # -- phases ---------------------------------------------------------------

    def _walk_phase(self, ph) -> PhaseWalk:
        n = self.n
        compute = np.asarray(ph.compute, dtype=np.float64)
        accesses = np.array([len(f) for f in ph.flat], dtype=np.int64)
        read_misses = np.zeros(n, dtype=np.int64)
        write_misses = np.zeros(n, dtype=np.int64)
        coeff = np.zeros((n, 5), dtype=np.float64)
        messages = np.zeros(n, dtype=np.int64)
        bytes_sent = np.zeros(n, dtype=np.int64)
        services = np.zeros((n, n), dtype=np.int64)

        events, touched, writes, pingpong = self._phase_events(ph)
        learn = (self.predictive and self.current_directive is not None
                 and not self.suppress_learning)
        sched = None  # fetched lazily: the sim only touches the store on a miss
        B = self.block_size

        for block, node, kind, _pos in events:
            home = self.layout.home(block)
            st = self._state(block)
            if kind == 0:  # read
                if _permits_r(st, node, home):
                    continue
                read_misses[node] += 1
                self.total_requests += 1
                if learn:
                    if sched is None:
                        sched = self.store.fetch(self.current_directive)
                    sched.record(block, node, "r")
                self._classify_read(st, node, home, coeff, messages,
                                    bytes_sent, services, B)
            else:  # write
                if _permits_w(st, node, home):
                    continue
                write_misses[node] += 1
                self.total_requests += 1
                if learn:
                    if sched is None:
                        sched = self.store.fetch(self.current_directive)
                    sched.record(block, node, "w")
                self._classify_write(st, node, home, coeff, messages,
                                     bytes_sent, services, B)

        # completed accesses: usefulness judgment + group bookkeeping
        if self.optimized or self.protocol == "write-update":
            for pair in touched:
                self.group_accessed.add(pair)
                if self.predictive:
                    owner = self.pending.pop(pair, None)
                    if owner is not None:
                        owner.note_useful()

        pushes = None
        if self.protocol == "write-update":
            pushes = self._push_program(writes, messages, bytes_sent)

        return PhaseWalk(
            name=ph.name,
            directive=self.current_directive,
            compute=compute,
            accesses=accesses,
            read_misses=read_misses,
            write_misses=write_misses,
            coeff=coeff,
            messages=messages,
            bytes_sent=bytes_sent,
            services=services,
            pingpong=pingpong,
            pushes=pushes,
        )

    def _phase_events(self, ph):
        """Fold access streams to per-(node, block) first-read/first-write
        events, ordered by (block, first-op position, read-first, node).

        A block's repeated accesses after the granting fault hit, and a
        read *after* the node's first write hits (the write grant installs a
        writable copy), so at most two events per (node, block) can miss:
        the first read (if it precedes the write) and the first write.

        The fold is exact unless the simulator's timing interleaves two
        nodes *writing the same block* within one phase — then ownership
        ping-pongs and later accesses re-miss.  That alternation count is
        timing-dependent, so the walk only measures the *exposure* (how
        many separate write bursts per (node, block) the op-position
        interleaving suggests) and leaves the realized fraction to the
        calibration's ``delta`` coefficient.
        """
        cols_node, cols_block, cols_kind, cols_pos = [], [], [], []
        for node in range(self.n):
            flat = ph.flat[node]
            if len(flat) == 0:
                continue
            blocks = self.layout.blocks(ph.agg[node], flat)
            cols_node.append(np.full(len(flat), node, dtype=np.int64))
            cols_block.append(blocks)
            cols_kind.append(ph.kind[node].astype(np.int64))
            cols_pos.append(np.arange(len(flat), dtype=np.int64))
        if not cols_node:
            return [], set(), [], np.zeros(self.n, dtype=np.float64)
        nodec = np.concatenate(cols_node)
        blockc = np.concatenate(cols_block)
        kindc = np.concatenate(cols_kind)
        posc = np.concatenate(cols_pos)
        pingpong = self._pingpong_exposure(nodec, blockc, kindc, posc)

        # first occurrence of each (node, block, kind)
        order = np.lexsort((posc, kindc, blockc, nodec))
        nn, bb, kk, pp = nodec[order], blockc[order], kindc[order], posc[order]
        first = np.ones(len(nn), dtype=bool)
        if len(nn) > 1:
            first[1:] = (nn[1:] != nn[:-1]) | (bb[1:] != bb[:-1]) | (kk[1:] != kk[:-1])
        nn, bb, kk, pp = nn[first], bb[first], kk[first], pp[first]

        # drop read events preceded by the same node's write to the block
        events: list[tuple[int, int, int, int]] = []
        touched: set[tuple[int, int]] = set()
        writes: list[tuple[int, int]] = []
        i = 0
        m = len(nn)
        while i < m:
            node, block = int(nn[i]), int(bb[i])
            touched.add((node, block))
            if i + 1 < m and nn[i + 1] == nn[i] and bb[i + 1] == bb[i]:
                # both a read and a write (kind sorts read first)
                pos_r, pos_w = int(pp[i]), int(pp[i + 1])
                if pos_r < pos_w:
                    events.append((block, node, 0, pos_r))
                events.append((block, node, 1, pos_w))
                writes.append((node, block))
                i += 2
            else:
                kind = int(kk[i])
                events.append((block, node, kind, int(pp[i])))
                if kind == 1:
                    writes.append((node, block))
                i += 1
        # same-block events from different nodes ordered by op position
        # (the intra-phase time proxy), reads before writes on ties
        events.sort(key=lambda ev: (ev[0], ev[3], ev[2], ev[1]))
        return events, touched, writes, pingpong

    def _pingpong_exposure(self, nodec, blockc, kindc, posc) -> np.ndarray:
        """Per-node ping-pong chain exposure (see docs/MODEL.md).

        Three-stage fold.  First, each (node, block)'s accesses are
        compressed into *bursts*: maximal groups whose consecutive op
        positions are at most ``_BURST_GAP`` apart.  A tight burst is
        shorter than a remote steal's round trip, so it behaves atomically
        in the simulator even when another node's positions interleave with
        it (SPLASH-style slot-per-processor sweeps look fully alternated by
        position yet realize essentially no ping-pong).  Second, the bursts
        of each block are run-compressed in start-position order; every
        write-bearing run after a node's first one is a potential mid-phase
        re-steal the first-access fold cannot represent.  Third, a block's
        extra runs are summed into its *chain length*, and every node that
        touches the block is charged the whole chain: steals serialize (the
        block bounces through one home), so each participant stalls for the
        full bounce chain, not just its own share — which is also what
        spreads the cost onto the barrier (SYNCH) of non-participants.
        Positions still over-interleave relative to real timing, so the
        result enters the prediction only scaled by the fitted ``delta``.
        """
        exposure = np.zeros(self.n, dtype=np.float64)
        # stage 1: own-stream bursts per (block, node)
        order = np.lexsort((posc, nodec, blockc))
        b1, n1, k1, p1 = (blockc[order], nodec[order], kindc[order],
                          posc[order])
        new_burst = np.ones(len(b1), dtype=bool)
        new_burst[1:] = ((b1[1:] != b1[:-1]) | (n1[1:] != n1[:-1])
                         | (p1[1:] - p1[:-1] > _BURST_GAP))
        starts = np.flatnonzero(new_burst)
        if not len(starts):
            return exposure
        bb, bn, bp = b1[starts], n1[starts], p1[starts]
        bw = np.maximum.reduceat(k1, starts)
        # stage 2: interleave bursts per block by start position
        order = np.lexsort((bn, bp, bb))
        b2, n2, k2 = bb[order], bn[order], bw[order]
        boundary = np.ones(len(b2), dtype=bool)
        boundary[1:] = (b2[1:] != b2[:-1]) | (n2[1:] != n2[:-1])
        rs = np.flatnonzero(boundary)
        run_write = np.maximum.reduceat(k2, rs) > 0
        if not run_write.any():
            return exposure
        # extra write-bearing runs per (block, node) pair
        key = (b2[rs][run_write] * self.n + n2[rs][run_write])
        uniq, counts = np.unique(key, return_counts=True)
        # stage 3: per-block chain length = total extra runs over all nodes
        cb = uniq // self.n
        bnd = np.ones(len(cb), dtype=bool)
        bnd[1:] = cb[1:] != cb[:-1]
        cstarts = np.flatnonzero(bnd)
        chain_len = np.add.reduceat(counts - 1, cstarts)
        chain_blk = cb[cstarts]
        nz = chain_len > 0
        chain_blk, chain_len = chain_blk[nz], chain_len[nz]
        if not len(chain_blk):
            return exposure
        # every participant (any burst on the block) bears the full chain
        pairs = np.unique(bb * self.n + bn)
        pblk = pairs // self.n
        pnode = (pairs % self.n).astype(np.intp)
        idx = np.searchsorted(chain_blk, pblk)
        idx_c = np.minimum(idx, len(chain_blk) - 1)
        valid = chain_blk[idx_c] == pblk
        np.add.at(exposure, pnode[valid],
                  chain_len[idx_c[valid]].astype(np.float64))
        return exposure

    # -- stache/predictive miss classification --------------------------------

    def _classify_read(self, st, node, home, coeff, messages, bytes_sent,
                       services, B) -> None:
        c = coeff[node]
        if st[0] == _UPD or self.protocol == "write-update":
            # write-update consumer registration: home stays writable
            # (UPDATE_SHARED) and the consumer is pushed to forever after
            c += (1, 1, 1, 2, 1)
            messages[node] += 1
            messages[home] += 1
            bytes_sent[home] += B
            services[node, home] += 1
            st[0] = _UPD
            st[1].add(node)
            return
        if node == home:
            # home can only read-miss on an exclusive remote copy
            if st[0] == _EXCL:
                owner = st[2]
                c += (1, 1, 1, 3, 2)  # LOC_RECALL
                messages[home] += 1
                messages[owner] += 1
                bytes_sent[owner] += B
                services[node, home] += 2
                st[0], st[2] = _IDLE, None
                st[1].clear()
            else:  # defensive: immediate local grant
                c += (1, 0, 0, 1, 1)  # LOC_IDLE
                services[node, home] += 1
            return
        if st[0] == _EXCL:
            owner = st[2]
            c += (1, 2, 2, 4, 2)  # REM_RECALL
            messages[node] += 1
            messages[home] += 2
            bytes_sent[home] += B
            messages[owner] += 1
            bytes_sent[owner] += B
            services[node, home] += 2
            st[0], st[2] = _SHARED, None
            st[1] = {node}
        else:  # IDLE / SHARED: home memory is current
            c += (1, 1, 1, 2, 1)  # REM_CURRENT
            messages[node] += 1
            messages[home] += 1
            bytes_sent[home] += B
            services[node, home] += 1
            st[0] = _SHARED
            st[1].add(node)

    def _classify_write(self, st, node, home, coeff, messages, bytes_sent,
                        services, B) -> None:
        if st[0] == _UPD or self.protocol == "write-update":
            raise ProtocolError(
                f"write-update protocol requires producer-owned data; node "
                f"{node} wrote a block homed at {home}",
                node=node,
            )
        c = coeff[node]
        if node == home:
            if st[0] == _EXCL:
                owner = st[2]
                c += (1, 1, 1, 3, 2)  # LOC_RECALL (RECALL_INV path)
                messages[home] += 1
                messages[owner] += 1
                bytes_sent[owner] += B
                services[node, home] += 2
            elif st[0] == _SHARED:
                k = len(st[1])
                c += (1, 2, 0, 2 + k, 1 + k)  # LOC_WRITE_SHARED(k)
                messages[home] += k
                for sharer in st[1]:
                    messages[sharer] += 1  # ACK
                services[node, home] += 1 + k
            else:  # defensive: immediate local grant
                c += (1, 0, 0, 1, 1)  # LOC_IDLE
                services[node, home] += 1
            st[0], st[2] = _IDLE, None
            st[1].clear()
            return
        if st[0] == _EXCL:
            owner = st[2]
            c += (1, 2, 2, 4, 2)  # REM_RECALL (write flavor)
            messages[node] += 1
            messages[home] += 2
            bytes_sent[home] += B
            messages[owner] += 1
            bytes_sent[owner] += B
            services[node, home] += 2
        elif st[0] == _SHARED and st[1] - {node}:
            others = st[1] - {node}
            k = len(others)
            c += (1, 3, 1, 3 + k, 1 + k)  # REM_WRITE_SHARED(k)
            messages[node] += 1
            messages[home] += k + 1
            bytes_sent[home] += B
            for sharer in others:
                messages[sharer] += 1  # ACK
            services[node, home] += 1 + k
        else:
            # IDLE, or the writer is the sole sharer (in-place upgrade)
            c += (1, 1, 1, 2, 1)  # REM_CURRENT
            messages[node] += 1
            messages[home] += 1
            bytes_sent[home] += B
            services[node, home] += 1
        st[0], st[2] = _EXCL, node
        st[1] = set()

    # -- write-update push programs -------------------------------------------

    def _push_program(self, writes, messages, bytes_sent):
        """Mirror of ``WriteUpdateProtocol.adjust_barrier``'s push loop."""
        pushes: dict[int, dict[int, int]] = {}
        seen: set[tuple[int, int]] = set()
        for node, block in sorted(writes):
            if (node, block) in seen:
                continue
            seen.add((node, block))
            home = self.layout.home(block)
            if home != node:
                raise ProtocolError(
                    f"node {node} wrote block {block} homed at {home} "
                    f"under write-update",
                    node=node, block=block,
                )
            st = self._state(block)
            for consumer in st[1]:
                per = pushes.setdefault(node, {})
                per[consumer] = per.get(consumer, 0) + 1  # coalesce_updates=False
        program = []
        for producer, per_consumer in sorted(pushes.items()):
            runs = sorted(per_consumer.items())
            n_runs = sum(r for _, r in runs)
            messages[producer] += n_runs
            bytes_sent[producer] += n_runs * self.block_size
            program.append((producer, runs))
        return program


# -- the assemble stage -------------------------------------------------------


def _assemble(walk: WalkResult, config: MachineConfig, alpha: float,
              gamma: float, delta: float) -> tuple[RunStats, list]:
    """Evaluate a walk against one cost table; returns (stats, features)."""
    n = walk.n_nodes
    cfg = config
    F, L = float(cfg.fault_cost), float(cfg.msg_latency)
    h, d = float(cfg.handler_cost), float(cfg.directory_lookup_cost)
    B = walk.block_size
    basis = np.array([F, L, L + cfg.per_byte_cost * B, h, d])
    #: one ping-pong re-steal costs a remote recall (REM_RECALL, write)
    steal_cost = float(np.array([1, 2, 2, 4, 2]) @ basis)
    hit_cost = float(cfg.cache_hit_cost)
    bar = float(cfg.barrier_latency)

    stats = RunStats(n)
    marks = {c: 0.0 for c in TimeCategory}
    clock = 0.0
    features: list[tuple[float, float, float]] = []

    def cycle_delta() -> dict[str, float]:
        delta: dict[str, float] = {}
        for c in TimeCategory:
            total = sum(node.cycles[c] for node in stats.nodes)
            if total != marks[c]:
                delta[c.value] = total - marks[c]
                marks[c] = total
        return delta

    for step_kind, step in walk.steps:
        if step_kind == "presend":
            clock = _assemble_presend(step, stats, cfg, clock)
            continue

        compute = step.compute + hit_cost * step.accesses
        base_wait = step.coeff @ basis
        n_miss = (step.read_misses + step.write_misses).astype(np.float64)

        # M/D/1-style handler contention: demand each home's handler sees
        # this phase vs. the phase's uncontended makespan
        contention = np.zeros(n)
        demand = step.services.sum(axis=0).astype(np.float64) * (h + d)
        span = float(np.max(compute + base_wait)) if n else 0.0
        if span > 0.0 and demand.any():
            rho = np.minimum(demand / span, _RHO_MAX)
            wait_per_service = (h + d) * rho / (2.0 * (1.0 - rho))
            contention = step.services @ wait_per_service

        steal = (step.pingpong * steal_cost if step.pingpong is not None
                 else np.zeros(n))
        wait = np.maximum(
            base_wait + alpha * n_miss + gamma * contention + delta * steal,
            0.0)
        start = clock
        arrivals = start + compute + wait

        for i in range(n):
            stats.nodes[i].add(TimeCategory.COMPUTE, float(compute[i]))
            stats.nodes[i].add(TimeCategory.REMOTE_WAIT, float(wait[i]))

        if step.pushes:
            arrivals = _assemble_pushes(step.pushes, arrivals, stats, cfg)

        release = float(np.max(arrivals)) + bar if n else clock + bar
        for i in range(n):
            stats.nodes[i].add(TimeCategory.SYNCH, release - float(arrivals[i]))
        clock = release

        for i in range(n):
            ns = stats.nodes[i]
            ns.read_misses += int(step.read_misses[i])
            ns.write_misses += int(step.write_misses[i])
            ns.local_hits += int(step.accesses[i] - step.read_misses[i]
                                 - step.write_misses[i])
            ns.messages_sent += int(step.messages[i])
            ns.bytes_sent += int(step.bytes_sent[i])

        stats.phases.append(PhaseBreakdown(
            step.name,
            step.directive,
            start,
            release,
            misses=int(n_miss.sum()),
            hits=int(step.accesses.sum() - n_miss.sum()),
            messages=int(step.messages.sum()),
            cycles=cycle_delta(),
        ))
        features.append((float(n_miss.sum()), float(contention.sum()),
                         float(steal.sum())))

    stats.wall_time = clock
    stats.total_remote_requests = walk.total_requests
    stats.schedules_degraded = walk.degraded
    for i in range(n):
        stats.nodes[i].presend_useless_blocks += int(walk.useless[i])
    return stats, features


def _assemble_presend(step: PresendWalk, stats: RunStats,
                      cfg: MachineConfig, start: float) -> float:
    """Replay pre-send token programs; mirrors ``Machine.begin_group``."""
    n = len(step.programs)
    h = float(cfg.handler_cost)
    e = float(cfg.presend_entry_cost)
    recall_cost = 2.0 * cfg.message_cost(cfg.block_size) + 2.0 * h
    send_done = [start] * n
    #: per destination: (arrival, src, seq, handler cost) of pre-send traffic
    inbound: dict[int, list[tuple[float, int, int, float]]] = {}
    seq = 0
    for home, prog in enumerate(step.programs):
        cursor = start
        for token in prog:
            op = token[0]
            if op == "e":
                cursor += e
            elif op == "recall":
                cursor += recall_cost
            elif op == "inv":
                dst = token[1]
                arrival = cursor + cfg.message_cost(0)
                inbound.setdefault(dst, []).append((arrival, home, seq, h))
                seq += 1
                cursor += e
            else:  # ("send", dst, count)
                dst, count = token[1], token[2]
                payload = count * cfg.block_size
                if count > 1:
                    flight = cfg.bulk_message_cost(payload)
                    install = h + e * count
                else:
                    flight = cfg.message_cost(payload)
                    install = h
                inbound.setdefault(dst, []).append(
                    (cursor + flight, home, seq, install))
                seq += 1
                cursor += h  # injection occupancy
        send_done[home] = cursor

    install_busy = [start] * n
    for dst, queue in inbound.items():
        busy = start
        for arrival, _src, _seq, cost in sorted(queue):
            busy = max(arrival, busy) + cost
        install_busy[dst] = busy

    completions = [max(send_done[i], install_busy[i], start) for i in range(n)]
    release = max(completions) + cfg.barrier_latency
    for node in stats.nodes:
        node.add(TimeCategory.PREDICTIVE, release - start)
        node.presend_blocks_sent += int(step.blocks_sent[node.node])
        node.presend_blocks_received += int(step.blocks_received[node.node])
        node.messages_sent += int(step.messages[node.node])
        node.bytes_sent += int(step.bytes_sent[node.node])
    return release


def _assemble_pushes(program, arrivals: np.ndarray, stats: RunStats,
                     cfg: MachineConfig) -> np.ndarray:
    """Replay a write-update push program; mirrors ``adjust_barrier``."""
    h = float(cfg.handler_cost)
    per_msg = cfg.message_cost(cfg.block_size)
    install = h + float(cfg.presend_entry_cost)
    adjusted = arrivals.astype(np.float64).copy()
    install_done: dict[int, float] = {}
    for producer, runs in program:
        cursor = float(adjusted[producer])
        for consumer, n_runs in runs:
            done = install_done.get(consumer, 0.0)
            for _ in range(n_runs):
                send = cursor + h
                done = max(done, send + per_msg) + install
                cursor = send
            install_done[consumer] = done
        stats.nodes[producer].add(
            TimeCategory.REMOTE_WAIT, cursor - float(adjusted[producer]))
        adjusted[producer] = cursor
    for consumer, done in install_done.items():
        if done > adjusted[consumer]:
            stats.nodes[consumer].add(
                TimeCategory.REMOTE_WAIT, done - float(adjusted[consumer]))
            adjusted[consumer] = done
    return adjusted


# -- walk caching and the public entry point ----------------------------------


_WALK_CACHE: dict[tuple, WalkResult] = {}


def _warm_fingerprint(warm) -> str | None:
    if not warm:
        return None
    return json.dumps(sorted(warm, key=lambda r: r.get("directive", -1)),
                      sort_keys=True)


def _get_walk(recording: ProgramRecording, config: MachineConfig,
              protocol: str, optimized: bool, warm) -> tuple[WalkResult, bool]:
    key = (recording.key, config.block_size, protocol, optimized,
           _warm_fingerprint(warm))
    hit = _WALK_CACHE.get(key)
    if hit is not None:
        return hit, True
    layout = LayoutModel(recording, config)
    walk = _Walker(recording, layout, protocol, optimized, warm).run()
    _WALK_CACHE[key] = walk
    return walk, False


def clear_walk_cache() -> None:
    _WALK_CACHE.clear()


def predict(app, build_kwargs: dict | None = None, *, protocol: str,
            optimized: bool, config: MachineConfig, variant: str = "cstar",
            warm=None, calibration=None) -> ModelPrediction:
    """Predict one configuration's :class:`RunStats` analytically.

    ``app`` is an application module with a ``build(**kwargs)`` entry point
    (``repro.apps``); ``warm`` is an iterable of corpus schedule records
    (see ``repro.corpus``) to warm-start the predictive protocol's learned
    schedules; ``calibration`` supplies per-protocol residual coefficients
    (default: uncalibrated — alpha 0, contention scale 1).
    """
    if protocol not in PROTOCOLS:
        raise ConfigError(
            f"unknown protocol {protocol!r}; expected one of {PROTOCOLS}")
    recording = record_program(
        app, build_kwargs, variant,
        n_nodes=config.n_nodes, page_size=config.page_size,
    )
    walk, cached = _get_walk(recording, config, protocol, optimized, warm)
    if calibration is None:
        alpha, gamma, delta = 0.0, 1.0, 0.0
    else:
        alpha, gamma, delta = calibration.for_protocol(protocol)
    stats, features = _assemble(walk, config, alpha, gamma, delta)
    return ModelPrediction(
        stats=stats,
        protocol=protocol,
        optimized=optimized,
        phase_features=features,
        walk_cached=cached,
    )
