"""Machine-free program recording (the model's front end).

The simulator's two-pass execution (DESIGN.md §5.1) already separates
numerics from timing: the *value pass* computes real values and records
block-level access traces, and only the *timing pass* needs the machine.
The model exploits that split — it runs the value pass once on a
:class:`RecordingMachine` stand-in (real :class:`MachineConfig` + real
:class:`AddressSpace`, no nodes, no engine) and keeps the access streams at
*aggregate level* (aggregate, flat element index) rather than block level.

Recording at aggregate level is what makes one recording serve a whole
sweep: cache-block ids depend on ``block_size``, but region bases depend
only on ``page_size`` and declaration order, so
:class:`~repro.model.layout.LayoutModel` can re-derive blocks and homes for
any block size from the same recording.  Control flow (adaptive refinement
thresholds, the Barnes tree) depends on computed *values*, never on timing
or block size, so the recorded phase sequence is exact for every protocol,
placement, and cost table evaluated against it.

Recordings are cached per ``(app, build kwargs, variant, n_nodes,
page_size)`` — the axes that change the value pass or the address map.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cstar.driver import Env, execute
from repro.cstar.runtime import CStarRuntime, ElementContext
from repro.tempest.addrspace import AddressSpace
from repro.util.config import MachineConfig


class _NullTags:
    """Tag-table stand-in: aggregate allocation sets home tags we ignore."""

    __slots__ = ()

    def set(self, block: int, tag) -> None:
        pass


class _NullNode:
    __slots__ = ("tags",)

    def __init__(self) -> None:
        self.tags = _NullTags()


class RecordingMachine:
    """Just enough machine for the value pass: config, address space, and an
    event log where :class:`Machine` would have an engine."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self.addr_space = AddressSpace(config)
        self.nodes = [_NullNode() for _ in range(config.n_nodes)]
        #: ("begin_group", id) | ("end_group", None) | ("phase", PhaseTrace)
        self.events: list[tuple] = []
        self.protocol = None

    def home(self, block: int) -> int:
        return self.addr_space.home_of_block(block)

    def begin_group(self, directive_id: int) -> None:
        self.events.append(("begin_group", directive_id))

    def end_group(self) -> None:
        self.events.append(("end_group", None))

    def run_phase(self, trace) -> None:
        self.events.append(("phase", trace))


class RecordingContext(ElementContext):
    """Value-pass context that records ``(kind, aggregate, flat index)``.

    Must keep the base class's two side effects intact: pending compute is
    flushed into the op stream (COMPUTE cycles are part of the prediction)
    and reads/writes go through real aggregate data (the value pass drives
    application control flow).
    """

    __slots__ = ()

    def read(self, agg, idx):
        if self._pending > 0:
            self._ops.append(("c", self._pending))
            self._pending = 0.0
        self._ops.append(("r", agg, agg.flatten(idx)))
        snap = self.runtime._snapshot.get(agg.name)
        arr = snap if snap is not None else agg.data
        return arr[idx]

    def write(self, agg, idx, value) -> None:
        if self._pending > 0:
            self._ops.append(("c", self._pending))
            self._pending = 0.0
        self._ops.append(("w", agg, agg.flatten(idx)))
        self.runtime._writes.append((agg, tuple(int(i) for i in idx), value, False))

    def update(self, agg, idx, delta) -> None:
        if self._pending > 0:
            self._ops.append(("c", self._pending))
            self._pending = 0.0
        flat = agg.flatten(idx)
        self._ops.append(("r", agg, flat))
        self._ops.append(("w", agg, flat))
        self.runtime._writes.append((agg, tuple(int(i) for i in idx), delta, True))


class RecordingRuntime(CStarRuntime):
    context_factory = RecordingContext


@dataclass
class RecordedPhase:
    """One parallel phase's access streams, finalized to numpy arrays.

    Per node: ``agg[i]`` / ``flat[i]`` / ``kind[i]`` (0=read, 1=write) are
    parallel arrays in op order; ``compute[i]`` is the node's total charged
    compute cycles.  The op-order index doubles as the model's intra-phase
    time proxy when ordering same-block events from different nodes.
    """

    name: str
    agg: list[np.ndarray]
    flat: list[np.ndarray]
    kind: list[np.ndarray]
    compute: list[float]

    def access_count(self, node: int) -> int:
        return len(self.flat[node])


@dataclass
class ProgramRecording:
    """The full value-pass recording of one program build."""

    key: tuple
    n_nodes: int
    page_size: int
    #: per-aggregate layout constants, indexed by declaration order
    agg_names: list[str]
    agg_base: np.ndarray
    agg_stride: np.ndarray
    #: the recording machine's address space (home-policy closures are
    #: valid for any block size: bases depend only on page_size)
    addr_space: AddressSpace
    #: ("begin_group", id) | ("end_group", None) | ("phase", RecordedPhase)
    events: list[tuple]

    def phases(self):
        return [ev for kind, ev in self.events if kind == "phase"]


_CACHE: dict[tuple, ProgramRecording] = {}


def recording_key(app, build_kwargs: dict | None, variant: str,
                  n_nodes: int, page_size: int) -> tuple:
    return (
        app.__name__,
        tuple(sorted((build_kwargs or {}).items())),
        variant,
        n_nodes,
        page_size,
    )


def record_program(app, build_kwargs: dict | None = None,
                   variant: str = "cstar", *, n_nodes: int,
                   page_size: int) -> ProgramRecording:
    """Run the value pass once and return (or reuse) its recording.

    Mirrors ``EmbeddedProgram.run(machine, optimized=True)``: the compiled
    (placed) flow tree is executed so group boundaries and directive ids
    match the simulator's optimized runs; unoptimized evaluation simply
    ignores the group events (the phase sequence is identical — placement
    only wraps phases in FlowGroups).
    """
    key = recording_key(app, build_kwargs, variant, n_nodes, page_size)
    hit = _CACHE.get(key)
    if hit is not None:
        return hit

    kwargs = dict(build_kwargs or {})
    if variant != "cstar":
        kwargs["variant"] = variant
    prog = app.build(**kwargs)
    config = MachineConfig(n_nodes=n_nodes, page_size=page_size)
    machine = RecordingMachine(config)
    runtime = RecordingRuntime(machine)
    env = Env(runtime=runtime, params={})
    prog.setup(env)
    root = prog.compile().root
    execute(root, env)

    rec = _finalize(key, machine, runtime)
    _CACHE[key] = rec
    return rec


def _finalize(key: tuple, machine: RecordingMachine,
              runtime: RecordingRuntime) -> ProgramRecording:
    agg_names = list(runtime.aggregates)
    agg_index = {name: i for i, name in enumerate(agg_names)}
    aggs = [runtime.aggregates[n] for n in agg_names]
    agg_base = np.array([a.region.base for a in aggs], dtype=np.int64)
    agg_stride = np.array([a.stride_bytes for a in aggs], dtype=np.int64)

    events: list[tuple] = []
    for kind, payload in machine.events:
        if kind != "phase":
            events.append((kind, payload))
            continue
        agg: list[np.ndarray] = []
        flat: list[np.ndarray] = []
        opk: list[np.ndarray] = []
        compute: list[float] = []
        for ops in payload.ops:
            a: list[int] = []
            f: list[int] = []
            k: list[int] = []
            c = 0.0
            for op in ops:
                tag = op[0]
                if tag == "c":
                    c += op[1]
                else:
                    a.append(agg_index[op[1].name])
                    f.append(op[2])
                    k.append(0 if tag == "r" else 1)
            agg.append(np.array(a, dtype=np.int64))
            flat.append(np.array(f, dtype=np.int64))
            opk.append(np.array(k, dtype=np.uint8))
            compute.append(c)
        events.append(("phase", RecordedPhase(
            name=payload.name, agg=agg, flat=flat, kind=opk, compute=compute,
        )))

    return ProgramRecording(
        key=key,
        n_nodes=machine.config.n_nodes,
        page_size=machine.config.page_size,
        agg_names=agg_names,
        agg_base=agg_base,
        agg_stride=agg_stride,
        addr_space=machine.addr_space,
        events=events,
    )


def clear_cache() -> None:
    """Drop cached recordings (tests that reconfigure apps in place)."""
    _CACHE.clear()
