"""Cross-validation: model vs. simulator over the full benchmark suite.

Runs every bar of the paper's Figures 5-7 (the Table-1 workloads under all
three protocols and both placements) through the simulator *and* the
analytical model, records per-metric relative errors, and gates them
against ratio-style error budgets:

* ``wall_time`` (and with it the paper's cycle totals) within
  :data:`WALL_BUDGET` on every case;
* ``compute`` cycles exact — the model replays the same value pass;
* pre-send block counts **exact** on fault-free predictive runs whose
  miss stream the walk reproduces exactly — there the model mirrors the
  learned-schedule machinery one-for-one, so any count drift means a
  modeling bug, not an approximation.  Where mid-phase ping-pong makes
  the simulator's *online learning itself* timing-dependent (the walk's
  miss count already differs), the counts fall under
  :data:`PRESEND_BUDGET` instead.

The resulting document (``repro.model-validation/v1``) also embeds a
*sweep demonstration*: the same cost-axis grid run sim-backed and
model-backed (see :func:`demo_grid_spec`), with per-point shape agreement
and — when ``timing=True`` — the measured wall-clock speedup.  Timing
lives under the separate ``"measured"`` key because seconds are
machine-dependent: determinism tests regenerate the document with
``timing=False`` and compare bytes, while the committed artifact keeps the
one-time measured speedup that demonstrates the >=100x claim.
"""

from __future__ import annotations

import pathlib
import time

from repro.model.calibrate import Calibration, default_calibration
from repro.model.predictor import predict
from repro.util.errors import ReproError

VALIDATION_SCHEMA = "repro.model-validation/v1"

#: relative-error budget on wall time (the paper's cycle totals)
WALL_BUDGET = 0.10

#: pre-send count tolerance where online learning is timing-dependent
#: (the walk did not reproduce the sim's miss stream exactly); the
#: absolute slack covers small counters where one schedule entry is a
#: large fraction
PRESEND_BUDGET = 0.05
PRESEND_ABS_SLACK = 8

#: shape gate for the sweep demonstration: worst per-point wall error and
#: minimum fraction of point pairs the two backends order identically
SWEEP_WALL_BUDGET = 0.10
SWEEP_ORDERING_MIN = 0.95


class ValidationError(ReproError):
    """The model fell outside its committed error budgets."""


def validation_specs(quick: bool = False) -> list:
    """The benchmark matrix: every Figure 5-7 bar as a VersionSpec.

    ``quick`` selects the CI subset — one fine-grain case per protocol —
    which keeps the gate under half a minute while still crossing all
    three protocols' machinery.
    """
    from repro.apps import adaptive, barnes, water
    from repro.bench.figures import (
        ADAPTIVE_CFG,
        ADAPTIVE_KW,
        BARNES_CFG,
        BARNES_KW,
        WATER_CFG,
        WATER_KW,
    )
    from repro.bench.harness import VersionSpec

    quick_specs = [
        VersionSpec("fig5/unopt (32)", adaptive, "stache", False,
                    ADAPTIVE_CFG.with_(block_size=32), dict(ADAPTIVE_KW)),
        VersionSpec("fig5/opt (32)", adaptive, "predictive", True,
                    ADAPTIVE_CFG.with_(block_size=32), dict(ADAPTIVE_KW)),
        VersionSpec("fig6/spmd wu (32)", barnes, "write-update", False,
                    BARNES_CFG.with_(block_size=32), dict(BARNES_KW),
                    variant="spmd"),
    ]
    if quick:
        return quick_specs
    return [
        quick_specs[0],
        VersionSpec("fig5/unopt (256)", adaptive, "stache", False,
                    ADAPTIVE_CFG.with_(block_size=256), dict(ADAPTIVE_KW)),
        quick_specs[1],
        VersionSpec("fig5/opt (256)", adaptive, "predictive", True,
                    ADAPTIVE_CFG.with_(block_size=256), dict(ADAPTIVE_KW)),
        VersionSpec("fig6/unopt (32)", barnes, "stache", False,
                    BARNES_CFG.with_(block_size=32), dict(BARNES_KW)),
        VersionSpec("fig6/unopt (1024)", barnes, "stache", False,
                    BARNES_CFG.with_(block_size=1024), dict(BARNES_KW)),
        VersionSpec("fig6/opt (32)", barnes, "predictive", True,
                    BARNES_CFG.with_(block_size=32), dict(BARNES_KW)),
        VersionSpec("fig6/opt (1024)", barnes, "predictive", True,
                    BARNES_CFG.with_(block_size=1024), dict(BARNES_KW)),
        quick_specs[2],
        VersionSpec("fig7/unopt (64)", water, "stache", False,
                    WATER_CFG.with_(block_size=64), dict(WATER_KW)),
        VersionSpec("fig7/opt (32)", water, "predictive", True,
                    WATER_CFG.with_(block_size=32), dict(WATER_KW)),
        VersionSpec("fig7/splash (64)", water, "stache", False,
                    WATER_CFG.with_(block_size=64), dict(WATER_KW),
                    variant="splash"),
    ]


def demo_grid_spec() -> dict:
    """The sweep-demonstration grid: Water's Figure-7 baseline swept over
    pure cost axes (one cached walk serves all 72 points on the model
    side, which is where the >=100x wall-clock advantage comes from)."""
    from repro.apps import water
    from repro.bench.figures import WATER_CFG, WATER_KW

    return {
        "app": water,
        "build_kwargs": dict(WATER_KW),
        "base_config": WATER_CFG.with_(block_size=64),
        "protocol": "stache",
        "optimized": False,
        "variant": "cstar",
        "axes": {
            "msg_latency": [250, 500, 1000, 2000, 4000, 8000],
            "per_byte_cost": [0.15, 0.3, 0.6, 1.2],
            "fault_cost": [50, 100, 200],
        },
    }


def _rel_err(model: float, sim: float) -> float | None:
    """Signed relative error; ``None`` when the sim count is zero but the
    model's is not (JSON has no Infinity)."""
    if sim == 0:
        return 0.0 if model == 0 else None
    return round((model - sim) / sim, 9)


def _case_row(spec, calibration, *, fast: bool) -> dict:
    from repro.bench.harness import run_version
    from repro.sim.stats import TimeCategory

    sim = run_version(spec, fast=fast).stats
    pred = predict(
        spec.app, spec.build_kwargs, protocol=spec.protocol,
        optimized=spec.optimized, config=spec.config, variant=spec.variant,
        calibration=calibration,
    ).stats
    stot, mtot = sim.totals(), pred.totals()
    errors = {
        "wall_time": _rel_err(pred.wall_time, sim.wall_time),
        "misses": _rel_err(pred.misses, sim.misses),
        "local_hits": _rel_err(pred.local_hits, sim.local_hits),
        "messages": _rel_err(pred.messages, sim.messages),
        "bytes_on_wire": _rel_err(pred.bytes_on_wire, sim.bytes_on_wire),
    }
    for cat in TimeCategory:
        errors[cat.value] = _rel_err(mtot[cat], stot[cat])
    presend = {
        "sim_sent": int(sum(n.presend_blocks_sent for n in sim.nodes)),
        "model_sent": int(sum(n.presend_blocks_sent for n in pred.nodes)),
        "sim_useless": int(sum(n.presend_useless_blocks
                               for n in sim.nodes)),
        "model_useless": int(sum(n.presend_useless_blocks
                                 for n in pred.nodes)),
    }
    return {
        "label": spec.label,
        "app": spec.app.__name__.rsplit(".", 1)[-1],
        "variant": spec.variant,
        "protocol": spec.protocol,
        "optimized": spec.optimized,
        "block_size": spec.config.block_size,
        "sim_wall": round(float(sim.wall_time), 6),
        "model_wall": round(float(pred.wall_time), 6),
        "errors": errors,
        "presend": presend,
    }


def _case_failures(row: dict) -> list[str]:
    problems = []
    wall = row["errors"]["wall_time"]
    if wall is None or abs(wall) > WALL_BUDGET:
        problems.append(
            f"{row['label']}: wall_time error "
            f"{'inf' if wall is None else f'{wall:+.2%}'} exceeds "
            f"{WALL_BUDGET:.0%} budget")
    comp = row["errors"]["compute"]
    if comp is None or abs(comp) > 1e-9:
        problems.append(
            f"{row['label']}: compute cycles are not exact "
            f"(error {comp})")
    if row["protocol"] == "predictive":
        p = row["presend"]
        exact_misses = row["errors"]["misses"] == 0.0
        for kind, what in (("sent", "pre-send block count"),
                           ("useless", "useless pre-send count")):
            sim_n, model_n = p[f"sim_{kind}"], p[f"model_{kind}"]
            if sim_n == model_n:
                continue
            if exact_misses:
                problems.append(
                    f"{row['label']}: {what} drifted — sim {sim_n}, model "
                    f"{model_n} (must be exact when the walk reproduces "
                    f"the miss stream exactly)")
            elif abs(model_n - sim_n) > max(PRESEND_BUDGET * sim_n,
                                            PRESEND_ABS_SLACK):
                problems.append(
                    f"{row['label']}: {what} drifted beyond budget — sim "
                    f"{sim_n}, model {model_n} "
                    f"(> max({PRESEND_BUDGET:.0%}, {PRESEND_ABS_SLACK}))")
    return problems


def _grid_shape(sim_doc: dict, model_doc: dict) -> dict:
    """Shape agreement between a sim grid and a model grid of one spec:
    worst per-point wall error plus pairwise ordering agreement."""
    sim_walls = [row["wall_time"] for row in sim_doc["rows"]]
    model_walls = [row["wall_time"] for row in model_doc["rows"]]
    if len(sim_walls) != len(model_walls):
        raise ValidationError(
            f"sweep grids differ in size: sim {len(sim_walls)} points, "
            f"model {len(model_walls)}")
    errs = [abs(m - s) / s for m, s in zip(model_walls, sim_walls)]
    agree = total = 0
    for i in range(len(sim_walls)):
        for j in range(i + 1, len(sim_walls)):
            total += 1
            if ((sim_walls[i] < sim_walls[j])
                    == (model_walls[i] < model_walls[j])):
                agree += 1
    return {
        "points": len(sim_walls),
        "max_wall_err": round(max(errs), 9) if errs else 0.0,
        "mean_wall_err": (round(sum(errs) / len(errs), 9) if errs else 0.0),
        "ordering_agreement": (round(agree / total, 9) if total else 1.0),
    }


def validate(calibration: Calibration | None = None, *, quick: bool = False,
             fast: bool = True, timing: bool = False,
             progress=None, tracer=None) -> dict:
    """Run the cross-validation suite; returns the validation document.

    Deterministic except for the optional ``"measured"`` key (wall-clock
    seconds, present only with ``timing=True``): the simulator, the model,
    and the sweep grids have a single possible outcome.
    """
    from repro.bench.sweeps import sweep_grid

    if calibration is None:
        calibration = default_calibration()
    specs = validation_specs(quick=quick)
    rows = []
    failures: list[str] = []
    for spec in specs:
        if progress is not None:
            progress(f"validating {spec.label} ...")
        row = _case_row(spec, calibration, fast=fast)
        rows.append(row)
        failures.extend(_case_failures(row))

    grid = demo_grid_spec()
    if quick:
        grid["axes"] = {"msg_latency": [500, 1000, 2000],
                        "per_byte_cost": [0.3, 0.6]}
    if progress is not None:
        n_pts = 1
        for vals in grid["axes"].values():
            n_pts *= len(vals)
        progress(f"sweep demonstration: {n_pts} points, sim vs model ...")
    t0 = time.perf_counter()
    sim_doc = sweep_grid(
        grid["app"], grid["build_kwargs"],
        base_config=grid["base_config"], axes=grid["axes"], backend="sim",
        protocol=grid["protocol"], optimized=grid["optimized"],
        variant=grid["variant"], fast=fast)
    sim_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    model_doc = sweep_grid(
        grid["app"], grid["build_kwargs"],
        base_config=grid["base_config"], axes=grid["axes"], backend="model",
        protocol=grid["protocol"], optimized=grid["optimized"],
        variant=grid["variant"], calibration=calibration)
    model_seconds = time.perf_counter() - t0
    shape = _grid_shape(sim_doc, model_doc)
    if shape["max_wall_err"] > SWEEP_WALL_BUDGET:
        failures.append(
            f"sweep grid: worst per-point wall error "
            f"{shape['max_wall_err']:.2%} exceeds "
            f"{SWEEP_WALL_BUDGET:.0%}")
    if shape["ordering_agreement"] < SWEEP_ORDERING_MIN:
        failures.append(
            f"sweep grid: backends order only "
            f"{shape['ordering_agreement']:.1%} of point pairs identically "
            f"(< {SWEEP_ORDERING_MIN:.0%})")

    doc = {
        "schema": VALIDATION_SCHEMA,
        "profile": "quick" if quick else "full",
        "budgets": {
            "wall_time": WALL_BUDGET,
            "compute": 0.0,
            "presend_counts": ("exact (predictive, fault-free, "
                               "exact miss stream); else "
                               f"{PRESEND_BUDGET} rel / "
                               f"{PRESEND_ABS_SLACK} abs"),
            "sweep_wall": SWEEP_WALL_BUDGET,
            "sweep_ordering": SWEEP_ORDERING_MIN,
        },
        "calibration": calibration.to_doc(),
        "cases": rows,
        "sweep_demo": {
            "app": sim_doc["app"],
            "axes": sim_doc["axes"],
            "sim_walls": [round(r["wall_time"], 6)
                          for r in sim_doc["rows"]],
            "model_walls": [round(r["wall_time"], 6)
                            for r in model_doc["rows"]],
            "shape": shape,
        },
        "failures": failures,
        "passed": not failures,
    }
    if timing:
        # machine-dependent, one-time measurement — excluded from the
        # byte-determinism contract (see module docstring)
        doc["measured"] = {
            "sim_seconds": round(sim_seconds, 3),
            "model_seconds": round(model_seconds, 3),
            "speedup": round(sim_seconds / model_seconds, 1),
        }
    if tracer is not None and tracer.enabled:
        from repro.obs.events import EventKind

        tracer.emit(EventKind.MODEL_VALIDATE, 0.0,
                    profile=doc["profile"], cases=len(rows),
                    failures=len(failures))
    return doc


def save_validation(path, doc: dict) -> None:
    from repro.util.atomicio import atomic_write_json

    out = pathlib.Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_json(out, doc)


def load_validation(path) -> dict:
    import json

    doc = json.loads(pathlib.Path(path).read_text())
    if doc.get("schema") != VALIDATION_SCHEMA:
        raise ValidationError(
            f"not a validation document: schema={doc.get('schema')!r} "
            f"(want {VALIDATION_SCHEMA!r})")
    return doc


def compare_validation(committed: dict, measured: dict) -> list[str]:
    """The regression gate: a freshly measured validation run against the
    committed document.

    Ratio-style, like :func:`repro.bench.perf.compare_snapshots`: the gate
    passes when the fresh run is within budget *and* no case's wall error
    grew past the budget relative to what was committed (cases present
    only in the committed full profile are ignored when CI measures the
    quick profile).
    """
    problems = list(measured.get("failures", ()))
    committed_cases = {c["label"]: c for c in committed.get("cases", ())}
    for case in measured.get("cases", ()):
        old = committed_cases.get(case["label"])
        if old is None:
            continue
        was, now = (old["errors"]["wall_time"],
                    case["errors"]["wall_time"])
        if was is None or now is None:
            continue
        if abs(now) > max(abs(was) * 1.5, WALL_BUDGET):
            problems.append(
                f"{case['label']}: wall error grew from {was:+.2%} "
                f"(committed) to {now:+.2%}")
    return problems


def render_validation(doc: dict) -> str:
    """Human-readable summary table of a validation document."""
    from repro.util.tables import format_table

    rows = []
    for case in doc["cases"]:
        e = case["errors"]
        rows.append([
            case["label"],
            case["protocol"],
            case["block_size"],
            case["sim_wall"],
            case["model_wall"],
            "n/a" if e["wall_time"] is None else f"{e['wall_time']:+.2%}",
            "n/a" if e["remote_wait"] is None
            else f"{e['remote_wait']:+.2%}",
            f"{case['presend']['model_sent']}"
            f"/{case['presend']['sim_sent']}",
        ])
    out = format_table(
        ["case", "protocol", "block", "sim wall", "model wall",
         "wall err", "rwait err", "presend m/s"],
        rows,
        title=f"model cross-validation ({doc['profile']} profile)",
        floatfmt=".6g",
    )
    shape = doc["sweep_demo"]["shape"]
    out += (
        f"\nsweep demo: {shape['points']} points, max wall err "
        f"{shape['max_wall_err']:.2%}, ordering agreement "
        f"{shape['ordering_agreement']:.1%}"
    )
    measured = doc.get("measured")
    if measured:
        out += (f"\nmeasured: sim {measured['sim_seconds']}s vs model "
                f"{measured['model_seconds']}s -> "
                f"{measured['speedup']}x faster")
    out += "\n" + ("PASS: model within committed error budgets"
                   if doc["passed"] else
                   "FAIL:\n  " + "\n  ".join(doc["failures"]))
    return out
