"""Block/home geometry for a recording at one evaluated block size.

A :class:`~repro.model.recording.ProgramRecording` stores accesses as
(aggregate, flat element index); this module maps them onto the cache-block
space of the configuration being predicted.  Region bases are page-aligned
and depend only on ``page_size`` and declaration order, so the recording's
:class:`~repro.tempest.addrspace.AddressSpace` — with its captured
home-policy closures — answers ``home_of`` for *any* block size: the home
of block *b* at block size *B* is the home of address ``b * B``.
"""

from __future__ import annotations

import numpy as np

from repro.model.recording import ProgramRecording
from repro.util.config import MachineConfig
from repro.util.errors import ConfigError


class LayoutModel:
    """Element→block and block→home mapping for one (recording, config)."""

    def __init__(self, recording: ProgramRecording, config: MachineConfig):
        if config.n_nodes != recording.n_nodes:
            raise ConfigError(
                f"recording is for {recording.n_nodes} nodes, "
                f"config has {config.n_nodes}"
            )
        if config.page_size != recording.page_size:
            raise ConfigError(
                f"recording is for page_size={recording.page_size}, "
                f"config has {config.page_size}"
            )
        self.recording = recording
        self.block_size = config.block_size
        self._shift = config.block_size.bit_length() - 1
        self._home_cache: dict[int, int] = {}

    def blocks(self, agg_idx: np.ndarray, flat: np.ndarray) -> np.ndarray:
        """Vectorized element→block map (first byte of each element)."""
        base = self.recording.agg_base[agg_idx]
        stride = self.recording.agg_stride[agg_idx]
        return (base + flat * stride) >> self._shift

    def home(self, block: int) -> int:
        h = self._home_cache.get(block)
        if h is None:
            addr = block * self.block_size
            h = self.recording.addr_space.find_region(addr).home_of(addr)
            self._home_cache[block] = h
        return h
