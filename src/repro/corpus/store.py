"""The durable, self-healing schedule corpus.

``ScheduleCorpus`` persists learned :class:`~repro.core.schedule.
CommSchedule` records content-addressed by ``(program, protocol,
placement)`` so later runs — and other farm workers sharing the directory —
warm-start and pre-send from iteration 1 instead of relearning every
directive site from scratch.

Robustness is the headline contract, because a persisted schedule is an
*input* to future runs and disk contents cannot be trusted the way process
memory can:

* **Append-only segments, checksummed per record.**  A segment file is a
  sequence of length-prefixed frames — ``[4-byte BE length][canonical JSON
  {"body", "sum"}]`` — reusing the canonical-JSON framing discipline of
  :mod:`repro.farm.frames` (``sum`` is a truncated SHA-256 of the body's
  canonical encoding).  The first frame is a version-pinned header; a
  wrong magic or version quarantines the whole segment unread (it may
  belong to a future format — never destroyed, never trusted).
* **Torn-tail recovery.**  Appends can tear on crash/kill -9.  On open,
  frames are replayed in order; a frame whose *length field* is implausible
  or that extends past end-of-file marks the torn tail — the tail bytes are
  quarantined and the segment is truncated back to the last good frame
  boundary.  A frame whose framing is intact but whose payload fails the
  checksum or JSON-decode is quarantined *individually* and scanning
  continues, so one flipped bit costs one record, not the suffix.
* **Validation on load.**  Every surviving record passes the same
  structural sanity the in-memory poisoned-schedule defenses assume
  (:func:`validate_entry`): node ids within the recorded placement, legal
  entry kinds, non-negative blocks and cooldowns.  Failures land in the
  ``.quarantine/`` sidecar with a reason, visible to ``repro corpus
  doctor`` and counted in :meth:`ScheduleCorpus.stats`.
* **Advisory locking.**  Concurrent farm workers sharing one corpus
  directory serialize appends, truncation, and compaction on an
  ``fcntl.flock`` over ``<dir>/.lock``, so writers never interleave
  frames.
* **Atomic rewrites.**  Compaction builds the replacement segment through
  :mod:`repro.util.atomicio` (write-temp + fsync + rename); readers see
  the old segment set or the new one, never a half-written file.
* **LRU + size budgets.**  The corpus keeps at most ``max_entries`` keys
  (least-recently-stored/used evicted first) and compacts itself when the
  segment bytes exceed ``max_bytes``.
* **Graceful degradation.**  No corpus failure may ever surface inside a
  simulation: every public method catches everything, counts a failure,
  emits a ``corpus.fallback`` event, and degrades to doing nothing — the
  run merely relearns, exactly as with no corpus at all.
  :func:`open_corpus` returns a :class:`NullCorpus` when the directory
  itself is unusable.
"""

from __future__ import annotations

import os
import struct
from collections import OrderedDict
from contextlib import contextmanager
from pathlib import Path

from repro.farm.frames import canonical, checksum
from repro.obs.events import EventKind as Ev
from repro.util.atomicio import atomic_write_bytes, atomic_write_json, fsync_dir

__all__ = ["CORPUS_MAGIC", "CORPUS_VERSION", "ScheduleCorpus", "NullCorpus",
           "open_corpus", "validate_entry"]

CORPUS_MAGIC = "repro.corpus"
#: bump only for incompatible record-format changes
CORPUS_VERSION = 1

#: hard upper bound on one frame; anything larger is corruption
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LEN = struct.Struct(">I")

_ENTRY_KINDS = frozenset(("read", "write", "conflict"))


def _frame(body: dict) -> bytes:
    payload = canonical(body)
    framed = canonical({"body": body, "sum": checksum(payload)})
    return _LEN.pack(len(framed)) + framed


def _header_frame() -> bytes:
    return _frame({"magic": CORPUS_MAGIC, "version": CORPUS_VERSION})


def validate_entry(entry) -> list[str]:
    """Structural sanity of one corpus entry; returns problems (empty = ok).

    Mirrors what the in-memory machinery guarantees by construction: node
    ids within the recorded placement, legal entry kinds, non-negative
    blocks/cooldowns, and per-kind shape (a READ anticipation needs
    readers, a WRITE needs a writer — ``purge_node`` deletes anything
    else, so a valid learned schedule never contains them).
    """
    problems: list[str] = []
    if not isinstance(entry, dict):
        return [f"entry is {type(entry).__name__}, not a dict"]
    n_nodes = entry.get("n_nodes")
    if not isinstance(n_nodes, int) or n_nodes < 1:
        return [f"bad n_nodes {n_nodes!r}"]
    if not isinstance(entry.get("protocol"), str):
        problems.append(f"bad protocol {entry.get('protocol')!r}")
    records = entry.get("records")
    if not isinstance(records, list):
        return problems + [f"records is {type(records).__name__}, not a list"]

    def node_ok(n) -> bool:
        return isinstance(n, int) and 0 <= n < n_nodes

    for i, rec in enumerate(records):
        where = f"record[{i}]"
        if not isinstance(rec, dict):
            problems.append(f"{where}: not a dict")
            continue
        directive = rec.get("directive")
        if not isinstance(directive, int) or directive < 0:
            problems.append(f"{where}: bad directive {directive!r}")
        cooldown = rec.get("cooldown", 0)
        if not isinstance(cooldown, int) or cooldown < 0:
            problems.append(f"{where}: bad cooldown {cooldown!r}")
        ents = rec.get("entries")
        if not isinstance(ents, list):
            problems.append(f"{where}: entries not a list")
            continue
        for ent in ents:
            if not isinstance(ent, dict):
                problems.append(f"{where}: entry not a dict")
                continue
            block = ent.get("block")
            if not isinstance(block, int) or block < 0:
                problems.append(f"{where}: bad block {block!r}")
            kind = ent.get("kind")
            if kind not in _ENTRY_KINDS:
                problems.append(f"{where}: bad kind {kind!r}")
            readers = ent.get("readers")
            if (not isinstance(readers, list)
                    or not all(node_ok(r) for r in readers)):
                problems.append(f"{where} block {block!r}: bad readers "
                                f"{readers!r} for {n_nodes} node(s)")
                readers = []
            writer = ent.get("writer")
            if writer is not None and not node_ok(writer):
                problems.append(f"{where} block {block!r}: bad writer "
                                f"{writer!r} for {n_nodes} node(s)")
                writer = None
            if kind == "read" and not readers:
                problems.append(f"{where} block {block!r}: READ with no "
                                f"readers")
            elif kind == "write" and writer is None:
                problems.append(f"{where} block {block!r}: WRITE with no "
                                f"writer")
            pre = ent.get("pre_conflict")
            if pre is not None and pre not in _ENTRY_KINDS:
                problems.append(f"{where} block {block!r}: bad pre_conflict "
                                f"{pre!r}")
    return problems


class NullCorpus:
    """The inert corpus: every operation is a no-op.

    Returned by :func:`open_corpus` when the directory cannot be used at
    all, so callers never need a ``corpus is not None and corpus.ok``
    dance — the degraded path has the same shape as the healthy one.
    """

    ok = False

    def __init__(self, reason: str = "corpus disabled"):
        self.reason = reason

    def lookup(self, key: str, n_nodes: int | None = None):
        return None

    def store(self, key: str, entry: dict) -> bool:
        return False

    def compact(self) -> int:
        return 0

    def scrub(self) -> int:
        return 0

    def stats(self) -> dict:
        return {"ok": False, "reason": self.reason}

    def close(self) -> None:
        pass


class ScheduleCorpus:
    """One corpus directory (see module docstring for the contract).

    Public methods never raise; a corpus that hits an unexpected internal
    error disables itself (:attr:`disabled`) and degrades to
    :class:`NullCorpus` behaviour, counting the failure.
    """

    ok = True

    def __init__(self, root: str | Path, *, max_entries: int = 256,
                 max_bytes: int = 16 * 1024 * 1024, tracer=None):
        self.root = Path(root)
        self.max_entries = max(1, int(max_entries))
        self.max_bytes = max(4096, int(max_bytes))
        self.tracer = tracer
        self.disabled = False
        self.last_error: str | None = None
        self.counters = {
            "hits": 0, "misses": 0, "stores": 0, "quarantined": 0,
            "recovered_tails": 0, "skipped_segments": 0, "evictions": 0,
            "failures": 0,
        }
        #: key -> entry, least- to most-recently used
        self._index: "OrderedDict[str, dict]" = OrderedDict()
        self._gen = 0
        self.root.mkdir(parents=True, exist_ok=True)
        self._quarantine_dir.mkdir(exist_ok=True)
        with self._locked():
            self._replay_segments()

    # -- plumbing --------------------------------------------------------------

    @property
    def _quarantine_dir(self) -> Path:
        return self.root / ".quarantine"

    def _segments(self) -> list[Path]:
        return sorted(self.root.glob("seg-*.log"))

    def _active_segment(self) -> Path:
        segments = self._segments()
        if segments and not self._is_foreign(segments[-1]):
            return segments[-1]
        if segments:
            # the newest segment belongs to another format/version: never
            # append into it — start a fresh one alongside
            return self._next_segment()
        return self.root / "seg-000001.log"

    def _next_segment(self) -> Path:
        segments = self._segments()
        n = 1
        if segments:
            try:
                n = int(segments[-1].stem.split("-")[1]) + 1
            except (IndexError, ValueError):
                n = len(segments) + 1
        return self.root / f"seg-{n:06d}.log"

    @contextmanager
    def _locked(self):
        """Advisory exclusive lock over the whole directory's writers."""
        try:
            import fcntl
        except ImportError:  # pragma: no cover - non-POSIX fallback
            yield
            return
        with open(self.root / ".lock", "a+b") as fh:
            fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(fh.fileno(), fcntl.LOCK_UN)

    def _emit(self, kind: str, **attrs) -> None:
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.emit(kind, 0.0, **attrs)

    def _fail(self, where: str, exc: BaseException) -> None:
        self.counters["failures"] += 1
        self.last_error = f"{where}: {type(exc).__name__}: {exc}"
        self._emit(Ev.CORPUS_FALLBACK, where=where, error=str(exc))

    def _quarantine(self, reason: str, *, segment: str, offset: int,
                    detail: str = "", body=None, data: bytes | None = None
                    ) -> None:
        """Sideline one bad record/tail; counting must survive write failure."""
        self.counters["quarantined"] += 1
        self._emit(Ev.CORPUS_QUARANTINE, reason=reason, segment=segment,
                   offset=offset)
        doc = {"reason": reason, "segment": segment, "offset": offset,
               "detail": detail}
        if body is not None:
            doc["body"] = body
        if data is not None:
            doc["data_hex"] = data[:4096].hex()
            doc["data_bytes"] = len(data)
        try:
            seq = sum(1 for _ in self._quarantine_dir.glob("q-*.json")) + 1
            atomic_write_json(self._quarantine_dir / f"q-{seq:06d}.json", doc)
        except Exception as exc:
            self._fail("quarantine", exc)

    # -- open: replay + recover ------------------------------------------------

    def _replay_segments(self) -> None:
        puts: list[tuple[int, str, dict]] = []
        for segment in self._segments():
            puts.extend(self._replay_one(segment))
        puts.sort(key=lambda item: item[0])
        for gen, key, entry in puts:
            self._gen = max(self._gen, gen)
            self._index[key] = entry
            self._index.move_to_end(key)
        while len(self._index) > self.max_entries:
            evicted, _ = self._index.popitem(last=False)
            self.counters["evictions"] += 1
            self._emit(Ev.CORPUS_EVICT, key=evicted)

    def _replay_one(self, segment: Path) -> list[tuple[int, str, dict]]:
        """Replay one segment's frames; recover/quarantine damage in place."""
        try:
            data = segment.read_bytes()
        except OSError as exc:
            self._fail(f"read {segment.name}", exc)
            return []
        out: list[tuple[int, str, dict]] = []
        offset = 0
        saw_header = False
        while offset < len(data):
            if offset + 4 > len(data):
                self._recover_tail(segment, data, offset, "torn length prefix")
                return out
            (length,) = _LEN.unpack(data[offset:offset + 4])
            if length > MAX_FRAME_BYTES or offset + 4 + length > len(data):
                self._recover_tail(
                    segment, data, offset,
                    f"frame length {length} past end of segment"
                    if length <= MAX_FRAME_BYTES else
                    f"implausible frame length {length}")
                return out
            raw = data[offset + 4:offset + 4 + length]
            frame_at = offset
            offset += 4 + length
            body = self._decode_frame(segment, raw, frame_at)
            if body is None:
                continue  # quarantined individually; framing is intact
            if not saw_header:
                saw_header = True
                if (body.get("magic") != CORPUS_MAGIC
                        or body.get("version") != CORPUS_VERSION):
                    self.counters["skipped_segments"] += 1
                    self._quarantine(
                        "version-mismatch", segment=segment.name, offset=0,
                        detail=f"header {body!r}; this build reads "
                               f"{CORPUS_MAGIC} v{CORPUS_VERSION}",
                        body=body)
                    return out  # foreign segment: skip, do not modify
                continue
            out.extend(self._accept_put(segment, body, frame_at))
        return out

    def _decode_frame(self, segment: Path, raw: bytes, offset: int):
        import json

        try:
            frame = json.loads(raw)
            body = frame["body"]
            declared = frame["sum"]
        except (ValueError, KeyError, TypeError) as exc:
            self._quarantine("undecodable-frame", segment=segment.name,
                             offset=offset, detail=str(exc), data=raw)
            return None
        if checksum(canonical(body)) != declared:
            self._quarantine("checksum-mismatch", segment=segment.name,
                             offset=offset, body=body)
            return None
        return body

    def _accept_put(self, segment: Path, body, offset: int
                    ) -> list[tuple[int, str, dict]]:
        if (not isinstance(body, dict) or body.get("op") != "put"
                or not isinstance(body.get("key"), str)
                or not isinstance(body.get("gen"), int)):
            self._quarantine("malformed-op", segment=segment.name,
                             offset=offset, body=body)
            return []
        entry = body.get("entry")
        problems = validate_entry(entry)
        if problems:
            self._quarantine("validation", segment=segment.name,
                             offset=offset, detail="; ".join(problems[:8]),
                             body=body)
            return []
        return [(body["gen"], body["key"], entry)]

    def _recover_tail(self, segment: Path, data: bytes, offset: int,
                      detail: str) -> None:
        """Quarantine a torn tail and truncate back to the good prefix."""
        self.counters["recovered_tails"] += 1
        self._quarantine("torn-tail", segment=segment.name, offset=offset,
                         detail=detail, data=data[offset:])
        self._emit(Ev.CORPUS_RECOVER, segment=segment.name, offset=offset,
                   dropped=len(data) - offset)
        try:
            with open(segment, "r+b") as fh:
                fh.truncate(offset)
                fh.flush()
                os.fsync(fh.fileno())
        except OSError as exc:
            self._fail(f"truncate {segment.name}", exc)

    # -- reads -----------------------------------------------------------------

    def lookup(self, key: str, n_nodes: int | None = None):
        """The entry stored under ``key``, or None; marks the key used.

        ``n_nodes`` optionally cross-checks the entry against the machine
        about to be warmed — a stale-placement entry (however it got under
        this key) is a miss, never an exception.
        """
        if self.disabled:
            return None
        try:
            entry = self._index.get(key)
            if entry is not None and (n_nodes is None
                                      or entry.get("n_nodes") == n_nodes):
                self._index.move_to_end(key)
                self.counters["hits"] += 1
                self._emit(Ev.CORPUS_HIT, key=key,
                           records=len(entry.get("records", [])))
                return entry
            self.counters["misses"] += 1
            self._emit(Ev.CORPUS_MISS, key=key)
            return None
        except Exception as exc:
            self._fail("lookup", exc)
            return None

    def stats(self) -> dict:
        segments = entries = disk_bytes = quarantine_files = 0
        try:
            segs = self._segments()
            segments = len(segs)
            disk_bytes = sum(s.stat().st_size for s in segs)
            entries = len(self._index)
            quarantine_files = sum(
                1 for _ in self._quarantine_dir.glob("q-*.json"))
        except Exception as exc:
            self._fail("stats", exc)
        return {
            "ok": not self.disabled,
            "root": str(self.root),
            "segments": segments,
            "entries": entries,
            "disk_bytes": disk_bytes,
            "quarantine_files": quarantine_files,
            "last_error": self.last_error,
            **self.counters,
        }

    # -- writes ----------------------------------------------------------------

    def store(self, key: str, entry: dict) -> bool:
        """Durably append ``entry`` under ``key``; returns True on commit.

        Rejects (and counts) entries that fail validation — a process must
        not be able to poison the shared corpus with records the loader
        would quarantine anyway.
        """
        if self.disabled:
            return False
        try:
            problems = validate_entry(entry)
            if problems:
                self._quarantine("store-rejected", segment="(in-memory)",
                                 offset=-1, detail="; ".join(problems[:8]),
                                 body={"key": key})
                return False
            if self._index.get(key) == entry:
                # identical re-store (every rerun of a converged workload):
                # just refresh recency, no segment growth
                self._index.move_to_end(key)
                return True
            with self._locked():
                self._gen += 1
                segment = self._active_segment()
                body = {"op": "put", "gen": self._gen, "key": key,
                        "entry": entry}
                data = _frame(body)
                new_file = not segment.exists()
                with open(segment, "ab") as fh:
                    if new_file or fh.tell() == 0:
                        fh.write(_header_frame())
                    fh.write(data)
                    fh.flush()
                    os.fsync(fh.fileno())
                if new_file:
                    fsync_dir(self.root)
            self._index[key] = entry
            self._index.move_to_end(key)
            self.counters["stores"] += 1
            self._emit(Ev.CORPUS_STORE, key=key,
                       records=len(entry.get("records", [])))
            while len(self._index) > self.max_entries:
                evicted, _ = self._index.popitem(last=False)
                self.counters["evictions"] += 1
                self._emit(Ev.CORPUS_EVICT, key=evicted)
            if self._disk_bytes() > self.max_bytes:
                self.compact()
            return True
        except Exception as exc:
            self._fail("store", exc)
            return False

    def _disk_bytes(self) -> int:
        return sum(s.stat().st_size for s in self._segments())

    def compact(self) -> int:
        """Rewrite live entries into one fresh segment; drop dead frames.

        Returns the number of live entries kept.  The replacement segment
        is committed atomically (write-temp + fsync + rename) before the
        old segments are unlinked, so a crash at any point leaves either
        the old segment set or the new one.  Skips (does not delete)
        version-mismatched foreign segments.
        """
        if self.disabled:
            return 0
        try:
            with self._locked():
                old = [s for s in self._segments()
                       if not self._is_foreign(s)]
                while len(self._index) > self.max_entries:
                    evicted, _ = self._index.popitem(last=False)
                    self.counters["evictions"] += 1
                    self._emit(Ev.CORPUS_EVICT, key=evicted)
                chunks = [_header_frame()]
                self._gen = 0
                for key, entry in self._index.items():  # LRU -> MRU order
                    self._gen += 1
                    chunks.append(_frame({"op": "put", "gen": self._gen,
                                          "key": key, "entry": entry}))
                fresh = self._next_segment()
                atomic_write_bytes(fresh, b"".join(chunks))
                for segment in old:
                    if segment != fresh:
                        segment.unlink(missing_ok=True)
                fsync_dir(self.root)
            return len(self._index)
        except Exception as exc:
            self._fail("compact", exc)
            return 0

    def _is_foreign(self, segment: Path) -> bool:
        """True when the segment's header names another format/version."""
        try:
            with open(segment, "rb") as fh:
                head = fh.read(4)
                if len(head) < 4:
                    return False
                (length,) = _LEN.unpack(head)
                if length > MAX_FRAME_BYTES:
                    return False
                import json

                frame = json.loads(fh.read(length))
                body = frame["body"]
                return (body.get("magic") != CORPUS_MAGIC
                        or body.get("version") != CORPUS_VERSION)
        except Exception:
            return False

    def scrub(self) -> int:
        """Delete quarantined sidecar files; returns how many were removed."""
        if self.disabled:
            return 0
        removed = 0
        try:
            with self._locked():
                for path in sorted(self._quarantine_dir.glob("q-*.json")):
                    path.unlink(missing_ok=True)
                    removed += 1
        except Exception as exc:
            self._fail("scrub", exc)
        return removed

    def close(self) -> None:
        """Nothing held open between operations; kept for API symmetry."""

    # -- iteration (doctor) ----------------------------------------------------

    def entries(self):
        """(key, entry) pairs, least- to most-recently used."""
        return list(self._index.items())


def open_corpus(root: str | Path, *, max_entries: int = 256,
                max_bytes: int = 16 * 1024 * 1024, tracer=None):
    """Open (creating if needed) a corpus directory; never raises.

    Any failure to open — unwritable path, a file where the directory
    should be, an interrupted recovery — degrades to :class:`NullCorpus`
    with a ``corpus.fallback`` event, so the caller's run proceeds exactly
    as if no corpus had been configured.
    """
    try:
        return ScheduleCorpus(root, max_entries=max_entries,
                              max_bytes=max_bytes, tracer=tracer)
    except Exception as exc:
        if tracer is not None and tracer.enabled:
            tracer.emit(Ev.CORPUS_FALLBACK, 0.0, where="open",
                        error=str(exc))
        return NullCorpus(f"cannot open corpus at {root}: "
                          f"{type(exc).__name__}: {exc}")
