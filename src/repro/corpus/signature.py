"""Content-addressing for corpus entries.

A corpus key names *exactly one* learning context: the program (what runs
and therefore which directive sites exist and what they access), the
protocol (schedules learned under ``predictive`` mean nothing to
``stache``), and the placement (node count and block/page geometry — the
same program on 4 nodes learns different reader sets than on 8).  A
schedule warmed into any *other* context would merely mispredict — the
protocol tolerates that by construction — but the point of content
addressing is that it cannot happen silently: a changed program, protocol,
or placement derives a different key and simply misses.

Signatures are truncated SHA-256 of canonical JSON, the same discipline
:mod:`repro.farm.frames` uses for wire checksums.
"""

from __future__ import annotations

import hashlib
import json

from repro.util.config import MachineConfig

__all__ = ["program_signature", "placement_signature", "corpus_key",
           "workload_key", "bench_key", "supports_warm"]

#: hex digits kept from each sha256 (collision-safe at corpus scale and
#: short enough that keys stay readable in doctor output)
_SIG_LEN = 16


def _digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()[:_SIG_LEN]


def program_signature(source: str | bytes) -> str:
    """Signature of the thing that runs: source text, trace bytes, or any
    stable identity string (``"fuzz/seed17"`` for generated workloads)."""
    if isinstance(source, str):
        source = source.encode("utf-8")
    return _digest(source)


def placement_signature(config: MachineConfig) -> str:
    """Signature of the machine geometry schedules were learned on."""
    return _digest(json.dumps(
        {
            "n_nodes": config.n_nodes,
            "block_size": config.block_size,
            "page_size": config.page_size,
        },
        sort_keys=True, separators=(",", ":"),
    ).encode())


def corpus_key(program_sig: str, protocol: str, placement_sig: str) -> str:
    """The content address of one (program, protocol, placement) context."""
    return f"{program_sig}/{protocol}/{placement_sig}"


def workload_key(workload, protocol: str, name: str | None = None) -> str:
    """The corpus key for a :class:`repro.verify.workload.Workload`.

    Generated workloads are fully determined by their seed; bundled trace
    workloads carry ``seed == -1`` and are identified by ``name`` instead
    (the campaign embeds the trace file name in its transport-safe spec).
    """
    if name is None:
        name = getattr(workload, "name", None)
    ident = (f"fuzz/seed{workload.seed}" if workload.seed >= 0
             else f"trace/{name or 'anonymous'}")
    return corpus_key(program_signature(ident), protocol,
                      placement_signature(workload.config))


def bench_key(app: str, protocol: str, config: MachineConfig, *,
              optimized: bool, build_kwargs: dict,
              variant: str = "cstar") -> str:
    """The corpus key for one benchmark application version.

    ``app`` is the bare application name (``"water"``, not the dotted
    module path), so the figure harness and the perf suite derive the same
    key for the same workload and can share each other's learned
    schedules.
    """
    ident = "bench/" + json.dumps(
        {"app": app, "optimized": optimized, "variant": variant,
         "kwargs": build_kwargs},
        sort_keys=True, separators=(",", ":"),
    )
    return corpus_key(program_signature(ident), protocol,
                      placement_signature(config))


def supports_warm(protocol: str) -> bool:
    """Whether the named protocol learns schedules the corpus could warm.

    Consulting this before a lookup keeps schedule-free protocols (plain
    Stache, write-update) from registering a corpus miss per run.
    """
    from repro.core.factory import PROTOCOLS

    cls = PROTOCOLS.get(protocol)
    return cls is not None and hasattr(cls, "warm_seed")
