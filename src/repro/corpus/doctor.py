"""``repro corpus doctor``: inspect, compact, and scrub a corpus directory.

The doctor is the operational face of the corpus: it opens the directory
with the same recovery path every run uses (so merely inspecting a corpus
repairs torn tails and quarantines poison — doctoring *is* opening), then
reports what survived, what was sidelined and why, and how much disk the
segments hold.  ``compact`` rewrites the live entries into one fresh
segment; ``scrub`` empties the quarantine sidecar once it has been looked
at.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.corpus.store import NullCorpus, open_corpus

__all__ = ["doctor"]


def _quarantine_summary(root: Path, limit: int = 20) -> list[str]:
    lines: list[str] = []
    qdir = root / ".quarantine"
    files = sorted(qdir.glob("q-*.json")) if qdir.is_dir() else []
    for path in files[:limit]:
        try:
            doc = json.loads(path.read_text())
            detail = doc.get("detail") or ""
            if len(detail) > 60:
                detail = detail[:57] + "..."
            lines.append(
                f"  {path.name}: {doc.get('reason', '?')} in "
                f"{doc.get('segment', '?')} @ {doc.get('offset', '?')}"
                + (f" -- {detail}" if detail else ""))
        except (OSError, ValueError):
            lines.append(f"  {path.name}: (unreadable quarantine record)")
    if len(files) > limit:
        lines.append(f"  ... and {len(files) - limit} more")
    return lines


def doctor(root: str | Path, *, compact: bool = False, scrub: bool = False,
           max_entries: int = 256, max_bytes: int = 16 * 1024 * 1024,
           tracer=None) -> tuple[str, int]:
    """Run the doctor; returns (report text, exit status).

    Status 0: corpus healthy (nothing quarantined, no failures).
    Status 1: corpus usable but damage was found/recovered — quarantined
    records or recovered torn tails (opening already repaired the files).
    Status 2: the directory could not be opened as a corpus at all.
    """
    corpus = open_corpus(root, max_entries=max_entries, max_bytes=max_bytes,
                         tracer=tracer)
    if isinstance(corpus, NullCorpus):
        return f"corpus: UNUSABLE -- {corpus.reason}", 2

    lines = [f"corpus: {corpus.root}"]
    actions: list[str] = []
    if compact:
        kept = corpus.compact()
        actions.append(f"compacted: {kept} live entr"
                       f"{'y' if kept == 1 else 'ies'} rewritten")
    if scrub:
        removed = corpus.scrub()
        actions.append(f"scrubbed: {removed} quarantine file"
                       f"{'' if removed == 1 else 's'} removed")

    stats = corpus.stats()
    lines.append(
        f"  entries: {stats['entries']}  segments: {stats['segments']}  "
        f"disk: {stats['disk_bytes']} bytes")
    lines.append(
        f"  this open: quarantined {stats['quarantined']}, recovered "
        f"{stats['recovered_tails']} torn tail(s), skipped "
        f"{stats['skipped_segments']} foreign segment(s)")
    if stats["failures"]:
        lines.append(f"  failures: {stats['failures']} "
                     f"(last: {stats['last_error']})")
    for key, entry in corpus.entries():
        records = entry.get("records", [])
        sites = sum(len(r.get("entries", [])) for r in records)
        lines.append(f"  {key}  [{entry.get('protocol', '?')}, "
                     f"{entry.get('n_nodes', '?')} node(s), "
                     f"{len(records)} schedule(s), {sites} block entr"
                     f"{'y' if sites == 1 else 'ies'}]")

    qlines = _quarantine_summary(corpus.root)
    if qlines:
        lines.append(f"  quarantine ({stats['quarantine_files']} file(s)):")
        lines.extend(qlines)
    else:
        lines.append("  quarantine: empty")
    lines.extend(f"  {a}" for a in actions)

    damaged = (stats["quarantined"] or stats["recovered_tails"]
               or stats["failures"] or stats["quarantine_files"])
    lines.append("  verdict: " + ("DAMAGE FOUND (recovered; see quarantine)"
                                  if damaged else "healthy"))
    return "\n".join(lines), (1 if damaged else 0)
