"""The durable schedule corpus: persist learned communication schedules and
warm-start later runs so pre-sends begin at iteration 1.

See :mod:`repro.corpus.store` for the robustness contract and
``docs/CORPUS.md`` for the format and operational workflow.
"""

from repro.corpus.signature import (
    bench_key,
    corpus_key,
    placement_signature,
    program_signature,
    supports_warm,
    workload_key,
)
from repro.corpus.store import (
    CORPUS_MAGIC,
    CORPUS_VERSION,
    NullCorpus,
    ScheduleCorpus,
    open_corpus,
    validate_entry,
)

__all__ = [
    "CORPUS_MAGIC",
    "CORPUS_VERSION",
    "NullCorpus",
    "ScheduleCorpus",
    "bench_key",
    "corpus_key",
    "open_corpus",
    "placement_signature",
    "program_signature",
    "supports_warm",
    "validate_entry",
    "workload_key",
]
