"""Crash-stop failures, recovery, and deterministic checkpoint/restart.

* :mod:`repro.recovery.crash` — the crash-recovery controller installed by
  :meth:`repro.tempest.machine.Machine.install_fault_plan` when a fault plan
  can kill nodes: crash-stop + restart lifecycle, incarnation-stamped
  delivery fencing, survivor-side directory repair, and restart-time home
  state rebuild.
* :mod:`repro.recovery.checkpoint` — versioned whole-machine snapshots taken
  at quiescent points, restorable into a fresh machine such that restore +
  replay is bit-identical to the uninterrupted run.
"""

from repro.recovery.checkpoint import (
    CHECKPOINT_VERSION,
    load_checkpoint,
    restore_machine,
    save_checkpoint,
    snapshot_machine,
)
from repro.recovery.crash import CrashController, CrashRecord

__all__ = [
    "CHECKPOINT_VERSION",
    "CrashController",
    "CrashRecord",
    "load_checkpoint",
    "restore_machine",
    "save_checkpoint",
    "snapshot_machine",
]
