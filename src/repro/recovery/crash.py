"""Crash-stop node failures and coherence-state recovery.

The failure model is **crash-stop with restart**: a node halts at an op
boundary (chosen by the seeded fault injector, or replayed from a crash
script), loses all volatile state — tag table, protocol handler, directory
memory for blocks it is home for — and rejoins ``restart_cycles`` later with
a fresh *incarnation* and cold caches.  Survivors detect the failure after
``detect_cycles`` (the :class:`~repro.tempest.machine.Watchdog` bounds this
by construction) and repair every piece of shared state that referenced the
dead node, so no request waits forever on a message the dead node can no
longer send.

Determinism: crash decisions flow through the same seeded injector as every
other fault, the crash/detect/restart events are ordinary engine events, and
all repair walks iterate in sorted order — a (plan, workload, protocol)
triple replays bit-identically, which is what lets the campaign driver
shrink a failing crash script with ddmin.

Incarnation fencing: messages are stamped with both endpoints' incarnation
numbers at every physical (re)transmission; delivery drops a message if
either endpoint is down or has restarted since the stamp.  The incarnation
bumps at *restart* (not at crash — the ``down`` set covers the outage
window), so traffic from a node's previous life can never leak into its next
one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.obs.events import EventKind
from repro.sim.stats import TimeCategory
from repro.util.errors import ConfigError, ProtocolError

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.inject import FaultInjector
    from repro.faults.plan import FaultPlan
    from repro.tempest.machine import Machine, ReplayProcessor
    from repro.tempest.network import Message


@dataclass(frozen=True)
class CrashRecord:
    """One crash-stop failure, as it happened."""

    node: int
    time: float
    phase: int
    op_index: int
    detect_at: float
    restart_at: float

    def __str__(self) -> str:
        return (f"node {self.node} crashed at t={self.time:g} "
                f"(phase {self.phase}, op {self.op_index}), "
                f"detected t={self.detect_at:g}, restarted t={self.restart_at:g}")


class CrashController:
    """Crash/detect/restart lifecycle for one machine.

    Installed by :meth:`Machine.install_fault_plan` when the plan can crash
    nodes; the fault-free fast path (and every message-fault-only plan from
    PR 3, whose RNG histories must stay bit-identical) never sees it.
    """

    def __init__(self, machine: "Machine", injector: "FaultInjector",
                 plan: "FaultPlan"):
        self.machine = machine
        self.injector = injector
        self.plan = plan
        #: nodes currently dead (crash happened, restart has not)
        self.down: set[int] = set()
        #: dead nodes whose failure the survivors have already repaired
        self.detected: set[int] = set()
        self.incarnations = [0] * machine.config.n_nodes
        #: every crash so far, in event order
        self.log: list[CrashRecord] = []
        self._phase = -1

    def incarnation(self, node: int) -> int:
        return self.incarnations[node]

    # -- arming ------------------------------------------------------------------

    def arm_phase(self, procs, phase_index: int) -> None:
        """Consult the injector once per (node, phase), in node order."""
        self._phase = phase_index
        for proc in procs:
            point = self.injector.crash_point(
                proc.node.id, phase_index, len(proc.ops)
            )
            if point is None:
                continue
            op_index, restart_delay = point
            if restart_delay <= self.plan.detect_cycles:
                raise ConfigError(
                    f"crash script restarts node {proc.node.id} after "
                    f"{restart_delay:g} cycles, inside the detection window "
                    f"({self.plan.detect_cycles:g}); recovery must run first"
                )
            proc.crash_at = op_index
            proc.restart_delay = restart_delay

    # -- the crash ---------------------------------------------------------------

    def crash_now(self, proc: "ReplayProcessor") -> None:
        """The processor reached its crash point; halt it at its local time."""
        node = proc.node.id
        op_index = proc.crash_at
        proc.crash_at = None  # a restarted node does not re-crash on this arm
        restart_delay = proc.restart_delay
        t = proc.t
        self.machine.engine.schedule(
            t, lambda: self._crash_effects(proc, node, op_index, t, restart_delay)
        )

    def _crash_effects(self, proc: "ReplayProcessor", node: int, op_index: int,
                       t: float, restart_delay: float) -> None:
        """The node dies: volatile state is gone, the outage window opens."""
        self.down.add(node)
        proc.node.tags.clear()
        proc.node.stats.crashes += 1
        proc.waiting = False
        proc.pending_op = None
        self.machine.protocol.on_node_crashed(node, t)
        detect_at = self.machine.watchdog.arm(node, t)
        restart_at = t + restart_delay
        self.log.append(CrashRecord(node=node, time=t, phase=self._phase,
                                    op_index=op_index, detect_at=detect_at,
                                    restart_at=restart_at))
        obs = self.machine.obs
        if obs.enabled:
            obs.emit(EventKind.CRASH, t, node=node, op_index=op_index,
                     detect_at=detect_at, restart_at=restart_at)
        self.machine.engine.schedule(
            restart_at, lambda: self.restart(proc, node, restart_at)
        )

    # -- detection (fired by the watchdog) ----------------------------------------

    def detect(self, node: int, t: float) -> None:
        """Survivors repair everything that referenced the dead node."""
        if node not in self.down:  # pragma: no cover - defensive
            return
        self.detected.add(node)
        obs = self.machine.obs
        if obs.enabled:
            obs.emit(EventKind.DETECT, t, node=node)
        transport = self.machine._transport
        if transport is not None:
            transport.forget_node(node)
        self.machine.protocol.on_node_detected_down(node, t)
        # Self-check: recovery must leave no surviving directory entry or
        # predictive schedule referencing the dead node.
        from repro.verify.monitor import dead_node_references

        refs = dead_node_references(self.machine, {node})
        if refs:
            raise ProtocolError(
                f"crash recovery left references to dead node {node}: "
                + "; ".join(refs),
                node=node, time=t,
            )

    # -- restart -----------------------------------------------------------------

    def restart(self, proc: "ReplayProcessor", node: int, t: float) -> None:
        """The node rejoins: new incarnation, cold caches, rebuilt home state."""
        record = next(r for r in reversed(self.log) if r.node == node)
        self.incarnations[node] += 1
        self.down.discard(node)
        self.detected.discard(node)
        self.machine.node(node).reset_for_restart()
        obs = self.machine.obs
        if obs.enabled:
            obs.emit(EventKind.RESTART, t, node=node,
                     incarnation=self.incarnations[node],
                     downtime=t - record.time)
        self.machine.protocol.rebuild_home_state(node, t)
        self.machine.protocol.reissue_faults_for_home(node, t)
        # The outage is its own accounting category so per-node cycles still
        # sum exactly to wall time (RunStats.check_conservation).
        proc.node.stats.add(TimeCategory.DOWNTIME, t - record.time)
        # Resume the replay at the exact op the crash interrupted: every op
        # is still executed exactly once, which is what keeps a recovered
        # run differentially identical to the fault-free ground truth.
        proc.t = t
        proc._schedule_run(t)

    # -- delivery fencing ----------------------------------------------------------

    def deliverable(self, msg: "Message") -> bool:
        """Whether a physical arrival may be delivered (incarnation fence)."""
        if msg.src in self.down or msg.dst in self.down:
            return False
        if msg.src_inc != self.incarnations[msg.src]:
            return False
        if msg.dst_inc != self.incarnations[msg.dst]:
            return False
        return True
