"""Deterministic whole-machine checkpoints (snapshot / restore / restart).

A checkpoint captures **everything** that influences a run's future: engine
clock and sequence counter, per-node tag tables and statistics, directory
entries, predictive communication schedules (in LRU order, with their
degradation bookkeeping), the fault injector's RNG state and content-keyed
bookkeeping, reliable-transport channel sequence state, and the crash
controller's incarnation numbers.  Because the simulator is a pure function
of this state, restoring a snapshot into a fresh machine and replaying the
remaining session is **bit-identical** to the uninterrupted run — the tests
assert equality of end-of-run snapshots, statistics, and memory images.

Checkpoints are taken at *quiescent points* only — a released phase barrier
outside any in-flight recovery, where the invariant monitor already asserts
nothing is in flight.  :func:`snapshot_machine` enforces this and raises
:class:`~repro.util.errors.SimulationError` otherwise; checkpointing
mid-phase is not supported (and not needed: phases are the unit of replay).

The on-disk format is versioned JSON (:data:`CHECKPOINT_VERSION`); snapshots
are canonical — two machines in identical states produce equal dicts — so
``snapshot_machine(a) == snapshot_machine(b)`` is the determinism oracle.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import TYPE_CHECKING

from repro.sim.stats import NodeStats, PhaseBreakdown, TimeCategory
from repro.util.atomicio import atomic_write_json
from repro.util.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.tempest.machine import Machine

CHECKPOINT_VERSION = 1

#: NodeStats counter fields (everything but the node id and the cycles map);
#: derived from the dataclass so new counters are checkpointed automatically.
_NODE_COUNTERS = tuple(
    f.name for f in dataclasses.fields(NodeStats)
    if f.name not in ("node", "cycles")
)


def _require(condition: bool, what: str) -> None:
    if not condition:
        raise SimulationError(
            f"checkpoint requires a quiescent machine: {what}"
        )


def _assert_quiescent(machine: "Machine") -> None:
    """A snapshot is only meaningful when nothing is in flight."""
    _require(not machine._phase_running, "a phase is running")
    _require(machine.engine.pending == 0,
             f"{machine.engine.pending} engine event(s) still queued")
    outstanding = getattr(machine.protocol, "outstanding", {})
    _require(not outstanding,
             f"outstanding faults: {sorted(outstanding)}")
    deferred = getattr(machine.protocol, "_deferred", {})
    _require(not deferred,
             f"deferred cache messages: {sorted(deferred)}")
    transport = machine._transport
    if transport is not None:
        _require(transport.unacked == 0,
                 f"{transport.unacked} unacked transport send(s)")
        _require(transport.held_back == 0,
                 f"{transport.held_back} held-back message(s)")
    ctl = machine.crash_controller
    if ctl is not None:
        _require(not ctl.down, f"nodes still down: {sorted(ctl.down)}")


# -- snapshot ------------------------------------------------------------------


def snapshot_machine(machine: "Machine") -> dict:
    """Capture the machine's complete state as a canonical JSON-ready dict."""
    _assert_quiescent(machine)
    from repro.tempest.tracefile import record_regions

    injector = machine.fault_injector
    snap = {
        "version": CHECKPOINT_VERSION,
        "protocol": machine.protocol.name,
        "config": dataclasses.asdict(machine.config),
        "plan": injector.plan.to_dict() if injector is not None else None,
        "regions": record_regions(machine),
        "machine": {
            "clock": machine.clock,
            "phase_index": machine.phase_index,
            "current_directive": machine.current_directive,
            "group_accessed": sorted(map(list, machine.group_accessed)),
            "phase_writes": sorted(map(list, machine.phase_writes)),
            "phase_cycle_marks": {
                c.value: machine._phase_cycle_marks[c] for c in TimeCategory
            },
        },
        "engine": {
            "now": machine.engine.now,
            "seq": machine.engine._seq,
            "dispatched": machine.engine._dispatched,
        },
        "network": {
            "next_msg_id": machine.network._next_msg_id,
            "messages_delivered": machine.network.messages_delivered,
            "bytes_delivered": machine.network.bytes_delivered,
            "messages_dropped": machine.network.messages_dropped,
            "messages_duplicated": machine.network.messages_duplicated,
            "messages_fenced": machine.network.messages_fenced,
        },
        "nodes": [_snapshot_node(node) for node in machine.nodes],
        "stats": {
            "wall_time": machine.stats.wall_time,
            "total_remote_requests": machine.stats.total_remote_requests,
            "schedules_degraded": machine.stats.schedules_degraded,
            "phases": [dataclasses.asdict(p) for p in machine.stats.phases],
        },
        "directory": _snapshot_directory(machine),
        "predictive": _snapshot_predictive(machine),
        "write_update": _snapshot_write_update(machine),
        "injector": _snapshot_injector(machine),
        "transport": _snapshot_transport(machine),
        "crash": _snapshot_crash(machine),
    }
    return snap


def _snapshot_node(node) -> dict:
    return {
        "tags": [[b, int(t)] for b, t in node.tags.items()],
        "handler_busy_until": node.handler_busy_until,
        "cycles": {c.value: node.stats.cycles[c] for c in TimeCategory},
        "counters": {name: getattr(node.stats, name)
                     for name in _NODE_COUNTERS},
    }


def _snapshot_directory(machine: "Machine") -> list[dict]:
    directory = getattr(machine.protocol, "directory", None)
    if directory is None:
        return []
    # insertion order is preserved: known() iterates it, and message-level
    # repair walks must replay in the same order after a restore
    return [
        {
            "block": e.block,
            "home": e.home,
            "state": e.state,
            "sharers": sorted(e.sharers),
            "owner": e.owner,
            "in_service": e.in_service,
            "acks_needed": e.acks_needed,
            "pending": [[p.kind, p.requester] for p in e.pending],
        }
        for e in directory.known()
    ]


def _snapshot_predictive(machine: "Machine") -> dict | None:
    protocol = machine.protocol
    store = getattr(protocol, "schedules", None)
    if store is None:
        return None
    return {
        # least- to most-recently-used, so insert() rebuilds the LRU order
        "schedules": [_snapshot_schedule(s) for s in store.values()],
        "evictions": store.evictions,
        # cooldowns of evicted degraded schedules: relearning after a
        # resume must serve the same remaining penance as the original run
        "evicted_cooldowns": sorted(
            [d, c] for d, c in store._evicted_cooldowns.items()
        ),
        "pending_judgment": [
            [dst, block, sched.directive_id,
             store.get(sched.directive_id) is sched]
            for (dst, block), sched in protocol._pending_judgment.items()
        ],
        "presented": sorted(map(list, protocol._presented)),
        "suppress_learning": protocol._suppress_learning,
        "presend_messages": protocol.presend_messages,
        "presend_blocks": protocol.presend_blocks,
    }


def _snapshot_schedule(sched) -> dict:
    return {
        "directive_id": sched.directive_id,
        "instance": sched.instance,
        "entries": [
            {
                "block": e.block,
                "kind": e.kind.value,
                "readers": sorted(e.readers),
                "writer": e.writer,
                "instance": e.instance,
                "pre_conflict_kind": (e.pre_conflict_kind.value
                                      if e.pre_conflict_kind else None),
            }
            for e in sched.entries.values()
        ],
        "additions_per_instance": list(sched.additions_per_instance),
        "added_this_instance": sched._added_this_instance,
        "mispredict_rate": sched.mispredict_rate,
        "mispredict_samples": sched.mispredict_samples,
        "wasted_streak": sched.wasted_streak,
        "wasted_this_instance": sched._wasted_this_instance,
        "cooldown": sched.cooldown,
    }


def _snapshot_write_update(machine: "Machine") -> dict | None:
    protocol = machine.protocol
    if not hasattr(protocol, "updates_pushed"):
        return None
    return {
        "updates_pushed": protocol.updates_pushed,
        "update_messages": protocol.update_messages,
    }


def _snapshot_injector(machine: "Machine") -> dict | None:
    inj = machine.fault_injector
    if inj is None:
        return None
    state = inj.rng.getstate()
    return {
        "rng": [state[0], list(state[1]), state[2]],
        "injected": [ev.to_dict() for ev in inj.injected],
        "msg_occurrence": [[list(k), v]
                           for k, v in inj._msg_occurrence.items()],
        "service_index": [[k, v] for k, v in inj._service_index.items()],
        "group_index": [[k, v] for k, v in inj._group_index.items()],
        "crash_count": inj._crash_count,
    }


def _snapshot_transport(machine: "Machine") -> list | None:
    transport = machine._transport
    if transport is None:
        return None
    # quiescence guarantees pending/held are empty; only the per-channel
    # sequence counters carry forward
    return sorted(
        [src, dst, ch.next_out, ch.next_expected]
        for (src, dst), ch in transport._channels.items()
    )


def _snapshot_crash(machine: "Machine") -> dict | None:
    ctl = machine.crash_controller
    if ctl is None:
        return None
    return {
        "incarnations": list(ctl.incarnations),
        "phase": ctl._phase,
        "log": [dataclasses.asdict(r) for r in ctl.log],
        "detections": machine.watchdog.detections,
    }


# -- restore -------------------------------------------------------------------


def restore_machine(snap: dict, fast: bool = False, engine=None) -> "Machine":
    """Build a fresh machine in exactly the snapshotted state.

    Replaying the remainder of the session on the returned machine is
    bit-identical to the uninterrupted run: every counter, clock, RNG state,
    and structure iteration order is reproduced.  ``fast`` restores onto the
    compiled fast path (checkpoints are representation-independent, so
    either path can resume the other's snapshot).  ``engine`` optionally
    supplies a pre-built event engine, exactly as in
    :func:`~repro.core.factory.make_machine` — the farm's preemption layer
    resumes runs under the same :class:`~repro.verify.interleave.
    ExplorerEngine` the original machine used.
    """
    if snap.get("version") != CHECKPOINT_VERSION:
        raise SimulationError(
            f"unsupported checkpoint version {snap.get('version')!r} "
            f"(this build reads version {CHECKPOINT_VERSION})"
        )
    from repro.core.factory import make_machine
    from repro.tempest.tracefile import restore_regions
    from repro.util.config import MachineConfig

    config = MachineConfig(**snap["config"])
    machine = make_machine(config, snap["protocol"], engine=engine, fast=fast)
    restore_regions(machine, snap["regions"])
    if snap["plan"] is not None:
        from repro.faults.plan import FaultPlan

        machine.install_fault_plan(FaultPlan.from_dict(snap["plan"]))

    m = snap["machine"]
    machine.clock = m["clock"]
    machine.phase_index = m["phase_index"]
    machine.current_directive = m["current_directive"]
    # in-place: the fast path's processors cache these sets by identity
    machine.group_accessed.clear()
    machine.group_accessed.update(tuple(p) for p in m["group_accessed"])
    machine.phase_writes.clear()
    machine.phase_writes.update(tuple(p) for p in m["phase_writes"])
    machine._phase_cycle_marks = {
        TimeCategory(k): v for k, v in m["phase_cycle_marks"].items()
    }

    e = snap["engine"]
    machine.engine.now = e["now"]
    machine.engine._seq = e["seq"]
    machine.engine._dispatched = e["dispatched"]

    n = snap["network"]
    net = machine.network
    net._next_msg_id = n["next_msg_id"]
    net.messages_delivered = n["messages_delivered"]
    net.bytes_delivered = n["bytes_delivered"]
    net.messages_dropped = n["messages_dropped"]
    net.messages_duplicated = n["messages_duplicated"]
    net.messages_fenced = n["messages_fenced"]

    for node, rec in zip(machine.nodes, snap["nodes"]):
        node.tags.clear()
        for block, tag in rec["tags"]:
            node.tags.set(block, _TAG_BY_VALUE[tag])
        node.handler_busy_until = rec["handler_busy_until"]
        for c in TimeCategory:
            node.stats.cycles[c] = rec["cycles"][c.value]
        for name, value in rec["counters"].items():
            setattr(node.stats, name, value)

    s = snap["stats"]
    machine.stats.wall_time = s["wall_time"]
    machine.stats.total_remote_requests = s["total_remote_requests"]
    machine.stats.schedules_degraded = s["schedules_degraded"]
    machine.stats.phases = [PhaseBreakdown(**p) for p in s["phases"]]

    _restore_directory(machine, snap["directory"])
    if snap["predictive"] is not None:
        _restore_predictive(machine, snap["predictive"])
    if snap["write_update"] is not None:
        machine.protocol.updates_pushed = snap["write_update"]["updates_pushed"]
        machine.protocol.update_messages = snap["write_update"]["update_messages"]
    if snap["injector"] is not None:
        _restore_injector(machine, snap["injector"])
    if snap["transport"] is not None:
        _restore_transport(machine, snap["transport"])
    if snap["crash"] is not None:
        _restore_crash(machine, snap["crash"])
    return machine


_TAG_BY_VALUE: dict = {}


def _init_tag_table() -> None:
    from repro.tempest.tags import AccessTag

    for tag in AccessTag:
        _TAG_BY_VALUE[int(tag)] = tag


_init_tag_table()


def _restore_directory(machine: "Machine", records: list[dict]) -> None:
    from collections import deque

    from repro.fastpath.packed import NodeSet
    from repro.protocols.directory import DirEntry, PendingRequest

    directory = getattr(machine.protocol, "directory", None)
    if directory is None:
        return
    directory._entries.clear()
    for rec in records:
        directory._entries[rec["block"]] = DirEntry(
            block=rec["block"],
            home=rec["home"],
            state=rec["state"],
            sharers=NodeSet(rec["sharers"]),
            owner=rec["owner"],
            in_service=rec["in_service"],
            acks_needed=rec["acks_needed"],
            pending=deque(PendingRequest(kind=k, requester=r)
                          for k, r in rec["pending"]),
        )


def _restore_predictive(machine: "Machine", rec: dict) -> None:
    from repro.core.schedule import CommSchedule, EntryKind, ScheduleEntry

    protocol = machine.protocol
    store = protocol.schedules
    store.evictions = 0
    for sdict in rec["schedules"]:
        sched = CommSchedule(sdict["directive_id"])
        sched.instance = sdict["instance"]
        for ent in sdict["entries"]:
            sched.entries[ent["block"]] = ScheduleEntry(
                block=ent["block"],
                kind=EntryKind(ent["kind"]),
                readers=set(ent["readers"]),
                writer=ent["writer"],
                instance=ent["instance"],
                pre_conflict_kind=(EntryKind(ent["pre_conflict_kind"])
                                   if ent["pre_conflict_kind"] else None),
            )
        sched.additions_per_instance = list(sdict["additions_per_instance"])
        sched._added_this_instance = sdict["added_this_instance"]
        sched.mispredict_rate = sdict["mispredict_rate"]
        sched.mispredict_samples = sdict["mispredict_samples"]
        sched.wasted_streak = sdict["wasted_streak"]
        sched._wasted_this_instance = sdict["wasted_this_instance"]
        sched.cooldown = sdict["cooldown"]
        store.insert(sched)
    store.evictions = rec["evictions"]
    store._evicted_cooldowns = {
        d: c for d, c in rec.get("evicted_cooldowns", [])
    }
    # Pairs owned by a live schedule point at the store's object (degrade
    # filters compare identity); pairs whose owner was evicted get one
    # dangling stand-in per directive id — behaviourally identical, since an
    # evicted schedule's mutations are unobservable (it is never fetched or
    # judged again, only note_waste/note_useful on it, which feed nothing).
    dangling: dict[int, object] = {}
    protocol._pending_judgment = {}
    for dst, block, directive_id, live in rec["pending_judgment"]:
        if live:
            owner = store[directive_id]
        else:
            owner = dangling.get(directive_id)
            if owner is None:
                owner = dangling[directive_id] = CommSchedule(directive_id)
        protocol._pending_judgment[(dst, block)] = owner
    protocol._presented = {tuple(p) for p in rec["presented"]}
    protocol._suppress_learning = rec["suppress_learning"]
    protocol.presend_messages = rec["presend_messages"]
    protocol.presend_blocks = rec["presend_blocks"]


def _restore_injector(machine: "Machine", rec: dict) -> None:
    from repro.faults.plan import FaultEvent

    inj = machine.fault_injector
    st = rec["rng"]
    inj.rng.setstate((st[0], tuple(st[1]), st[2]))
    inj.injected = []
    inj._last_msg_fault = {}
    for ev in rec["injected"]:
        inj._record(FaultEvent.from_dict(ev))
    inj._msg_occurrence.clear()
    for key, count in rec["msg_occurrence"]:
        inj._msg_occurrence[tuple(key)] = count
    inj._service_index.clear()
    for node, count in rec["service_index"]:
        inj._service_index[node] = count
    inj._group_index.clear()
    for directive, count in rec["group_index"]:
        inj._group_index[directive] = count
    inj._crash_count = rec["crash_count"]


def _restore_transport(machine: "Machine", channels: list) -> None:
    transport = machine._transport
    if transport is None:  # pragma: no cover - plan mismatch is a bug
        raise SimulationError(
            "checkpoint has transport channels but the restored plan "
            "installed no reliable transport"
        )
    for src, dst, next_out, next_expected in channels:
        ch = transport._channel(src, dst)
        ch.next_out = next_out
        ch.next_expected = next_expected


def _restore_crash(machine: "Machine", rec: dict) -> None:
    from repro.recovery.crash import CrashRecord

    ctl = machine.crash_controller
    if ctl is None:  # pragma: no cover - plan mismatch is a bug
        raise SimulationError(
            "checkpoint has crash-controller state but the restored plan "
            "installed no crash controller"
        )
    ctl.incarnations = list(rec["incarnations"])
    ctl._phase = rec["phase"]
    ctl.log = [CrashRecord(**r) for r in rec["log"]]
    machine.watchdog.detections = rec["detections"]


# -- files ---------------------------------------------------------------------


def save_checkpoint(machine: "Machine", path) -> dict:
    """Snapshot ``machine`` and write it to ``path`` as JSON; returns the
    snapshot dict.  The write is atomic (write-temp + fsync + rename), so
    a crash mid-save leaves the previous checkpoint intact, never a torn
    file."""
    snap = snapshot_machine(machine)
    atomic_write_json(Path(path), snap, indent=1)
    return snap


def load_checkpoint(path):
    """Read a snapshot written by :func:`save_checkpoint`.

    JSON round-trips lists where the in-memory snapshot held lists already,
    so a loaded snapshot compares equal to a fresh one and restores the same
    machine.
    """
    with Path(path).open(encoding="utf-8") as fh:
        return json.load(fh)
