"""The work-stealing scheduler: who runs which job next.

The scheduler is deliberately transport-agnostic — it never touches a
process or a queue.  It owns the per-worker job decks produced by
:func:`repro.farm.jobs.partition_jobs` and answers one question: *worker W
is idle; what should it run?*  The coordinator
(:mod:`repro.farm.coordinator`) translates the answer into transport sends
and folds results; a future multi-host backend reuses this class unchanged
by swapping the transport underneath.

Stealing policy: an idle worker pops the **front** of its own deck
(owner side); when its deck is empty it steals from the **back** of the
richest remaining deck (classic work-stealing ends: owners and thieves
never contend for the same end).  Victim choice is deterministic — richest
deck, lowest worker id on ties — so a run's schedule is reproducible given
the same completion order.  None of this affects results: the campaign
fold is order-independent by construction.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.farm.jobs import FarmJob, partition_jobs


@dataclass(frozen=True)
class Assignment:
    """One scheduling decision: ``job`` for ``worker``, possibly stolen."""

    worker: int
    job: FarmJob
    stolen_from: int | None = None  # owner's deck when != worker


class WorkStealingScheduler:
    """Per-worker decks with deterministic stealing and crash requeue."""

    def __init__(self, jobs: list[FarmJob], n_workers: int):
        self.n_workers = n_workers
        self._jobs = {job.index: job for job in jobs}
        if len(self._jobs) != len(jobs):
            raise ValueError("job indices must be unique")
        decks = partition_jobs(len(jobs), n_workers)
        ordered = sorted(jobs, key=lambda j: j.index)
        self._decks: list[deque[FarmJob]] = [
            deque(ordered[i] for i in deck) for deck in decks
        ]
        #: job index -> worker currently running it
        self.in_flight: dict[int, int] = {}

    # -- queries ---------------------------------------------------------------

    @property
    def queued(self) -> int:
        return sum(len(d) for d in self._decks)

    @property
    def outstanding(self) -> int:
        """Jobs not yet completed (queued + in flight)."""
        return self.queued + len(self.in_flight)

    def running_on(self, worker: int) -> list[FarmJob]:
        """The jobs currently in flight on ``worker``."""
        return [self._jobs[i] for i, w in sorted(self.in_flight.items())
                if w == worker]

    def job(self, index: int) -> FarmJob:
        """The current record for job ``index`` (see :meth:`replace`)."""
        return self._jobs[index]

    # -- scheduling ------------------------------------------------------------

    def acquire(self, worker: int) -> Assignment | None:
        """Assign the next job to idle ``worker`` (None when nothing queued).

        Own deck first (front); otherwise steal from the back of the
        richest deck (ties broken toward the lowest worker id).
        """
        own = self._decks[worker]
        if own:
            job = own.popleft()
            self.in_flight[job.index] = worker
            return Assignment(worker=worker, job=job)
        victim = max(range(self.n_workers),
                     key=lambda w: (len(self._decks[w]), -w))
        if not self._decks[victim]:
            return None
        job = self._decks[victim].pop()
        self.in_flight[job.index] = worker
        return Assignment(worker=worker, job=job, stolen_from=victim)

    def complete(self, job_index: int) -> None:
        self.in_flight.pop(job_index, None)

    def requeue(self, job: FarmJob) -> None:
        """Put a job back at the front of its owner deck (crash/preempt).

        The front, so a retried job is re-dispatched before fresh work —
        retries are on the campaign's critical path.
        """
        self.in_flight.pop(job.index, None)
        self._decks[job.index % self.n_workers].appendleft(job)

    def replace(self, job: FarmJob) -> None:
        """Swap the stored job record (e.g. attach resume state on retry)."""
        self._jobs[job.index] = job
