"""Wire framing for the multi-host farm: length-prefixed JSON with
per-frame sequence numbers, acks, and checksums.

One frame on the wire is::

    [4-byte big-endian length][json: {"ack", "body", "seq", "sum"}]

* ``body`` — the application message (a plain JSON document; the farm's
  job/result/heartbeat vocabulary lives in :mod:`repro.farm.remote`).
* ``seq`` — per-direction counter starting at 1.  TCP already delivers
  in order, so the receiver treats ``seq <= last`` as a duplicate (our
  own chaos layer re-sends messages with fresh seqs, so frame-level
  duplicates only appear under genuine transport weirdness) and any gap
  as corruption: both endpoints would rather reset the link than guess.
* ``ack`` — the highest ``seq`` this endpoint has delivered from its
  peer; carried on every frame so either side can see how much of what
  it sent has definitely arrived (:attr:`FrameStream.unacked`).
* ``sum`` — a truncated SHA-256 of the canonical JSON encoding of
  ``body``.  JSON round-trips values exactly, so the receiver re-derives
  the canonical encoding and compares; a mismatch is a corrupt frame.

:class:`FrameStream` wraps a connected socket with this framing.  Reads
keep partial data in an internal buffer, so a socket timeout mid-frame
(used by both endpoints as a liveness watchdog) is resumable — the next
:meth:`FrameStream.recv` continues where the last one stopped instead of
desynchronizing the stream.
"""

from __future__ import annotations

import hashlib
import json
import socket
import struct
import threading

from repro.farm.transport import FarmError

#: bump only for incompatible framing changes; carried in the hello frame
FRAME_FORMAT_VERSION = 1

#: hard upper bound on one frame (a checkpoint envelope for the largest
#: bundled workload is ~1 MiB; anything near this is corruption)
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LEN = struct.Struct(">I")
_CHUNK = 65536


class FrameError(FarmError):
    """A malformed frame: bad checksum, sequence gap, oversize, not JSON."""


class LinkClosed(FrameError):
    """The peer closed the connection (clean EOF mid-stream)."""


def canonical(body: dict) -> bytes:
    """The canonical JSON encoding checksums are computed over."""
    return json.dumps(body, sort_keys=True, separators=(",", ":")).encode()


def checksum(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()[:16]


class FrameStream:
    """Framed, checksummed, seq/ack-stamped messaging over one socket.

    ``send`` is internally locked (the agent's executor, heartbeat, and
    control threads share one outbound stream); ``recv`` must only be
    called from one thread (each endpoint has a single reader).
    """

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._buf = bytearray()
        self._want: int | None = None  # current frame's length, once read
        self._send_lock = threading.Lock()
        self.send_seq = 0
        self.recv_seq = 0
        self.peer_ack = 0
        self.dups_dropped = 0

    @property
    def unacked(self) -> int:
        """Frames sent that the peer has not yet acknowledged."""
        return self.send_seq - self.peer_ack

    # -- sending ---------------------------------------------------------------

    def send(self, body: dict) -> None:
        payload = canonical(body)
        with self._send_lock:
            self.send_seq += 1
            frame = canonical({
                "ack": self.recv_seq,
                "body": body,
                "seq": self.send_seq,
                "sum": checksum(payload),
            })
            self._sock.sendall(_LEN.pack(len(frame)) + frame)

    # -- receiving -------------------------------------------------------------

    def _take(self, n: int) -> bytes:
        """Exactly ``n`` bytes, buffering partial reads across timeouts."""
        while len(self._buf) < n:
            chunk = self._sock.recv(_CHUNK)
            if not chunk:
                raise LinkClosed("peer closed the connection")
            self._buf += chunk
        out = bytes(self._buf[:n])
        del self._buf[:n]
        return out

    def recv(self) -> dict:
        """The next in-sequence body; skips duplicates, raises on damage.

        Raises :class:`LinkClosed` on EOF, :class:`FrameError` on a bad
        checksum / sequence gap / oversize frame, and lets the socket's
        timeout (``TimeoutError``) propagate without losing stream state.
        """
        while True:
            if self._want is None:
                (self._want,) = _LEN.unpack(self._take(4))
                if self._want > MAX_FRAME_BYTES:
                    raise FrameError(
                        f"oversize frame ({self._want} bytes); corrupt link")
            raw = self._take(self._want)
            self._want = None
            try:
                frame = json.loads(raw)
                body = frame["body"]
                seq = int(frame["seq"])
                declared = frame["sum"]
            except (ValueError, KeyError, TypeError) as exc:
                raise FrameError(f"undecodable frame: {exc}") from exc
            if checksum(canonical(body)) != declared:
                raise FrameError(f"checksum mismatch on frame seq={seq}")
            self.peer_ack = max(self.peer_ack, int(frame.get("ack", 0)))
            if seq <= self.recv_seq:
                self.dups_dropped += 1
                continue
            if seq != self.recv_seq + 1:
                raise FrameError(
                    f"sequence gap: expected {self.recv_seq + 1}, got {seq}")
            self.recv_seq = seq
            return body

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close races are benign
            pass
