"""Checkpoint-sliced runs: preempt a long job and resume it elsewhere.

:func:`sliced_run` is the preemptible twin of
:func:`repro.verify.oracle.run_workload` for FIFO-ordered replays: it
feeds the session to the machine a few events at a time and, between
slices, consults a ``should_preempt`` callback.  On preemption it steps
forward to the next quiescent event boundary (phase barriers are the only
checkpointable points — the retry-forward loop mirrors
``tests/recovery/test_checkpoint.py``), takes a
:func:`repro.recovery.checkpoint.snapshot_machine` checkpoint, and
returns a JSON-safe **resume envelope**: the snapshot, the event cursor,
and the partial :class:`~repro.verify.oracle.Observables`.  Feeding the
envelope back as ``resume=`` on any worker restores the machine
(:func:`~repro.recovery.checkpoint.restore_machine` under the same engine
type) and finishes the run — bit-identically to the uninterrupted run,
which is exactly the determinism guarantee the checkpoint tests already
prove for the underlying snapshot format.

The same envelopes double as crash insurance: a preemptible farm job
streams one after each completed slice group, so the coordinator can
resume a crashed worker's job from its last envelope instead of from
scratch (either way the result is identical; the envelope just skips the
replayed prefix).
"""

from __future__ import annotations

from repro.core.factory import make_machine
from repro.recovery.checkpoint import restore_machine, snapshot_machine
from repro.tempest.tracefile import replay_session
from repro.util.errors import ProtocolError, SimulationError, TransportTimeout
from repro.verify.interleave import ExplorerEngine, FifoPolicy
from repro.verify.monitor import CoherenceViolation, InvariantMonitor
from repro.verify.oracle import Observables
from repro.verify.workload import Workload

#: session events replayed between preemption checks
DEFAULT_SLICE = 4


def serialize_observables(obs: Observables) -> dict:
    """JSON-safe form of the replay-visible observables (not the stats)."""
    return {
        "protocol": obs.protocol,
        "readers": [[b, sorted(ns)] for b, ns in sorted(obs.readers.items())],
        "writers": [[b, sorted(ns)] for b, ns in sorted(obs.writers.items())],
        "image": [[b, [w, c]] for b, (w, c) in sorted(obs.image.items())],
    }


def deserialize_observables(data: dict) -> Observables:
    obs = Observables(protocol=data["protocol"])
    obs.readers = {b: set(ns) for b, ns in data["readers"]}
    obs.writers = {b: set(ns) for b, ns in data["writers"]}
    obs.image = {b: (w, c) for b, (w, c) in data["image"]}
    return obs


def _engine_for(fast: bool, max_events: int | None):
    if fast:
        from repro.fastpath.calqueue import FastEngine

        return FastEngine(default_max_events=max_events), FifoPolicy()
    policy = FifoPolicy()
    return ExplorerEngine(policy, default_max_events=max_events), policy


def sliced_run(
    workload: Workload,
    protocol: str,
    fault_plan=None,
    max_events: int | None = 2_000_000,
    fast: bool = False,
    should_preempt=None,
    on_checkpoint=None,
    resume: dict | None = None,
    slice_events: int = DEFAULT_SLICE,
    warm=None,
) -> tuple[str, object]:
    """Run ``workload`` under ``protocol`` in preemptible slices (FIFO order).

    Returns ``("done", Observables)`` — identical to what
    ``run_workload(workload, protocol, fault_plan=..., fast=...)`` under
    FIFO tie-breaking produces — or ``("preempted", envelope)`` when
    ``should_preempt()`` fired and a quiescent checkpoint was reached.
    ``on_checkpoint(envelope)`` (optional) observes every checkpointable
    boundary, which is how farm workers stream crash-resume state.
    ``warm`` seeds corpus schedule records on a *fresh* start only — a
    resumed run's snapshot already restored the live schedules, which
    outrank the corpus.  Violations raise exactly as
    :func:`~repro.verify.oracle.run_workload` raises them, fault events
    attached.
    """
    events, regions = workload.session
    engine, policy = _engine_for(fast, max_events)
    if resume is None:
        cursor = 0
        machine = make_machine(workload.config, protocol, engine=engine,
                               fast=fast, warm=warm)
        if fault_plan is not None:
            machine.install_fault_plan(fault_plan)
        obs = Observables(protocol=protocol)
        first_regions = regions
    else:
        cursor = resume["cursor"]
        machine = restore_machine(resume["snapshot"], fast=fast,
                                  engine=engine)
        obs = deserialize_observables(resume["obs"])
        first_regions = []  # the snapshot already restored region state
    monitor = InvariantMonitor(seed=workload.seed, policy=policy)
    monitor.attach(machine)
    machine.access_hooks.append(obs.record)

    def injected() -> list:
        inj = machine.fault_injector
        return list(inj.injected) if inj is not None else []

    def envelope() -> dict:
        return {
            "cursor": cursor,
            "snapshot": snapshot_machine(machine),
            "obs": serialize_observables(obs),
        }

    try:
        while cursor < len(events):
            upto = min(cursor + max(1, slice_events), len(events))
            replay_session((events[cursor:upto], regions), machine,
                           regions=first_regions, finish=False)
            first_regions = []
            cursor = upto
            if cursor >= len(events):
                break
            # checkpoint opportunity: step to the next quiescent boundary
            # (a slice can end mid-recovery, where snapshots are refused)
            want_preempt = should_preempt is not None and should_preempt()
            if not (want_preempt or on_checkpoint is not None):
                continue
            env = None
            while True:
                try:
                    env = envelope()
                    break
                except SimulationError:
                    if cursor >= len(events):
                        break  # run the close-out instead; nothing to save
                    replay_session(([events[cursor]], regions), machine,
                                   regions=[], finish=False)
                    cursor += 1
            if env is None:
                break
            if want_preempt:
                return "preempted", env
            on_checkpoint(env)
        obs.stats = machine.finish()
        monitor.check(machine, phase="end-of-run")
    except CoherenceViolation as violation:
        violation.fault_events = injected()
        raise
    except (ProtocolError, SimulationError) as exc:
        if isinstance(exc, TransportTimeout):
            invariant = "transport-timeout"
        elif "deadlock" in str(exc):
            invariant = "deadlock"
        else:
            invariant = "protocol-error"
        violation = CoherenceViolation(
            invariant, str(exc),
            protocol=protocol, phase="(during run)",
            seed=workload.seed, schedule=list(policy.choices),
        )
        violation.fault_events = injected()
        raise violation from exc
    obs.fault_events = injected()
    return "done", obs
