"""Farm transports: how jobs reach workers and results come back.

The scheduler decides *what* runs where (:mod:`repro.farm.scheduler`); a
transport is the dumb pipe that moves :class:`~repro.farm.jobs.FarmJob`
records out and result messages back.  The split is the multi-host seam:
the coordinator drives any object with this interface, so a future
backend that ships jobs to other machines (ssh, a job queue, an RPC mesh)
slots in without touching scheduling, retry, or merge logic.

Wire protocol (one tuple shape both ways keeps backends trivial):

* coordinator -> worker: ``("job", FarmJob)`` or ``("stop",)``
* worker -> coordinator: ``(kind, worker_id, job_index, payload)`` with
  ``kind`` one of ``up`` / ``result`` / ``error`` / ``progress`` /
  ``preempted`` / ``down``

Two backends ship:

* :class:`LocalProcessTransport` — a multiprocessing worker pool (fork
  where available, spawn otherwise): one job queue per worker, one shared
  result queue, one preemption flag per worker, and crash detection +
  respawn via process liveness.
* :class:`InlineTransport` — executes jobs synchronously in-process.
  Zero isolation, zero overhead: the deterministic reference backend the
  farm tests drive the coordinator through, and the degenerate case a
  single-worker farm collapses to.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
from collections import deque
from typing import Callable

from repro.farm.jobs import FarmJob
from repro.util.errors import SimulationError


class FarmError(SimulationError):
    """A farm-level failure (worker crash budget exhausted, job error)."""


def _mp_context():
    """Prefer fork (workers inherit module state — monkeypatches and caches
    included); fall back to spawn where fork is unavailable."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


class LocalProcessTransport:
    """A local worker pool over multiprocessing queues.

    ``stop_grace``/``kill_grace`` bound shutdown: a worker that ignores
    the stop message gets SIGTERM after ``stop_grace`` seconds, and one
    that ignores SIGTERM too gets SIGKILL after ``kill_grace`` more —
    ``stop()`` never leaves a live child behind.
    """

    def __init__(self, n_workers: int, *, stop_grace: float = 10.0,
                 kill_grace: float = 5.0):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = n_workers
        self.stop_grace = stop_grace
        self.kill_grace = kill_grace
        self._ctx = _mp_context()
        self._result_q = self._ctx.Queue()
        self._job_qs = [self._ctx.Queue() for _ in range(n_workers)]
        self._preempt_flags = [self._ctx.Event() for _ in range(n_workers)]
        self._procs: list = [None] * n_workers

    # -- lifecycle -------------------------------------------------------------

    def start(self, worker_main: Callable) -> None:
        for wid in range(self.n_workers):
            self._spawn(wid, worker_main)
        self._worker_main = worker_main

    def _spawn(self, wid: int, worker_main: Callable) -> None:
        proc = self._ctx.Process(
            target=worker_main,
            args=(wid, self._job_qs[wid], self._result_q,
                  self._preempt_flags[wid]),
            daemon=True,
            name=f"repro-farm-worker-{wid}",
        )
        proc.start()
        self._procs[wid] = proc

    def respawn(self, wid: int) -> None:
        """Replace a dead worker with a fresh process (same id and deck)."""
        proc = self._procs[wid]
        if proc is not None and proc.is_alive():  # pragma: no cover
            raise FarmError(f"worker {wid} is still alive; refusing respawn")
        self._preempt_flags[wid].clear()
        self._spawn(wid, self._worker_main)

    def stop(self) -> None:
        for wid in range(self.n_workers):
            proc = self._procs[wid]
            if proc is not None and proc.is_alive():
                self._job_qs[wid].put(("stop",))
        for proc in self._procs:
            if proc is not None:
                proc.join(timeout=self.stop_grace)
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=self.kill_grace)
                if proc.is_alive():
                    # SIGTERM ignored (masked handler, wedged in C code):
                    # escalate to SIGKILL rather than leak a zombie
                    proc.kill()
                    proc.join(timeout=self.kill_grace)

    # -- messaging -------------------------------------------------------------

    def send(self, wid: int, message: tuple) -> None:
        self._job_qs[wid].put(message)

    def recv(self, timeout: float = 0.2) -> tuple | None:
        """The next worker message, or None after ``timeout`` seconds."""
        try:
            return self._result_q.get(timeout=timeout)
        except queue_mod.Empty:
            return None

    # -- preemption and liveness -----------------------------------------------

    def preempt(self, wid: int) -> None:
        self._preempt_flags[wid].set()

    def clear_preempt(self, wid: int) -> None:
        self._preempt_flags[wid].clear()

    def alive(self, wid: int) -> bool:
        proc = self._procs[wid]
        return proc is not None and proc.is_alive()


class _InlineControl:
    """Preemption/streaming context handed to inline job execution."""

    def __init__(self, transport: "InlineTransport", job: FarmJob):
        self._transport = transport
        self._job = job

    def should_preempt(self) -> bool:
        return self._transport._preempt.get(0, False)

    def stream(self, envelope) -> None:
        self._transport._inbox.append(
            ("progress", 0, self._job.index, envelope))


class InlineTransport:
    """Synchronous single-"worker" backend: jobs run on send().

    Presents exactly one worker (id 0).  Used by tests to drive the
    coordinator deterministically without processes, and by the farm when
    ``jobs=1`` still wants the farm's event stream.
    """

    n_workers = 1

    def __init__(self):
        self._inbox: deque[tuple] = deque()
        self._preempt = {0: False}
        self._started = False

    def start(self, worker_main: Callable) -> None:
        # worker_main is process-entry machinery; inline execution goes
        # straight to the job executor instead
        self._inbox.append(("up", 0, None, None))
        self._started = True

    def stop(self) -> None:
        self._started = False

    def send(self, wid: int, message: tuple) -> None:
        if message[0] == "stop":
            self._inbox.append(("down", 0, None, None))
            return
        job: FarmJob = message[1]
        from repro.farm.worker import execute_job

        control = _InlineControl(self, job)
        try:
            payload = execute_job(job, control)
        except Exception as exc:  # mirror the process worker's catch-all
            import traceback

            self._inbox.append(
                ("error", 0, job.index,
                 f"{type(exc).__name__}: {exc}\n"
                 f"{traceback.format_exc().rstrip()}"))
            return
        if isinstance(payload, tuple) and payload[0] == "preempted":
            self._inbox.append(("preempted", 0, job.index, payload[1]))
        else:
            self._inbox.append(("result", 0, job.index, payload))

    def recv(self, timeout: float = 0.2) -> tuple | None:
        return self._inbox.popleft() if self._inbox else None

    def preempt(self, wid: int) -> None:
        self._preempt[wid] = True

    def clear_preempt(self, wid: int) -> None:
        self._preempt[wid] = False

    def alive(self, wid: int) -> bool:
        return self._started

    def respawn(self, wid: int) -> None:  # pragma: no cover - cannot die
        raise FarmError("inline transport workers cannot crash")
