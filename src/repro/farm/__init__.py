"""repro.farm — the work-stealing campaign executor.

Shards verify/faults/bench campaign jobs across a local worker pool with
a scheduler/transport split (:mod:`~repro.farm.scheduler` decides, the
transport moves bytes) so a multi-host backend can slot in later.
Aggregated campaign reports are byte-identical to sequential execution:
jobs derive their randomness from stable identity hashes
(:func:`~repro.farm.jobs.derive_seed`), results fold in job-index order,
and the metrics merge algebra is order-independent.  See docs/FARM.md.
"""

from repro.farm.coordinator import FarmController, FarmResult, run_farm
from repro.farm.jobs import FarmJob, derive_seed, partition_jobs
from repro.farm.scheduler import Assignment, WorkStealingScheduler
from repro.farm.transport import (
    FarmError,
    InlineTransport,
    LocalProcessTransport,
)

__all__ = [
    "Assignment",
    "FarmController",
    "FarmError",
    "FarmJob",
    "FarmResult",
    "InlineTransport",
    "LocalProcessTransport",
    "WorkStealingScheduler",
    "derive_seed",
    "partition_jobs",
    "run_farm",
]
