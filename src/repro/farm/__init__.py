"""repro.farm — the work-stealing campaign executor.

Shards verify/faults/bench campaign jobs across a worker pool with a
scheduler/transport split (:mod:`~repro.farm.scheduler` decides, the
transport moves bytes): local processes (:mod:`~repro.farm.transport`) or
remote hosts over TCP (:mod:`~repro.farm.remote` — heartbeats, leases,
incarnation fencing, checkpoint migration; chaos-tested through
:mod:`~repro.farm.chaos`).  Aggregated campaign reports are
byte-identical to sequential execution: jobs derive their randomness
from stable identity hashes (:func:`~repro.farm.jobs.derive_seed`),
results fold in job-index order, and the metrics merge algebra is
order-independent.  See docs/FARM.md.
"""

from repro.farm.chaos import DEFAULT_CHAOS_PLAN, ChaosTransport
from repro.farm.coordinator import FarmController, FarmResult, run_farm
from repro.farm.jobs import FarmJob, derive_seed, partition_jobs
from repro.farm.remote import HostLedger, SocketTransport, worker_agent
from repro.farm.scheduler import Assignment, WorkStealingScheduler
from repro.farm.transport import (
    FarmError,
    InlineTransport,
    LocalProcessTransport,
)

__all__ = [
    "Assignment",
    "ChaosTransport",
    "DEFAULT_CHAOS_PLAN",
    "FarmController",
    "FarmError",
    "FarmJob",
    "FarmResult",
    "HostLedger",
    "InlineTransport",
    "LocalProcessTransport",
    "SocketTransport",
    "WorkStealingScheduler",
    "derive_seed",
    "partition_jobs",
    "run_farm",
    "worker_agent",
]
