"""Farm jobs: what one worker executes, and how jobs get their randomness.

A :class:`FarmJob` is a self-contained, transport-safe description of one
unit of campaign work — its ``params`` hold only primitives (numbers,
strings, lists, dicts), never live machines or workloads, so a job can
cross a process boundary today and a host boundary later without changing
shape.  Workers resolve the ``kind`` through the dispatch table in
:mod:`repro.farm.worker` and rebuild whatever heavy state the job needs
(generated workloads from their seed, trace workloads from their path).

Two properties make the farm's reports byte-identical to sequential runs:

* **stable seed derivation** — :func:`derive_seed` hashes the campaign
  seed together with the job's stable identity (workload name, plan name,
  variant, protocol), so a job's randomness is a pure function of *what*
  it is, never of *when* or *where* it runs, and never of shared RNG
  state threaded through a loop.  Running a subset of a campaign injects
  exactly the faults the full campaign would have injected for those
  cells.
* **deterministic partitioning** — :func:`partition_jobs` deals jobs into
  per-worker decks round-robin; the decks are disjoint, complete, and a
  pure function of ``(n_jobs, n_workers)`` (Hypothesis-tested in
  ``tests/farm/test_partition.py``).  Work stealing then rebalances the
  decks at run time without affecting results, because results are folded
  in job-index order regardless of completion order.

The durable schedule corpus (:mod:`repro.corpus`) rides the same seam:
warm-start envelopes are *looked up by the coordinator* and embedded in a
job's transport-safe ``params`` (``"warm"``: protocol -> schedule
records), and harvested schedules travel back inside the ordinary result
dict.  Workers never open the corpus directory themselves, so a job's
outcome stays a pure function of its spec — the same spec warms the same
way on any worker, any transport, any jobs count.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

#: derive_seed output range: 63 bits keeps seeds inside Python ints that
#: random.Random and json both round-trip exactly
_SEED_BITS = 63


def derive_seed(campaign_seed: int, *identity) -> int:
    """A stable 63-bit seed for one job, from the campaign seed + identity.

    ``identity`` is the job's stable coordinates — e.g. ``("seed0",
    "chaos", 2, "stache")`` for workload seed0 x plan chaos x variant 2 x
    protocol stache.  The derivation is a SHA-256 hash, so distinct
    identities get independent streams (no additive collisions between
    axes, and plans that share a base seed no longer share injection
    streams) and the result is identical on every host, Python version,
    and worker — the prerequisite for order-independent sharding.
    """
    material = repr((int(campaign_seed),) + tuple(identity)).encode("utf-8")
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:8], "big") >> (64 - _SEED_BITS)


@dataclass(frozen=True)
class FarmJob:
    """One schedulable unit of campaign work.

    ``index`` is the job's position in the campaign's canonical sequential
    order — results are folded by ascending index, which is what makes the
    farmed aggregate equal the sequential one.  ``params`` must stay
    transport-safe (primitives only).  ``preemptible`` marks jobs the
    coordinator may checkpoint-preempt to rebalance long tails (see
    :mod:`repro.farm.preempt`).
    """

    index: int
    kind: str
    params: dict = field(default_factory=dict)
    preemptible: bool = False

    def describe(self) -> str:
        return f"job#{self.index} {self.kind}"


def partition_jobs(n_jobs: int, n_workers: int) -> list[list[int]]:
    """Deal job indices ``0..n_jobs-1`` into ``n_workers`` decks, round-robin.

    The decks are **disjoint** (no index appears twice), **complete**
    (every index appears), **deterministic** (a pure function of the two
    counts), and balanced to within one job.  Worker ``w`` owns deck ``w``;
    an idle worker steals from the richest remaining deck (see
    :mod:`repro.farm.scheduler`).
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    if n_jobs < 0:
        raise ValueError(f"n_jobs must be >= 0, got {n_jobs}")
    decks: list[list[int]] = [[] for _ in range(n_workers)]
    for index in range(n_jobs):
        decks[index % n_workers].append(index)
    return decks
