"""The farm coordinator: dispatch, crash retry, preemption, and collection.

:func:`run_farm` drives a :class:`~repro.farm.scheduler.WorkStealingScheduler`
over a transport (:mod:`repro.farm.transport`): it keeps every worker busy,
collects per-job payloads as they stream in, and handles the two failure
modes —

* **worker crash** — detected by process liveness while a job is in
  flight.  The job is requeued at the front of its owner deck (retries are
  on the critical path) with an ``attempt`` counter in its params, the
  worker is respawned under the same id, and after ``max_retries``
  crash-retries of the same job the farm raises
  :class:`~repro.farm.transport.FarmError`.  If the job had streamed a
  checkpoint envelope, the retry resumes from it instead of from scratch.
* **preemption** — requested through a :class:`FarmController`.  A
  preemptible job checkpoints at its next quiescent boundary
  (:mod:`repro.farm.preempt`) and comes back as a resume envelope; the
  coordinator requeues the job with the envelope attached, and whichever
  worker picks it up finishes the run bit-identically.

Determinism contract: the coordinator never interprets payloads — callers
fold ``FarmResult.results`` in job-index order with the same pure fold the
sequential path uses, so scheduling, stealing, retries, and preemptions
are all invisible in the aggregated report.

Farm lifecycle events (``farm.*`` in :class:`repro.obs.events.EventKind`)
are emitted on the caller's tracer with host-relative timestamps and the
worker id as the node, so ``repro trace``-style timelines cover parallel
campaigns.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.farm.jobs import FarmJob
from repro.farm.scheduler import WorkStealingScheduler
from repro.farm.transport import (
    FarmError,
    InlineTransport,
    LocalProcessTransport,
)
from repro.farm.worker import worker_main
from repro.obs.events import EventKind


class FarmController:
    """Caller-side preemption valve.

    ``controller.preempt(job_index)`` asks the farm to checkpoint-preempt
    that job the next time it is (or already is) running; the request is
    consumed by the first preemption or completion of the job.
    """

    def __init__(self) -> None:
        self.requests: set[int] = set()

    def preempt(self, job_index: int) -> None:
        self.requests.add(job_index)


@dataclass
class FarmResult:
    """What one farm run produced, plus its scheduling footprint."""

    results: dict[int, object] = field(default_factory=dict)
    workers: int = 0
    steals: int = 0
    retries: int = 0
    preemptions: int = 0
    worker_crashes: int = 0


def run_farm(
    jobs: list[FarmJob],
    n_workers: int = 2,
    *,
    tracer=None,
    progress=None,
    max_retries: int = 2,
    transport=None,
    controller: FarmController | None = None,
    poll_interval: float = 0.2,
) -> FarmResult:
    """Execute ``jobs`` on a worker pool; returns every job's payload.

    ``n_workers`` is clamped to the job count; one worker uses the inline
    (same-process) transport.  ``transport`` overrides the backend — the
    multi-host seam.  ``tracer`` receives ``farm.*`` lifecycle events;
    ``progress`` gets a coarse completion line every ~10% of jobs.
    """
    jobs = list(jobs)
    result = FarmResult()
    if not jobs:
        return result
    if transport is None:
        n = max(1, min(n_workers, len(jobs)))
        transport = LocalProcessTransport(n) if n > 1 else InlineTransport()
    n_workers = transport.n_workers
    result.workers = n_workers
    scheduler = WorkStealingScheduler(jobs, n_workers)
    total = len(jobs)
    report_every = max(1, total // 10)
    t0 = time.perf_counter()

    def emit(kind: str, node: int | None = None, **attrs) -> None:
        if tracer is not None and tracer.enabled:
            tracer.emit(kind, time.perf_counter() - t0, node=node, **attrs)

    idle: set[int] = set(range(n_workers))
    attempts: dict[int, int] = {}
    envelopes: dict[int, dict] = {}  # job index -> last streamed checkpoint
    pending_preempt: dict[int, int] = {}  # worker -> job it should preempt

    def dispatch() -> None:
        for wid in sorted(idle):
            assignment = scheduler.acquire(wid)
            if assignment is None:
                continue
            idle.discard(wid)
            job = assignment.job
            wants_preempt = (controller is not None and job.preemptible
                             and job.index in controller.requests)
            if wants_preempt:
                # arm the flag before the job starts so even a synchronous
                # (inline) worker observes it at its first checkpoint
                pending_preempt[wid] = job.index
                transport.preempt(wid)
            transport.send(wid, ("job", job))
            emit(EventKind.FARM_DISPATCH, node=wid, job=job.index,
                 job_kind=job.kind)
            if assignment.stolen_from is not None:
                result.steals += 1
                emit(EventKind.FARM_STEAL, node=wid, job=job.index,
                     victim=assignment.stolen_from)

    def clear_preempt_state(wid: int, job_index: int) -> None:
        if controller is not None:
            controller.requests.discard(job_index)
        if pending_preempt.get(wid) == job_index:
            pending_preempt.pop(wid)
            transport.clear_preempt(wid)

    def requeue(job: FarmJob, wid: int, *, resume: dict | None,
                crashed: bool) -> None:
        params = dict(job.params)
        if crashed:
            attempts[job.index] = attempts.get(job.index, 0) + 1
            if attempts[job.index] > max_retries:
                raise FarmError(
                    f"{job.describe()} lost to {attempts[job.index]} worker "
                    f"crash(es); retry budget is {max_retries}"
                )
            params["attempt"] = attempts[job.index]
            result.retries += 1
            emit(EventKind.FARM_RETRY, node=wid, job=job.index,
                 attempt=attempts[job.index])
        if resume is not None:
            params["resume"] = resume
        else:
            params.pop("resume", None)
        fresh = FarmJob(index=job.index, kind=job.kind, params=params,
                        preemptible=job.preemptible)
        scheduler.replace(fresh)
        scheduler.requeue(fresh)

    def check_crashes() -> None:
        for wid in range(n_workers):
            if transport.alive(wid):
                continue
            result.worker_crashes += 1
            emit(EventKind.FARM_WORKER_DOWN, node=wid, crashed=True)
            for job in scheduler.running_on(wid):
                requeue(job, wid, resume=envelopes.get(job.index),
                        crashed=True)
            pending_preempt.pop(wid, None)
            transport.respawn(wid)
            emit(EventKind.FARM_WORKER_UP, node=wid, respawned=True)
            idle.add(wid)
        dispatch()

    transport.start(worker_main)
    for wid in range(n_workers):
        emit(EventKind.FARM_WORKER_UP, node=wid)
    try:
        dispatch()
        while scheduler.outstanding > 0:
            message = transport.recv(timeout=poll_interval)
            if message is None:
                check_crashes()
                continue
            kind, wid, job_index, payload = message
            if kind == "result":
                scheduler.complete(job_index)
                result.results[job_index] = payload
                envelopes.pop(job_index, None)
                clear_preempt_state(wid, job_index)
                emit(EventKind.FARM_DONE, node=wid, job=job_index)
                if progress and len(result.results) % report_every == 0:
                    progress(f"[farm] {len(result.results)}/{total} job(s) "
                             f"done on {n_workers} worker(s)")
                idle.add(wid)
                dispatch()
            elif kind == "preempted":
                result.preemptions += 1
                clear_preempt_state(wid, job_index)
                emit(EventKind.FARM_PREEMPT, node=wid, job=job_index)
                job = scheduler.job(job_index)
                scheduler.complete(job_index)  # off the worker; requeue next
                requeue(job, wid, resume=payload, crashed=False)
                idle.add(wid)
                dispatch()
            elif kind == "progress":
                envelopes[job_index] = payload
            elif kind == "error":
                raise FarmError(
                    f"job#{job_index} failed on worker {wid}: {payload}"
                )
            # "up"/"down" worker messages are informational; the
            # coordinator's own lifecycle events are authoritative
    finally:
        transport.stop()
        for wid in range(n_workers):
            emit(EventKind.FARM_WORKER_DOWN, node=wid)
    return result
