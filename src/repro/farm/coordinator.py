"""The farm coordinator: dispatch, crash retry, preemption, and collection.

:func:`run_farm` drives a :class:`~repro.farm.scheduler.WorkStealingScheduler`
over a transport (:mod:`repro.farm.transport`): it keeps every worker busy,
collects per-job payloads as they stream in, and handles the failure
modes —

* **worker crash** — detected by liveness (process check locally, the
  heartbeat watchdog over sockets) on a wall-clock cadence *independent
  of message arrival*, so a dead worker's jobs are reclaimed even while
  other workers keep the message stream busy.  The lost jobs are requeued
  at the front of their owner decks (retries are on the critical path)
  with an ``attempt`` counter in their params; after ``max_retries``
  crash-retries of the same job the farm raises
  :class:`~repro.farm.transport.FarmError`.  If the job had streamed a
  checkpoint envelope, the retry resumes from it instead of from scratch
  — on whatever worker picks it up, local or remote (checkpoint
  migration).  A transport that can conjure replacement processes
  (``can_respawn``, the local pool) gets the worker respawned under the
  same id; one that cannot (sockets — the coordinator can't start
  processes on other machines) has the slot freed for a reconnecting
  agent and the worker id parked until one arrives.
* **expired leases** — a remote transport may report jobs whose leases
  lapsed (``reclaim_expired``) even though the worker still looks alive:
  the dispatch frame was lost, or the agent's heartbeats stopped naming
  the job.  Reclaimed jobs are requeued exactly like crash losses.
* **preemption** — requested through a :class:`FarmController`.  A
  preemptible job checkpoints at its next quiescent boundary
  (:mod:`repro.farm.preempt`) and comes back as a resume envelope; the
  coordinator requeues the job with the envelope attached, and whichever
  worker picks it up finishes the run bit-identically.
* **total remote loss** — when a non-respawnable transport has *every*
  worker down for longer than its ``degrade_after``, the farm degrades
  gracefully: the remote transport is shut down and the remaining jobs
  (with their streamed envelopes — checkpoint migration again) finish on
  a local transport with ``fallback_local`` workers.  The report is
  unchanged; ``FarmResult.degraded`` records that it happened.

Stale deliveries ("ghosts" — a result for a job the coordinator already
reclaimed and handed to someone else) are fenced twice: remote transports
drop messages whose lease/incarnation stamps don't match
(:mod:`repro.farm.remote`), and the coordinator itself ignores any
job-scoped message from a worker that is not the job's recorded runner.
Pure jobs make surviving duplicates harmless; the fences make them
invisible.

Determinism contract: the coordinator never interprets payloads — callers
fold ``FarmResult.results`` in job-index order with the same pure fold the
sequential path uses, so scheduling, stealing, retries, reclaims, and
preemptions are all invisible in the aggregated report.

Farm lifecycle events (``farm.*`` in :class:`repro.obs.events.EventKind`)
are emitted on the caller's tracer with host-relative timestamps and the
worker id as the node, so ``repro trace``-style timelines cover parallel
campaigns.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.farm.jobs import FarmJob
from repro.farm.scheduler import WorkStealingScheduler
from repro.farm.transport import (
    FarmError,
    InlineTransport,
    LocalProcessTransport,
)
from repro.farm.worker import worker_main
from repro.obs.events import EventKind


class FarmController:
    """Caller-side preemption valve.

    ``controller.preempt(job_index)`` asks the farm to checkpoint-preempt
    that job the next time it is (or already is) running; the request is
    consumed by the first preemption or completion of the job.
    """

    def __init__(self) -> None:
        self.requests: set[int] = set()

    def preempt(self, job_index: int) -> None:
        self.requests.add(job_index)


@dataclass
class FarmResult:
    """What one farm run produced, plus its scheduling footprint."""

    results: dict[int, object] = field(default_factory=dict)
    workers: int = 0
    steals: int = 0
    retries: int = 0
    preemptions: int = 0
    worker_crashes: int = 0
    lease_reclaims: int = 0
    degraded: bool = False


class _DegradeToLocal(Exception):
    """Internal: every remote worker is lost; finish on a local pool."""


def run_farm(
    jobs: list[FarmJob],
    n_workers: int = 2,
    *,
    tracer=None,
    progress=None,
    max_retries: int = 2,
    transport=None,
    controller: FarmController | None = None,
    poll_interval: float = 0.2,
    liveness_interval: float = 0.5,
) -> FarmResult:
    """Execute ``jobs`` on a worker pool; returns every job's payload.

    ``n_workers`` is clamped to the job count; one worker uses the inline
    (same-process) transport.  ``transport`` overrides the backend — the
    multi-host seam.  ``tracer`` receives ``farm.*`` lifecycle events;
    ``progress`` gets a coarse completion line every ~10% of jobs.
    ``liveness_interval`` is the wall-clock cadence of crash/lease
    sweeps, independent of message arrival.
    """
    jobs = list(jobs)
    result = FarmResult()
    if not jobs:
        return result
    if transport is None:
        n = max(1, min(n_workers, len(jobs)))
        transport = LocalProcessTransport(n) if n > 1 else InlineTransport()
    n_workers = transport.n_workers
    # a chaotic transport turns lease reclaims into crash-retries by
    # design; honor its larger suggested budget
    max_retries = max(max_retries,
                      getattr(transport, "suggested_max_retries", 0))
    can_respawn = getattr(transport, "can_respawn", True)
    result.workers = n_workers
    scheduler = WorkStealingScheduler(jobs, n_workers)
    total = len(jobs)
    report_every = max(1, total // 10)
    t0 = time.perf_counter()

    def emit(kind: str, node: int | None = None, **attrs) -> None:
        if tracer is not None and tracer.enabled:
            tracer.emit(kind, time.perf_counter() - t0, node=node, **attrs)

    idle: set[int] = set(range(n_workers))
    down: set[int] = set()  # non-respawnable slots awaiting a (re)connect
    all_down_since: float | None = None
    attempts: dict[int, int] = {}
    envelopes: dict[int, dict] = {}  # job index -> last streamed checkpoint
    pending_preempt: dict[int, int] = {}  # worker -> job it should preempt

    def dispatch() -> None:
        for wid in sorted(idle):
            assignment = scheduler.acquire(wid)
            if assignment is None:
                continue
            idle.discard(wid)
            job = assignment.job
            wants_preempt = (controller is not None and job.preemptible
                             and job.index in controller.requests)
            if wants_preempt:
                # arm the flag before the job starts so even a synchronous
                # (inline) worker observes it at its first checkpoint
                pending_preempt[wid] = job.index
                transport.preempt(wid)
            transport.send(wid, ("job", job))
            emit(EventKind.FARM_DISPATCH, node=wid, job=job.index,
                 job_kind=job.kind)
            if assignment.stolen_from is not None:
                result.steals += 1
                emit(EventKind.FARM_STEAL, node=wid, job=job.index,
                     victim=assignment.stolen_from)

    def clear_preempt_state(wid: int, job_index: int) -> None:
        if controller is not None:
            controller.requests.discard(job_index)
        if pending_preempt.get(wid) == job_index:
            pending_preempt.pop(wid)
            transport.clear_preempt(wid)

    def requeue(job: FarmJob, wid: int, *, resume: dict | None,
                crashed: bool) -> None:
        params = dict(job.params)
        if crashed:
            attempts[job.index] = attempts.get(job.index, 0) + 1
            if attempts[job.index] > max_retries:
                raise FarmError(
                    f"{job.describe()} lost to {attempts[job.index]} worker "
                    f"crash(es); retry budget is {max_retries}"
                )
            params["attempt"] = attempts[job.index]
            result.retries += 1
            emit(EventKind.FARM_RETRY, node=wid, job=job.index,
                 attempt=attempts[job.index])
        if resume is not None:
            params["resume"] = resume
        else:
            params.pop("resume", None)
        fresh = FarmJob(index=job.index, kind=job.kind, params=params,
                        preemptible=job.preemptible)
        scheduler.replace(fresh)
        scheduler.requeue(fresh)

    def check_liveness() -> None:
        nonlocal all_down_since
        # expired leases first: their jobs leave in_flight here, so the
        # per-worker sweep below can never requeue the same job twice
        if hasattr(transport, "reclaim_expired"):
            for wid, job_index in transport.reclaim_expired():
                if scheduler.in_flight.get(job_index) != wid:
                    continue  # already completed or reclaimed elsewhere
                result.lease_reclaims += 1
                emit(EventKind.FARM_LEASE_EXPIRE, node=wid, job=job_index)
                requeue(scheduler.job(job_index), wid,
                        resume=envelopes.get(job_index), crashed=True)
                # the worker owes us nothing anymore: without this it
                # would sit "busy" forever after a lost dispatch, and
                # enough lost dispatches would idle out the whole farm
                if (wid not in down and transport.alive(wid)
                        and not scheduler.running_on(wid)):
                    idle.add(wid)
        for wid in range(n_workers):
            if transport.alive(wid):
                if wid in down:
                    down.discard(wid)
                    emit(EventKind.FARM_WORKER_UP, node=wid, rejoined=True)
                    idle.add(wid)
                continue
            if wid in down:
                continue  # loss already handled; slot awaits an agent
            result.worker_crashes += 1
            emit(EventKind.FARM_WORKER_DOWN, node=wid, crashed=True)
            for job in scheduler.running_on(wid):
                requeue(job, wid, resume=envelopes.get(job.index),
                        crashed=True)
            pending_preempt.pop(wid, None)
            idle.discard(wid)
            # both branches free the slot; only a local pool refills it
            transport.respawn(wid)
            if can_respawn:
                emit(EventKind.FARM_WORKER_UP, node=wid, respawned=True)
                idle.add(wid)
            else:
                down.add(wid)
        if down and len(down) == n_workers:
            if all_down_since is None:
                all_down_since = time.perf_counter()
            elif (time.perf_counter() - all_down_since
                    > getattr(transport, "degrade_after", 10.0)):
                raise _DegradeToLocal()
        else:
            all_down_since = None
        dispatch()

    transport.start(worker_main)
    for wid in range(n_workers):
        emit(EventKind.FARM_WORKER_UP, node=wid)
    try:
        dispatch()
        last_liveness = time.perf_counter()
        while scheduler.outstanding > 0:
            message = transport.recv(timeout=poll_interval)
            now = time.perf_counter()
            if message is None or now - last_liveness >= liveness_interval:
                last_liveness = now
                check_liveness()
            if message is None:
                continue
            kind, wid, job_index, payload = message
            if kind in ("result", "preempted", "progress", "error"):
                if scheduler.in_flight.get(job_index) != wid:
                    continue  # ghost: the job was reclaimed from this worker
            if kind == "result":
                scheduler.complete(job_index)
                result.results[job_index] = payload
                envelopes.pop(job_index, None)
                clear_preempt_state(wid, job_index)
                emit(EventKind.FARM_DONE, node=wid, job=job_index)
                if progress and len(result.results) % report_every == 0:
                    progress(f"[farm] {len(result.results)}/{total} job(s) "
                             f"done on {n_workers} worker(s)")
                idle.add(wid)
                dispatch()
            elif kind == "preempted":
                result.preemptions += 1
                clear_preempt_state(wid, job_index)
                emit(EventKind.FARM_PREEMPT, node=wid, job=job_index)
                job = scheduler.job(job_index)
                scheduler.complete(job_index)  # off the worker; requeue next
                requeue(job, wid, resume=payload, crashed=False)
                idle.add(wid)
                dispatch()
            elif kind == "progress":
                envelopes[job_index] = payload
            elif kind == "error":
                raise FarmError(
                    f"job#{job_index} failed on worker {wid}: {payload}"
                )
            # "up"/"down" worker messages are informational; the
            # coordinator's own lifecycle events are authoritative
    except _DegradeToLocal:
        # every outstanding job: requeue popped the lost workers' jobs out
        # of in_flight back into the decks, but guard both sets anyway
        indices = set(scheduler.in_flight)
        while True:  # drain the decks (acquire never blocks)
            assignment = scheduler.acquire(0)
            if assignment is None:
                break
            indices.add(assignment.job.index)
        remaining = [_with_resume(scheduler.job(i), envelopes.get(i))
                     for i in sorted(indices)]
        transport.stop()
        fallback = getattr(transport, "fallback_local", 1)
        if fallback < 1:
            raise FarmError(
                f"all {n_workers} remote worker(s) lost and local fallback "
                f"is disabled; {len(remaining)} job(s) unfinished"
            )
        emit(EventKind.FARM_DEGRADE, remaining=len(remaining),
             fallback_workers=fallback)
        if progress:
            progress(f"[farm] all {n_workers} remote worker(s) lost; "
                     f"degrading to {fallback} local worker(s) for "
                     f"{len(remaining)} remaining job(s)")
        sub = run_farm(remaining, fallback, tracer=tracer,
                       progress=progress, max_retries=max_retries,
                       controller=controller, poll_interval=poll_interval,
                       liveness_interval=liveness_interval)
        result.results.update(sub.results)
        result.steals += sub.steals
        result.retries += sub.retries
        result.preemptions += sub.preemptions
        result.worker_crashes += sub.worker_crashes
        result.degraded = True
        return result
    finally:
        transport.stop()
        for wid in range(n_workers):
            emit(EventKind.FARM_WORKER_DOWN, node=wid)
    return result


def _with_resume(job: FarmJob, envelope: dict | None) -> FarmJob:
    """The job record a degraded farm hands to the local pool, resuming
    from the last streamed checkpoint when one exists (migration)."""
    if envelope is None:
        return job
    params = dict(job.params)
    params["resume"] = envelope
    return FarmJob(index=job.index, kind=job.kind, params=params,
                   preemptible=job.preemptible)
