"""Chaos wrapper for farm transports: seeded drop/dup/delay/disconnect.

:class:`ChaosTransport` wraps a :class:`~repro.farm.remote.SocketTransport`
and perturbs the farm's *own* communication the way :mod:`repro.faults`
perturbs the simulated machine's — same declarative knobs
(:class:`~repro.faults.plan.FaultPlan` rates, one seeded RNG drawn in
deterministic dispatch order), applied one layer down:

* ``drop_rate`` — a job dispatch frame vanishes.  The wrapper tells the
  inner transport the dispatch was lost (``note_lost_dispatch``), so the
  job's lease is born expired and the coordinator's liveness sweep
  requeues it — the no-deadlock guarantee.
* ``dup_rate`` — a job dispatch frame is delivered twice.  The agent runs
  the job twice; the second result arrives after the lease completed and
  is fenced as a ghost.  Pure jobs make the duplicate invisible.
* ``delay_rate`` — a job dispatch frame arrives late (a timer re-issues
  it after up to ``delay_cap`` seconds).
* ``crash_rate`` — the worker's TCP link is severed mid-campaign; the
  agent reconnects with a fresh incarnation and the coordinator reclaims
  whatever leases lapse in the meantime.

None of this may change the campaign's answer: the differential suite and
the socket-farm CI job compare chaos-farmed reports byte-for-byte against
``--jobs 1``.  Chaos draws are seeded, so a chaos run is reproducible —
but the *reports* must be identical across all seeds anyway.
"""

from __future__ import annotations

import random
import threading

from repro.faults.plan import FaultPlan
from repro.farm.transport import FarmError
from repro.obs.events import EventKind

#: default chaos mix for the CLI's --chaos-seed knob: lively but survivable
DEFAULT_CHAOS_PLAN = FaultPlan(
    name="farm-chaos", drop_rate=0.08, dup_rate=0.08, delay_rate=0.15,
    crash_rate=0.04,
)


class ChaosTransport:
    """Inject seeded transport faults between the coordinator and an
    inner transport, without ever changing the campaign's report."""

    can_respawn = False

    def __init__(self, inner, plan: FaultPlan = DEFAULT_CHAOS_PLAN, *,
                 seed: int = 0, delay_cap: float = 0.5, tracer=None):
        if plan.drop_rate > 0 and not hasattr(inner, "note_lost_dispatch"):
            raise FarmError(
                f"{type(inner).__name__} cannot account for lost "
                f"dispatches; chaos drop injection would deadlock the farm"
            )
        if plan.crash_rate > 0 and not hasattr(inner, "force_disconnect"):
            raise FarmError(
                f"{type(inner).__name__} cannot sever links; chaos "
                f"disconnect injection is unsupported on it"
            )
        self.inner = inner
        self.plan = plan
        self.delay_cap = delay_cap
        self._rng = random.Random(seed)
        self._tracer = tracer if tracer is not None else getattr(
            inner, "_tracer", None)
        self.drops = 0
        self.dups = 0
        self.delays = 0
        self.disconnects = 0
        #: chaos-induced lease reclaims look like crashes to the
        #: coordinator; give it budget to ride them out
        self.suggested_max_retries = 12

    @property
    def n_workers(self) -> int:
        return self.inner.n_workers

    def _emit(self, effect: str, wid: int, job_index: int) -> None:
        emit = getattr(self.inner, "_emit", None)
        if emit is not None:
            emit(EventKind.FARM_CHAOS, node=wid, effect=effect,
                 job=job_index)

    # -- the chaos draw --------------------------------------------------------

    def send(self, wid: int, message: tuple) -> None:
        if message[0] != "job":
            self.inner.send(wid, message)  # control frames stay reliable
            return
        job = message[1]
        p = self.plan
        roll = self._rng.random()
        delay_draw = self._rng.uniform(0.05, self.delay_cap)  # always drawn
        if roll < p.crash_rate:
            self.disconnects += 1
            self._emit("disconnect", wid, job.index)
            self.inner.force_disconnect(wid)
            self.inner.send(wid, message)  # races the teardown: lost or not,
            return                         # the lease machinery settles it
        roll -= p.crash_rate
        if roll < p.drop_rate:
            self.drops += 1
            self._emit("drop", wid, job.index)
            self.inner.note_lost_dispatch(wid, job.index)
            return
        roll -= p.drop_rate
        if roll < p.dup_rate:
            self.dups += 1
            self._emit("dup", wid, job.index)
            self.inner.send(wid, message)
            self.inner.send(wid, message)
            return
        roll -= p.dup_rate
        if roll < p.delay_rate:
            self.delays += 1
            self._emit("delay", wid, job.index)
            timer = threading.Timer(
                delay_draw, self.inner.send, args=(wid, message))
            timer.daemon = True
            timer.start()
            return
        self.inner.send(wid, message)

    # -- everything else passes through ----------------------------------------

    def start(self, worker_main) -> None:
        self.inner.start(worker_main)

    def stop(self) -> None:
        self.inner.stop()

    def recv(self, timeout: float = 0.2):
        return self.inner.recv(timeout=timeout)

    def alive(self, wid: int) -> bool:
        return self.inner.alive(wid)

    def respawn(self, wid: int) -> None:
        self.inner.respawn(wid)

    def preempt(self, wid: int) -> None:
        self.inner.preempt(wid)

    def clear_preempt(self, wid: int) -> None:
        self.inner.clear_preempt(wid)

    def reclaim_expired(self):
        return self.inner.reclaim_expired()

    def __getattr__(self, name):
        return getattr(self.inner, name)
