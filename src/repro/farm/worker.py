"""Farm worker: the process entry point and the job dispatch table.

A worker is a loop over its job queue: rebuild the heavy state each
transport-safe :class:`~repro.farm.jobs.FarmJob` describes, execute it
through the dispatch table in :func:`execute_job`, and put the JSON-safe
result payload on the shared result queue.  Domain modules are imported
lazily inside the dispatch arms so importing this module (which the
transports do) never drags in the whole simulator.

Workers run under the fork start method where available, so they inherit
the parent's module state — including test monkeypatches (a sabotaged
protocol registered in ``repro.core.factory.PROTOCOLS`` is sabotaged in
every worker too) and the :data:`_before_job_hook` below, which the
crash-injection tests use to kill a worker at a precise point.
"""

from __future__ import annotations

from repro.farm.jobs import FarmJob
from repro.farm.transport import FarmError

#: test hook: called with the job before executing it (fork-inherited, so
#: tests can monkeypatch it in the parent and have workers observe it);
#: crash tests install ``os._exit`` here to simulate a dying worker
_before_job_hook = None


class WorkerControl:
    """Per-job preemption/streaming context inside a process worker."""

    def __init__(self, wid: int, job: FarmJob, result_q, preempt_flag):
        self._wid = wid
        self._job = job
        self._result_q = result_q
        self._preempt_flag = preempt_flag

    def should_preempt(self) -> bool:
        return self._preempt_flag.is_set()

    def stream(self, envelope) -> None:
        """Ship a checkpoint envelope upstream (crash-resume insurance)."""
        self._result_q.put(("progress", self._wid, self._job.index, envelope))


def execute_job(job: FarmJob, control=None):
    """Run one job by kind; returns its JSON-safe result payload.

    Preemptible jobs may instead return ``("preempted", envelope)`` when
    ``control`` reports a preemption request at a checkpointable boundary.
    """
    if _before_job_hook is not None:
        _before_job_hook(job)
    if job.kind == "fuzz-seed":
        from repro.verify.fuzz import fuzz_seed_job

        return fuzz_seed_job(job.params)
    if job.kind == "fault-cell":
        from repro.faults.campaign import run_fault_cell

        return run_fault_cell(job.params,
                              control=control if job.preemptible else None)
    if job.kind == "fault-probe":
        from repro.faults.campaign import run_fault_probe

        return run_fault_probe(job.params)
    if job.kind == "bench-case":
        from repro.bench.perf import bench_case_job

        return bench_case_job(job.params)
    if job.kind == "bench-version":
        from repro.bench.harness import version_job

        return version_job(job.params)
    raise FarmError(f"unknown farm job kind {job.kind!r}")


def worker_main(wid: int, job_q, result_q, preempt_flag) -> None:
    """Process entry point: drain the job queue until a stop message."""
    result_q.put(("up", wid, None, None))
    while True:
        message = job_q.get()
        if message[0] == "stop":
            break
        job: FarmJob = message[1]
        control = WorkerControl(wid, job, result_q, preempt_flag)
        try:
            payload = execute_job(job, control)
        except Exception as exc:
            # a job-level exception is a bug, not a crash: report it (with
            # the full traceback — a farmed failure must be debuggable
            # without a sequential rerun) and stay alive so the
            # coordinator can fail fast with the message
            import traceback

            result_q.put(("error", wid, job.index,
                          f"{type(exc).__name__}: {exc}\n"
                          f"{traceback.format_exc().rstrip()}"))
            continue
        if isinstance(payload, tuple) and payload and payload[0] == "preempted":
            result_q.put(("preempted", wid, job.index, payload[1]))
        else:
            result_q.put(("result", wid, job.index, payload))
    result_q.put(("down", wid, None, None))
