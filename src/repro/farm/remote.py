"""The multi-host farm backend: a TCP socket transport plus worker agent.

:class:`SocketTransport` implements the farm's transport interface
(``start/send/recv/stop/alive`` plus preemption) over TCP, so
:func:`repro.farm.coordinator.run_farm` drives remote hosts exactly like
local processes.  The matching host-side entry point is
:func:`worker_agent` (``repro farm-worker --connect HOST:PORT``), which
executes jobs through the very same dispatch table
(:func:`repro.farm.worker.execute_job`) the local transports use — so
farmed reports stay byte-identical to ``--jobs 1`` no matter where the
jobs physically ran.

Crossing a real network replaces the local transports' ground truth
(``Process.is_alive``) with *evidence*, and the hardening reflects that:

* **frames** — every message is a length-prefixed, checksummed,
  seq/ack-stamped JSON frame (:mod:`repro.farm.frames`); a damaged or
  out-of-sequence frame resets the link rather than guessing.
* **heartbeats + watchdog** — agents send a heartbeat (listing the job
  indices they are running) every ``heartbeat`` seconds, the coordinator
  heartbeats back, and either side declares the link dead after
  ``watchdog`` seconds of silence.  ``alive(wid)`` is that verdict.
* **leases** — each dispatched job holds a lease that only heartbeats
  naming the job renew.  A silent host — or a host whose heartbeats stop
  naming a job it was given — forfeits the lease, and the coordinator
  requeues the job exactly like a local worker crash (resuming from the
  job's last streamed checkpoint envelope when one exists: checkpoint
  *migration*, since any other host can finish the run bit-identically).
* **incarnations** — a reconnecting agent presents a strictly larger
  session incarnation (mirroring the in-simulator incarnation fence of
  :mod:`repro.recovery.crash`).  Results are stamped with the
  incarnation under which their job was received; the ledger drops
  stamps that do not match the current session *and* the job's lease, so
  a rejoining host can never deliver ghost results.
* **reconnect** — agents retry with capped exponential backoff and give
  up only after ``connect_timeout`` seconds without a coordinator.

All lease/incarnation/liveness bookkeeping lives in :class:`HostLedger`,
a pure state machine (no sockets, no clocks — every method takes ``now``)
so the failure semantics are directly property-testable
(``tests/farm/test_lease_machine.py``).
"""

from __future__ import annotations

import itertools
import os
import queue
import socket
import threading
import time
from dataclasses import dataclass, field

from repro.farm.frames import (
    FRAME_FORMAT_VERSION,
    FrameError,
    FrameStream,
    LinkClosed,
)
from repro.farm.jobs import FarmJob
from repro.farm.transport import FarmError
from repro.obs.events import EventKind

#: agent -> coordinator (and back) heartbeat period, seconds
HEARTBEAT_SECONDS = 0.5
#: silence longer than this marks the peer dead
WATCHDOG_SECONDS = 3.0
#: a dispatched job must be re-confirmed by a heartbeat this often
LEASE_SECONDS = 6.0


class AgentKilled(BaseException):
    """Test hook: raised inside a job to simulate the agent dying silently.

    A ``BaseException`` so the agent's job-level ``except Exception``
    (which reports job bugs as error frames) cannot swallow it — the
    agent drops its connection without a word, exactly like a kill -9.
    """


# -- the lease / incarnation ledger (pure state machine) -----------------------


@dataclass
class _Session:
    """One host's current (or last known) attachment to a worker slot."""

    host: str
    inc: int
    last_seen: float
    connected: bool = True
    running: frozenset = frozenset()


@dataclass
class _Lease:
    """One in-flight job's claim: who may deliver it, and until when."""

    slot: int
    inc: int
    deadline: float


class HostLedger:
    """Who is alive, who owns which job, and which results are genuine.

    Pure bookkeeping — every method takes ``now`` explicitly and touches
    no I/O — shared by :class:`SocketTransport` (driven by real time and
    real frames) and the Hypothesis suite (driven by synthetic traces).
    """

    def __init__(self, n_slots: int, *, watchdog: float = WATCHDOG_SECONDS,
                 lease: float = LEASE_SECONDS):
        self.n_slots = n_slots
        self.watchdog = watchdog
        self.lease = lease
        self.sessions: dict[int, _Session] = {}
        self.leases: dict[int, _Lease] = {}  # job index -> lease
        self.ghosts = 0  # results fenced for a stale incarnation / lost lease

    # -- sessions --------------------------------------------------------------

    def claim_slot(self, host: str, inc: int, now: float) -> int | None:
        """Attach ``host`` (session incarnation ``inc``) to a worker slot.

        A returning host reclaims its previous slot, but only with a
        strictly larger incarnation — a stale duplicate session is
        refused (None).  Its old leases are expired on the spot so the
        coordinator reclaims the jobs immediately instead of waiting out
        the lease clock.  New hosts take the lowest free slot, then the
        lowest watchdog-dead slot; a full, healthy farm refuses extras.
        """
        for slot, session in sorted(self.sessions.items()):
            if session.host == host:
                if inc <= session.inc:
                    return None
                self._expire_slot_leases(slot, now)
                self.sessions[slot] = _Session(host, inc, now)
                return slot
        free = [s for s in range(self.n_slots) if s not in self.sessions]
        if not free:
            free = [s for s in range(self.n_slots)
                    if not self.alive(s, now)]
            if not free:
                return None
            self._expire_slot_leases(free[0], now)
        slot = free[0]
        self.sessions[slot] = _Session(host, inc, now)
        return slot

    def disconnect(self, slot: int, now: float) -> None:
        """The slot's connection dropped; leases keep ticking toward expiry."""
        session = self.sessions.get(slot)
        if session is not None:
            session.connected = False

    def reset_slot(self, slot: int) -> None:
        """Forget the slot entirely (coordinator respawn: jobs already
        requeued, the slot now awaits a fresh or returning host)."""
        self.sessions.pop(slot, None)
        for job in [j for j, l in self.leases.items() if l.slot == slot]:
            del self.leases[job]

    def frame_seen(self, slot: int, now: float) -> None:
        session = self.sessions.get(slot)
        if session is not None:
            session.last_seen = now

    def heartbeat(self, slot: int, running, now: float) -> None:
        """A heartbeat renews exactly the leases it names (current inc only)."""
        session = self.sessions.get(slot)
        if session is None:
            return
        session.last_seen = now
        session.running = frozenset(int(j) for j in running)
        for job, lease in self.leases.items():
            if (lease.slot == slot and lease.inc == session.inc
                    and job in session.running):
                lease.deadline = now + self.lease

    # -- leases ----------------------------------------------------------------

    def dispatch(self, slot: int, job: int, now: float, *,
                 lost: bool = False) -> None:
        """Record a job send; ``lost`` means the frame never made it out,
        so the lease is born expired and the next sweep reclaims it."""
        session = self.sessions.get(slot)
        inc = session.inc if session is not None else -1
        deadline = now if (lost or session is None) else now + self.lease
        self.leases[job] = _Lease(slot, inc, deadline)

    def complete(self, job: int) -> None:
        self.leases.pop(job, None)

    def admit(self, slot: int, inc: int, job: int) -> bool:
        """May a message stamped (slot, inc) speak for ``job``?

        True only when the job's lease names this slot under this
        incarnation *and* that incarnation is still the slot's current
        session — anything else is a ghost and is counted as such.
        """
        lease = self.leases.get(job)
        session = self.sessions.get(slot)
        ok = (lease is not None and session is not None
              and lease.slot == slot and lease.inc == inc
              and session.inc == inc)
        if not ok:
            self.ghosts += 1
        return ok

    def expired_jobs(self, now: float) -> list[tuple[int, int]]:
        """Pop and return ``(slot, job)`` for every lease past its deadline."""
        out = sorted(
            (lease.slot, job) for job, lease in self.leases.items()
            if lease.deadline <= now
        )
        for _, job in out:
            del self.leases[job]
        return out

    def _expire_slot_leases(self, slot: int, now: float) -> None:
        for lease in self.leases.values():
            if lease.slot == slot:
                lease.deadline = now

    # -- liveness --------------------------------------------------------------

    def alive(self, slot: int, now: float) -> bool:
        session = self.sessions.get(slot)
        return (session is not None and session.connected
                and now - session.last_seen <= self.watchdog)

    def connected(self, now: float) -> int:
        return sum(1 for s in self.sessions if self.alive(s, now))


# -- the coordinator-side socket transport -------------------------------------


@dataclass
class _Link:
    """One live agent connection."""

    sock: socket.socket
    stream: FrameStream
    slot: int
    host: str
    inc: int


class SocketTransport:
    """The coordinator's side of the multi-host farm, over TCP.

    Implements the same interface as the local transports; remote hosts
    attach by running ``repro farm-worker --connect HOST:PORT``.  Unlike
    a local pool the transport cannot conjure replacement workers
    (``can_respawn`` is False): ``respawn(wid)`` merely frees the slot
    for a (re)connecting agent, and if every host stays lost for
    ``degrade_after`` seconds the coordinator falls back to a local
    transport with ``fallback_local`` workers (0 disables the fallback
    and fails the farm instead).
    """

    can_respawn = False

    def __init__(self, n_workers: int, bind: str = "127.0.0.1",
                 port: int = 0, *, heartbeat: float = HEARTBEAT_SECONDS,
                 watchdog: float = WATCHDOG_SECONDS,
                 lease: float = LEASE_SECONDS,
                 accept_timeout: float = 120.0,
                 fallback_local: int = 1,
                 degrade_after: float = 10.0,
                 tracer=None):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = n_workers
        self.heartbeat = heartbeat
        self.watchdog = watchdog
        self.accept_timeout = accept_timeout
        self.fallback_local = fallback_local
        self.degrade_after = degrade_after
        self._tracer = tracer
        self._t0 = time.monotonic()
        self._ledger = HostLedger(n_workers, watchdog=watchdog, lease=lease)
        self._lock = threading.RLock()
        self._links: dict[int, _Link] = {}
        self._inbox: queue.Queue = queue.Queue()
        self._stopping = False
        self._stopped = False
        self._server = socket.create_server((bind, port))
        self.host, self.port = self._server.getsockname()[:2]

    @property
    def ledger(self) -> HostLedger:
        return self._ledger

    def _emit(self, kind: str, node=None, **attrs) -> None:
        if self._tracer is not None and self._tracer.enabled:
            self._tracer.emit(kind, time.monotonic() - self._t0,
                              node=node, **attrs)

    # -- lifecycle -------------------------------------------------------------

    def start(self, worker_main) -> None:
        """Accept agents until all ``n_workers`` slots are filled.

        ``worker_main`` is ignored — remote agents run their own loop on
        their own hosts.  Raises :class:`FarmError` if the farm cannot
        assemble within ``accept_timeout`` seconds.
        """
        self._server.settimeout(0.2)
        threading.Thread(target=self._accept_loop, daemon=True,
                         name="repro-farm-accept").start()
        threading.Thread(target=self._heartbeat_loop, daemon=True,
                         name="repro-farm-hb").start()
        deadline = time.monotonic() + self.accept_timeout
        while True:
            with self._lock:
                up = self._ledger.connected(time.monotonic())
            if up >= self.n_workers:
                return
            if time.monotonic() > deadline:
                self.stop()
                raise FarmError(
                    f"only {up} of {self.n_workers} worker agent(s) "
                    f"connected to {self.host}:{self.port} within "
                    f"{self.accept_timeout:g}s"
                )
            time.sleep(0.05)

    def stop(self) -> None:
        if self._stopped:
            return
        self._stopping = True
        self._stopped = True
        with self._lock:
            links = list(self._links.values())
        for link in links:
            try:
                link.stream.send({"type": "stop"})
            except (OSError, FrameError):
                pass
        time.sleep(min(0.2, self.heartbeat))
        for link in links:
            link.stream.close()
        try:
            self._server.close()
        except OSError:  # pragma: no cover
            pass

    # -- accept / per-link reader threads --------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopping:
            try:
                sock, _addr = self._server.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            threading.Thread(target=self._serve, args=(sock,),
                             daemon=True).start()

    def _serve(self, sock: socket.socket) -> None:
        sock.settimeout(self.watchdog + 2 * self.heartbeat)
        stream = FrameStream(sock)
        try:
            hello = stream.recv()
        except (FrameError, OSError, TimeoutError):
            stream.close()
            return
        if (hello.get("type") != "hello"
                or hello.get("frames") != FRAME_FORMAT_VERSION):
            stream.close()
            return
        host, inc = str(hello["host"]), int(hello["inc"])
        now = time.monotonic()
        with self._lock:
            slot = self._ledger.claim_slot(host, inc, now)
            old = self._links.pop(slot, None) if slot is not None else None
        if slot is None:
            try:
                stream.send({"type": "unwelcome"})
            except (OSError, FrameError):
                pass
            stream.close()
            return
        if old is not None:
            old.stream.close()  # superseded session; its reader unwinds
        link = _Link(sock, stream, slot, host, inc)
        with self._lock:
            self._links[slot] = link
        try:
            stream.send({"type": "welcome", "slot": slot,
                         "heartbeat": self.heartbeat,
                         "watchdog": self.watchdog})
        except (OSError, FrameError):
            self._drop_link(link)
            return
        self._emit(EventKind.FARM_LINK_UP, node=slot, host=host, inc=inc)
        self._read_loop(link)

    def _read_loop(self, link: _Link) -> None:
        while not self._stopping:
            try:
                body = link.stream.recv()
            except (FrameError, OSError, TimeoutError):
                break
            now = time.monotonic()
            kind = body.get("type")
            with self._lock:
                if self._links.get(link.slot) is not link:
                    return  # superseded by a newer session; no cleanup
                self._ledger.frame_seen(link.slot, now)
                if kind == "hb":
                    self._ledger.heartbeat(
                        link.slot, body.get("running", ()), now)
                    continue
                if kind in ("result", "preempted", "progress", "error"):
                    job = int(body["job"])
                    inc = int(body.get("inc", -1))
                    if not self._ledger.admit(link.slot, inc, job):
                        self._emit(EventKind.FARM_LINK_GHOST, node=link.slot,
                                   job=job, inc=inc, msg=kind)
                        continue
                    if kind in ("result", "preempted"):
                        self._ledger.complete(job)
                    self._inbox.put((kind, link.slot, job,
                                     body.get("payload")))
                    continue
                if kind == "bye":
                    break
        self._drop_link(link)

    def _drop_link(self, link: _Link) -> None:
        with self._lock:
            if self._links.get(link.slot) is link:
                del self._links[link.slot]
                self._ledger.disconnect(link.slot, time.monotonic())
                self._emit(EventKind.FARM_LINK_DOWN, node=link.slot,
                           host=link.host, inc=link.inc)
        link.stream.close()

    def _heartbeat_loop(self) -> None:
        while not self._stopping:
            time.sleep(self.heartbeat)
            with self._lock:
                links = list(self._links.values())
            for link in links:
                try:
                    link.stream.send({"type": "hb"})
                except (OSError, FrameError):
                    link.stream.close()  # reader notices and unwinds

    # -- transport interface ---------------------------------------------------

    def send(self, wid: int, message: tuple) -> None:
        if message[0] == "stop":
            with self._lock:
                link = self._links.get(wid)
            if link is not None:
                try:
                    link.stream.send({"type": "stop"})
                except (OSError, FrameError):
                    pass
            return
        job: FarmJob = message[1]
        now = time.monotonic()
        with self._lock:
            link = self._links.get(wid)
            self._ledger.dispatch(wid, job.index, now, lost=link is None)
        if link is None:
            return
        try:
            link.stream.send({"type": "job", "job": {
                "index": job.index, "kind": job.kind,
                "params": job.params, "preemptible": job.preemptible,
            }})
        except (OSError, FrameError):
            with self._lock:
                self._ledger.dispatch(wid, job.index, time.monotonic(),
                                      lost=True)

    def note_lost_dispatch(self, wid: int, job_index: int) -> None:
        """Record a dispatch whose frame was dropped before the wire (the
        chaos wrapper): the lease is born expired, so the job requeues."""
        with self._lock:
            self._ledger.dispatch(wid, job_index, time.monotonic(),
                                  lost=True)

    def recv(self, timeout: float = 0.2):
        try:
            return self._inbox.get(timeout=timeout)
        except queue.Empty:
            return None

    def alive(self, wid: int) -> bool:
        with self._lock:
            return self._ledger.alive(wid, time.monotonic())

    def respawn(self, wid: int) -> None:
        """Free the slot for a returning/fresh agent (no process to spawn)."""
        with self._lock:
            link = self._links.pop(wid, None)
            self._ledger.reset_slot(wid)
        if link is not None:
            link.stream.close()

    def reclaim_expired(self) -> list[tuple[int, int]]:
        """(wid, job) pairs whose leases lapsed; each is reported once."""
        with self._lock:
            return self._ledger.expired_jobs(time.monotonic())

    def force_disconnect(self, wid: int) -> None:
        """Abruptly sever one agent's link (chaos injection)."""
        with self._lock:
            link = self._links.get(wid)
        if link is not None:
            link.stream.close()

    # -- preemption ------------------------------------------------------------

    def _control(self, wid: int, kind: str) -> None:
        with self._lock:
            link = self._links.get(wid)
        if link is not None:
            try:
                link.stream.send({"type": kind})
            except (OSError, FrameError):
                pass

    def preempt(self, wid: int) -> None:
        self._control(wid, "preempt")

    def clear_preempt(self, wid: int) -> None:
        self._control(wid, "clear-preempt")


# -- the host-side worker agent ------------------------------------------------

_agent_labels = itertools.count()

#: test hook: called with (job, envelope) after an agent streams a
#: checkpoint envelope upstream; lets tests kill an agent at the exact
#: moment crash-resume state exists (see AgentKilled)
_after_stream_hook = None

_STOP = object()


class _AgentControl:
    """Per-job preemption/streaming context inside a remote agent."""

    def __init__(self, agent: "_Agent", job: FarmJob, inc: int):
        self._agent = agent
        self._job = job
        self._inc = inc

    def should_preempt(self) -> bool:
        return self._agent.preempt_flag.is_set()

    def stream(self, envelope) -> None:
        self._agent.post("progress", self._job.index, self._inc, envelope)
        if _after_stream_hook is not None:
            _after_stream_hook(self._job, envelope)


class _Agent:
    """One worker agent: connect, execute, heartbeat, reconnect, repeat."""

    def __init__(self, host: str, port: int, *, heartbeat: float,
                 watchdog: float, backoff_cap: float,
                 connect_timeout: float, label: str | None,
                 progress=None, max_attempts: int | None = None):
        self.coord = (host, port)
        self.heartbeat = heartbeat
        self.watchdog = watchdog
        self.backoff_cap = backoff_cap
        self.connect_timeout = connect_timeout
        self.max_attempts = max_attempts
        self.label = label or (f"{socket.gethostname()}-{os.getpid()}"
                               f"-{next(_agent_labels)}")
        self.progress = progress or (lambda line: None)
        self.inc = 0
        self.preempt_flag = threading.Event()
        self.jobs: queue.Queue = queue.Queue()
        self.running: dict[int, int] = {}  # job index -> inc at receipt
        self._stream: FrameStream | None = None
        self._stream_lock = threading.Lock()
        self.dead = False  # set by AgentKilled: stop without a word

    # -- outbound --------------------------------------------------------------

    def post(self, kind: str, job_index: int, inc: int, payload) -> None:
        """Best-effort send on the current session (drops when detached)."""
        with self._stream_lock:
            stream = self._stream
        if stream is None:
            return
        try:
            stream.send({"type": kind, "job": job_index, "inc": inc,
                         "payload": payload})
        except (OSError, FrameError):
            pass

    def _attach(self, stream: FrameStream | None) -> None:
        with self._stream_lock:
            self._stream = stream

    # -- executor thread -------------------------------------------------------

    def _executor(self) -> None:
        from repro.farm.worker import execute_job

        while True:
            item = self.jobs.get()
            if item is _STOP or self.dead:
                return
            job, inc = item
            try:
                payload = execute_job(job, _AgentControl(self, job, inc))
            except AgentKilled:
                self.die()
                return
            except Exception as exc:
                import traceback

                self.post("error", job.index, inc,
                          f"{type(exc).__name__}: {exc}\n"
                          f"{traceback.format_exc().rstrip()}")
                self.running.pop(job.index, None)
                continue
            if (isinstance(payload, tuple) and payload
                    and payload[0] == "preempted"):
                self.post("preempted", job.index, inc, payload[1])
            else:
                self.post("result", job.index, inc, payload)
            self.running.pop(job.index, None)

    # -- heartbeat thread ------------------------------------------------------

    def _heartbeater(self) -> None:
        while not self.dead:
            time.sleep(self.heartbeat)
            with self._stream_lock:
                stream = self._stream
            if stream is None:
                continue
            try:
                stream.send({"type": "hb",
                             "running": sorted(self.running)})
            except (OSError, FrameError):
                pass

    def die(self) -> None:
        """Silent death (test hook): drop the link, never reconnect."""
        self.dead = True
        with self._stream_lock:
            stream, self._stream = self._stream, None
        if stream is not None:
            stream.close()

    # -- main loop -------------------------------------------------------------

    def run(self) -> int:
        threading.Thread(target=self._executor, daemon=True,
                         name=f"repro-agent-exec-{self.label}").start()
        threading.Thread(target=self._heartbeater, daemon=True,
                         name=f"repro-agent-hb-{self.label}").start()
        backoff = 0.25
        attempts = 0
        give_up = time.monotonic() + self.connect_timeout
        try:
            while not self.dead:
                try:
                    sock = socket.create_connection(self.coord, timeout=2.0)
                except OSError as exc:
                    attempts += 1
                    if (self.max_attempts is not None
                            and attempts >= self.max_attempts):
                        self.progress(
                            f"[agent {self.label}] could not reach "
                            f"coordinator at {self.coord[0]}:{self.coord[1]} "
                            f"after {attempts} attempt(s) "
                            f"(last error: {exc}); giving up")
                        return 1
                    if time.monotonic() > give_up:
                        self.progress(f"[agent {self.label}] no coordinator "
                                      f"within {self.connect_timeout:g}s")
                        return 1
                    time.sleep(backoff)
                    backoff = min(backoff * 2, self.backoff_cap)
                    continue
                backoff = 0.25
                attempts = 0
                self.inc += 1
                outcome = self._session(sock)
                give_up = time.monotonic() + self.connect_timeout
                if outcome == "stop" or self.dead:
                    return 0
            return 0
        finally:
            self.jobs.put(_STOP)

    def _session(self, sock: socket.socket) -> str:
        sock.settimeout(self.watchdog + 2 * self.heartbeat)
        stream = FrameStream(sock)
        try:
            stream.send({"type": "hello", "host": self.label,
                         "inc": self.inc,
                         "frames": FRAME_FORMAT_VERSION})
            welcome = stream.recv()
        except (OSError, FrameError, TimeoutError):
            stream.close()
            return "retry"
        if welcome.get("type") != "welcome":
            stream.close()
            time.sleep(self.heartbeat)
            return "retry"
        self.preempt_flag.clear()
        self._attach(stream)
        self.progress(f"[agent {self.label}] attached as worker "
                      f"{welcome['slot']} (incarnation {self.inc})")
        try:
            while not self.dead:
                try:
                    body = stream.recv()
                except (OSError, FrameError, TimeoutError):
                    return "retry"
                kind = body.get("type")
                if kind == "job":
                    rec = body["job"]
                    job = FarmJob(index=int(rec["index"]),
                                  kind=rec["kind"],
                                  params=rec.get("params", {}),
                                  preemptible=bool(rec.get("preemptible")))
                    self.running[job.index] = self.inc
                    self.jobs.put((job, self.inc))
                elif kind == "preempt":
                    self.preempt_flag.set()
                elif kind == "clear-preempt":
                    self.preempt_flag.clear()
                elif kind == "stop":
                    try:
                        stream.send({"type": "bye"})
                    except (OSError, FrameError):
                        pass
                    return "stop"
                # "hb" frames only need the read itself (liveness)
            return "stop"
        finally:
            self._attach(None)
            stream.close()
            # undispatched jobs of this session are the coordinator's to
            # reclaim; drop them so the executor never runs stale work
            drained = []
            try:
                while True:
                    drained.append(self.jobs.get_nowait())
            except queue.Empty:
                pass
            for item in drained:
                if item is _STOP:
                    self.jobs.put(_STOP)
                else:
                    # keep heartbeats truthful: a job this session never
                    # started is not running (re-added if redispatched)
                    self.running.pop(item[0].index, None)


def worker_agent(host: str, port: int, *,
                 heartbeat: float = HEARTBEAT_SECONDS,
                 watchdog: float = WATCHDOG_SECONDS,
                 backoff_cap: float = 8.0,
                 connect_timeout: float = 120.0,
                 label: str | None = None,
                 progress=None,
                 max_attempts: int | None = None) -> int:
    """Run one farm worker agent against a coordinator at (host, port).

    The ``repro farm-worker --connect`` entry point; also runnable in a
    thread (the loopback tests do).  The initial dial retries with capped
    exponential backoff (``backoff_cap``) until a connection lands; the
    budget is bounded two ways — ``connect_timeout`` seconds of wall time,
    and optionally ``max_attempts`` consecutive failed dials (whichever
    trips first; a successful attach resets both).  Returns 0 after a
    clean ``stop`` from the coordinator, 1 with a clear error line on
    ``progress`` when the coordinator could not be reached within the
    budget.
    """
    return _Agent(host, port, heartbeat=heartbeat, watchdog=watchdog,
                  backoff_cap=backoff_cap, connect_timeout=connect_timeout,
                  label=label, progress=progress,
                  max_attempts=max_attempts).run()
