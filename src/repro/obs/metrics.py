"""The metrics registry: labelled counters, gauges, and histograms.

One registry describes one scope (a node, a run, a benchmark version, a
fault campaign); registries **merge**, which is how per-node metrics roll up
to a run and how sweep/ablation results aggregate without ad-hoc dicts.
Merge semantics are chosen so that merging is commutative and associative
with the empty registry as identity (property-tested in
``tests/obs/test_metrics.py``):

* counters add,
* histograms add bucket-wise (bucket boundaries must match), conserving
  total observation counts,
* gauges keep the maximum (cross-scope aggregation of a level-style metric
  reports the peak).

Serialization (:meth:`MetricsRegistry.to_dict` / ``from_dict``) is a
versioned, sorted, JSON-safe schema (:data:`METRICS_SCHEMA`) shared by
``repro run --metrics-out``, ``repro reproduce --metrics-out``, the fault
campaign, and the benchmark harness.

:func:`registry_from_run` folds a finished run's
:class:`~repro.sim.stats.RunStats` — the structure the paper figures read —
into this schema, so ``NodeStats`` stays the in-run accumulator (its hot
paths are untouched) while every exporter downstream speaks metrics.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

METRICS_SCHEMA = "repro.metrics/v1"

#: default histogram bucket upper bounds (exponential, cycles-flavoured)
DEFAULT_BUCKETS = (
    10.0, 30.0, 100.0, 300.0, 1_000.0, 3_000.0, 10_000.0, 30_000.0,
    100_000.0, 300_000.0, 1_000_000.0,
)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing value."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self, value: float = 0.0):
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def to_payload(self) -> dict[str, Any]:
        return {"value": self.value}

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "Counter":
        return cls(payload["value"])


class Gauge:
    """A point-in-time level; merge keeps the peak."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self, value: float = 0.0):
        self.value = value

    def set(self, value: float) -> None:
        self.value = value

    def merge(self, other: "Gauge") -> None:
        self.value = max(self.value, other.value)

    def to_payload(self) -> dict[str, Any]:
        return {"value": self.value}

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "Gauge":
        return cls(payload["value"])


class Histogram:
    """Fixed-boundary histogram with an overflow bucket, plus sum/count."""

    kind = "histogram"
    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Iterable[float] = DEFAULT_BUCKETS):
        self.buckets = tuple(float(b) for b in buckets)
        if list(self.buckets) != sorted(set(self.buckets)):
            raise ValueError(f"bucket bounds must be strictly increasing: {buckets}")
        self.counts = [0] * (len(self.buckets) + 1)  # [+1] = overflow
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, upper in enumerate(self.buckets):
            if value <= upper:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def merge(self, other: "Histogram") -> None:
        if other.buckets != self.buckets:
            raise ValueError(
                f"cannot merge histograms with different buckets: "
                f"{self.buckets} vs {other.buckets}"
            )
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.sum += other.sum
        self.count += other.count

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_payload(self) -> dict[str, Any]:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "Histogram":
        h = cls(payload["buckets"])
        h.counts = list(payload["counts"])
        h.sum = payload["sum"]
        h.count = payload["count"]
        return h


_METRIC_TYPES = {cls.kind: cls for cls in (Counter, Gauge, Histogram)}

Metric = Counter | Gauge | Histogram


class MetricsRegistry:
    """A named, labelled collection of metrics.

    Accessors are get-or-create: ``reg.counter("node.read_misses", node=3)``
    returns the same :class:`Counter` on every call with the same name and
    labels.  A name is bound to one metric type; reusing it with another
    type raises.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, LabelKey], Metric] = {}

    # -- accessors -------------------------------------------------------------

    def _fetch(self, name: str, labels: Mapping[str, Any], cls, **kwargs) -> Metric:
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = cls(**kwargs)
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} is a {metric.kind}, requested {cls.kind}"
            )
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._fetch(name, labels, Counter)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._fetch(name, labels, Gauge)

    def histogram(self, name: str, buckets: Iterable[float] = DEFAULT_BUCKETS,
                  **labels: Any) -> Histogram:
        return self._fetch(name, labels, Histogram, buckets=buckets)

    def get(self, name: str, **labels: Any) -> Metric | None:
        return self._metrics.get((name, _label_key(labels)))

    def value(self, name: str, **labels: Any) -> float:
        """The scalar value of a counter/gauge (0.0 when absent)."""
        metric = self.get(name, **labels)
        if metric is None:
            return 0.0
        if isinstance(metric, Histogram):
            raise TypeError(f"metric {name!r} is a histogram; use .get()")
        return metric.value

    def names(self) -> list[str]:
        return sorted({name for name, _ in self._metrics})

    def series(self, name: str) -> list[tuple[dict[str, str], Metric]]:
        """All (labels, metric) series of one name, sorted by labels."""
        out = [
            (dict(key), metric)
            for (n, key), metric in self._metrics.items()
            if n == name
        ]
        out.sort(key=lambda pair: sorted(pair[0].items()))
        return out

    def total(self, name: str) -> float:
        """Sum of a counter's value across all label sets."""
        return sum(m.value for _, m in self.series(name)
                   if isinstance(m, Counter))

    def __len__(self) -> int:
        return len(self._metrics)

    def __bool__(self) -> bool:
        return True

    # -- merge -----------------------------------------------------------------

    def update(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry in place; returns self."""
        for (name, key), theirs in other._metrics.items():
            mine = self._metrics.get((name, key))
            if mine is None:
                self._metrics[(name, key)] = _copy_metric(theirs)
            elif type(mine) is not type(theirs):
                raise TypeError(
                    f"cannot merge {theirs.kind} into {mine.kind} for {name!r}"
                )
            else:
                mine.merge(theirs)
        return self

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """A new registry holding this one merged with ``other`` (pure)."""
        out = MetricsRegistry()
        out.update(self)
        out.update(other)
        return out

    @classmethod
    def merge_all(cls, registries: Iterable["MetricsRegistry"]) -> "MetricsRegistry":
        out = cls()
        for reg in registries:
            out.update(reg)
        return out

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        metrics = [
            {
                "name": name,
                "labels": dict(key),
                "type": metric.kind,
                **metric.to_payload(),
            }
            for (name, key), metric in sorted(
                self._metrics.items(), key=lambda kv: kv[0]
            )
        ]
        return {"schema": METRICS_SCHEMA, "metrics": metrics}

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "MetricsRegistry":
        if doc.get("schema") != METRICS_SCHEMA:
            raise ValueError(
                f"unsupported metrics schema {doc.get('schema')!r}; "
                f"expected {METRICS_SCHEMA!r}"
            )
        reg = cls()
        for rec in doc["metrics"]:
            mcls = _METRIC_TYPES.get(rec["type"])
            if mcls is None:
                raise ValueError(f"unknown metric type {rec['type']!r}")
            key = (rec["name"], _label_key(rec["labels"]))
            if key in reg._metrics:
                raise ValueError(f"duplicate series {key}")
            payload = {k: v for k, v in rec.items()
                       if k not in ("name", "labels", "type")}
            reg._metrics[key] = mcls.from_payload(payload)
        return reg


def _copy_metric(metric: Metric) -> Metric:
    return type(metric).from_payload(metric.to_payload())


# --------------------------------------------------------------------------- #
# RunStats -> registry
# --------------------------------------------------------------------------- #

#: NodeStats counter attributes folded into per-node counter series
_NODE_COUNTERS = (
    "read_misses", "write_misses", "local_hits",
    "presend_blocks_sent", "presend_blocks_received", "presend_useless_blocks",
    "messages_sent", "bytes_sent",
    "transport_retries", "transport_timeouts", "duplicates_suppressed",
    "crashes", "reissued_requests",
)


def registry_from_run(stats, **labels: Any) -> MetricsRegistry:
    """Fold one run's :class:`~repro.sim.stats.RunStats` into a registry.

    ``labels`` (e.g. ``app="water", protocol="predictive"``) are stamped on
    every series, which is what makes sweep and ablation results mergeable:
    the same metric names with different label values coexist in one
    registry.
    """
    reg = MetricsRegistry()
    reg.gauge("run.wall_cycles", **labels).set(stats.wall_time)
    reg.counter("run.phases", **labels).inc(len(stats.phases))
    reg.counter("run.remote_requests", **labels).inc(stats.total_remote_requests)
    reg.counter("run.schedules_degraded", **labels).inc(stats.schedules_degraded)
    for node in stats.nodes:
        for category, cycles in node.cycles.items():
            reg.counter("node.cycles", node=node.node,
                        category=category.value, **labels).inc(cycles)
        for attr in _NODE_COUNTERS:
            value = getattr(node, attr)
            if value:
                reg.counter(f"node.{attr}", node=node.node, **labels).inc(value)
    phase_wall = reg.histogram("phase.wall_cycles", **labels)
    phase_misses = reg.histogram(
        "phase.misses", buckets=(0, 1, 3, 10, 30, 100, 300, 1000), **labels
    )
    for phase in stats.phases:
        phase_wall.observe(phase.wall)
        phase_misses.observe(phase.misses)
    return reg
