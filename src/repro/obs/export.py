"""Trace exporters: Chrome/Perfetto timeline, JSONL event log, validator.

The Chrome trace-event JSON format (the ``trace.json`` loadable in
``chrome://tracing`` and https://ui.perfetto.dev) models a trace as a flat
list of events with a phase letter ``ph``:

* ``X`` — complete slice (``ts`` + ``dur``),
* ``i`` — instant,
* ``s`` / ``f`` — flow start/finish (the arrows between tracks),
* ``M`` — metadata (process/thread names).

We map one simulated machine to one process (``pid`` 0), with thread 0 as
the machine-global track (phase spans, barrier releases, pre-send group
spans) and thread ``i + 1`` as node ``i``'s track (miss slices, message
endpoints, crash/restart instants).  Simulated cycles are exported 1:1 as
microseconds — the viewer's time unit — so a 40 000-cycle phase reads as a
40 ms span.

:func:`validate_chrome_trace` is the structural check the CI trace smoke
runs; it is deliberately dependency-free (no jsonschema) and verifies the
invariants the viewers actually require: phase letters, non-negative
durations, matched flow ids, and named tracks.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from repro.obs.events import EventKind, TraceEvent

#: events rendered as instants on their node's track
_INSTANT_KINDS = {
    EventKind.INVALIDATE: "invalidate",
    EventKind.RECALL: "recall",
    EventKind.PRESEND_CONSUMED: "presend used",
    EventKind.PRESEND_WASTE: "presend waste",
    EventKind.SCHED_DEGRADE: "schedule degraded",
    EventKind.SCHED_FLUSH: "schedule flush",
    EventKind.SCHED_EVICT: "schedule evict",
    EventKind.SCHED_STALE: "schedule stale",
    EventKind.SCHED_CORRUPT: "schedule corrupt",
    EventKind.RETRY: "retry",
    EventKind.TIMEOUT: "send timeout",
    EventKind.DUP_SUPPRESSED: "dup suppressed",
    EventKind.CRASH: "CRASH",
    EventKind.DETECT: "crash detected",
    EventKind.RESTART: "RESTART",
    EventKind.REISSUE: "reissue",
    EventKind.BARRIER_ARRIVE: "barrier arrive",
    EventKind.BARRIER_RELEASE: "barrier release",
}

_PID = 0
_MACHINE_TID = 0


def _tid(node: int | None) -> int:
    return _MACHINE_TID if node is None else node + 1


def _args(ev: TraceEvent) -> dict[str, Any]:
    args: dict[str, Any] = dict(ev.attrs)
    if ev.phase is not None:
        args["phase"] = ev.phase
    if ev.iteration is not None:
        args["iteration"] = ev.iteration
    if ev.directive is not None:
        args["directive"] = ev.directive
    return args


def chrome_trace_document(events: Iterable[TraceEvent],
                          n_nodes: int) -> dict[str, Any]:
    """Build a Chrome trace-event document from a recorded event stream."""
    out: list[dict[str, Any]] = []

    out.append({"ph": "M", "pid": _PID, "name": "process_name",
                "args": {"name": "repro machine"}})
    out.append({"ph": "M", "pid": _PID, "tid": _MACHINE_TID,
                "name": "thread_name", "args": {"name": "machine"}})
    for i in range(n_nodes):
        out.append({"ph": "M", "pid": _PID, "tid": _tid(i),
                    "name": "thread_name", "args": {"name": f"node {i}"}})

    # open spans keyed by what will close them
    phase_open: dict[str, Any] | None = None
    group_open: dict[str, Any] | None = None
    miss_open: dict[tuple[int | None, Any], TraceEvent] = {}
    sends: dict[Any, TraceEvent] = {}

    def slice_(name: str, ts: float, dur: float, tid: int,
               args: dict[str, Any], cat: str) -> dict[str, Any]:
        return {"ph": "X", "pid": _PID, "tid": tid, "name": name,
                "cat": cat, "ts": ts, "dur": max(dur, 0.0), "args": args}

    for ev in events:
        kind = ev.kind
        if kind == EventKind.PHASE_BEGIN:
            phase_open = {"ts": ev.ts, "ev": ev}
        elif kind == EventKind.PHASE_END and phase_open is not None:
            begin = phase_open["ev"]
            name = f"{begin.phase}#{begin.iteration}"
            out.append(slice_(name, phase_open["ts"],
                              ev.ts - phase_open["ts"], _MACHINE_TID,
                              _args(begin), "phase"))
            phase_open = None
        elif kind == EventKind.GROUP_BEGIN:
            group_open = {"ts": ev.ts, "ev": ev}
        elif kind == EventKind.GROUP_END and group_open is not None:
            begin = group_open["ev"]
            out.append(slice_(f"group d{begin.directive}", group_open["ts"],
                              ev.ts - group_open["ts"], _MACHINE_TID,
                              _args(begin), "group"))
            group_open = None
        elif kind == EventKind.PRESEND_PHASE:
            dur = float(ev.attrs.get("cycles", 0.0))
            out.append(slice_("pre-send", ev.ts, dur, _MACHINE_TID,
                              _args(ev), "presend"))
        elif kind == EventKind.MISS_BEGIN:
            miss_open[(ev.node, ev.attrs.get("block"))] = ev
        elif kind == EventKind.MISS_END:
            begin = miss_open.pop((ev.node, ev.attrs.get("block")), None)
            start = begin.ts if begin is not None else ev.ts
            args = _args(begin if begin is not None else ev)
            args.update(ev.attrs)
            out.append(slice_(f"miss b{ev.attrs.get('block')}", start,
                              ev.ts - start, _tid(ev.node), args, "miss"))
        elif kind == EventKind.MSG_SEND:
            msg_id = ev.attrs.get("msg_id")
            if msg_id is not None:
                sends[msg_id] = ev
        elif kind == EventKind.MSG_RECV:
            msg_id = ev.attrs.get("msg_id")
            send = sends.pop(msg_id, None) if msg_id is not None else None
            name = str(ev.attrs.get("msg_kind", "msg"))
            cat = "presend-msg" if "presend" in name.lower() else "msg"
            if send is not None:
                out.append(slice_(name, send.ts, 0.0, _tid(send.node),
                                  _args(send), cat))
                out.append({"ph": "s", "pid": _PID, "tid": _tid(send.node),
                            "name": name, "cat": cat, "id": msg_id,
                            "ts": send.ts})
                out.append({"ph": "f", "pid": _PID, "tid": _tid(ev.node),
                            "name": name, "cat": cat, "id": msg_id,
                            "ts": ev.ts, "bp": "e"})
            out.append(slice_(name, ev.ts, 0.0, _tid(ev.node),
                              _args(ev), cat))
        elif kind in (EventKind.MSG_DROP, EventKind.MSG_DUP):
            out.append({"ph": "i", "pid": _PID, "tid": _tid(ev.node),
                        "name": "drop" if kind == EventKind.MSG_DROP else "dup",
                        "cat": "fault", "s": "t", "ts": ev.ts,
                        "args": _args(ev)})
        elif kind in _INSTANT_KINDS:
            out.append({"ph": "i", "pid": _PID, "tid": _tid(ev.node),
                        "name": _INSTANT_KINDS[kind], "cat": kind,
                        "s": "t", "ts": ev.ts, "args": _args(ev)})
        # ENGINE_RUN and unmatched begins are bookkeeping, not timeline items

    return {"traceEvents": out, "displayTimeUnit": "ms",
            "otherData": {"generator": "repro.obs", "cycles_per_us": 1}}


def write_chrome_trace(path, events: Iterable[TraceEvent],
                       n_nodes: int) -> dict[str, Any]:
    doc = chrome_trace_document(events, n_nodes)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
    return doc


# --------------------------------------------------------------------------- #
# validation
# --------------------------------------------------------------------------- #

_VALID_PH = {"X", "B", "E", "i", "I", "s", "t", "f", "M", "C"}


def validate_chrome_trace(doc: dict[str, Any]) -> list[str]:
    """Structurally validate a Chrome trace document.

    Returns a list of problems (empty = valid).  Checks the invariants the
    trace viewers require rather than the full (loosely specified) format:
    every event has a known ``ph``; timed events carry numeric ``ts``;
    ``X`` slices have non-negative ``dur``; flow starts and finishes pair up
    by id; metadata names every referenced thread.
    """
    problems: list[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]

    flow_starts: set[Any] = set()
    flow_ends: set[Any] = set()
    named_tids: set[Any] = set()
    used_tids: set[Any] = set()

    for i, ev in enumerate(events):
        where = f"event[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in _VALID_PH:
            problems.append(f"{where}: unknown ph {ph!r}")
            continue
        if "pid" not in ev:
            problems.append(f"{where}: missing pid")
        if ph == "M":
            if ev.get("name") not in ("process_name", "thread_name",
                                      "process_labels", "thread_sort_index",
                                      "process_sort_index"):
                problems.append(f"{where}: unknown metadata {ev.get('name')!r}")
            elif ev.get("name") == "thread_name":
                named_tids.add(ev.get("tid"))
            continue
        if not isinstance(ev.get("ts"), (int, float)):
            problems.append(f"{where}: ph={ph} missing numeric ts")
        if not isinstance(ev.get("name"), str) or not ev.get("name"):
            problems.append(f"{where}: missing name")
        if "tid" in ev:
            used_tids.add(ev["tid"])
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: X slice needs dur >= 0, got {dur!r}")
        elif ph in ("i", "I"):
            if ev.get("s", "t") not in ("t", "p", "g"):
                problems.append(f"{where}: instant scope {ev.get('s')!r}")
        elif ph in ("s", "t", "f"):
            if "id" not in ev:
                problems.append(f"{where}: flow event missing id")
            elif ph == "s":
                flow_starts.add(ev["id"])
            elif ph == "f":
                flow_ends.add(ev["id"])

    for fid in sorted(flow_ends - flow_starts, key=repr):
        problems.append(f"flow finish id {fid!r} has no start")
    for fid in sorted(flow_starts - flow_ends, key=repr):
        problems.append(f"flow start id {fid!r} has no finish")
    for tid in sorted(used_tids - named_tids, key=repr):
        problems.append(f"tid {tid!r} used but never named via thread_name")
    return problems


# --------------------------------------------------------------------------- #
# JSONL event log
# --------------------------------------------------------------------------- #

def write_jsonl(path, events: Iterable[TraceEvent]) -> int:
    """Write one JSON object per line; returns the number of events."""
    n = 0
    with open(path, "w") as fh:
        for ev in events:
            fh.write(json.dumps(ev.to_dict(), sort_keys=True))
            fh.write("\n")
            n += 1
    return n


def load_jsonl(path) -> list[TraceEvent]:
    out: list[TraceEvent] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(TraceEvent.from_dict(json.loads(line)))
    return out
