"""Observability: structured event tracing, metrics, and phase profiling.

The subsystem has four layers, each usable on its own:

* :mod:`repro.obs.events` — a typed, timestamped **event bus**.  Every
  instrumented site in the engine, protocols, transport, schedule store,
  and recovery layers emits through ``machine.obs``; the default sink is
  :data:`~repro.obs.events.NULL_TRACER`, whose disabled flag short-circuits
  every site to a single attribute check (see :mod:`repro.obs.overhead` for
  the guard-cost bound the CI enforces).
* :mod:`repro.obs.metrics` — a **metrics registry** (counters, gauges,
  histograms with labels) that is mergeable across nodes and runs;
  :func:`~repro.obs.metrics.registry_from_run` folds a finished run's
  :class:`~repro.sim.stats.RunStats` into the registry schema, so the
  paper-figure statistics and the benchmark harness share one format.
* :mod:`repro.obs.profiler` — a **phase profiler** attributing cycles and
  events to (phase, iteration) and schedule quality to (directive,
  instance): prediction accuracy, pre-send coverage, waste ratio, and
  coalescing efficiency over time.
* :mod:`repro.obs.export` — exporters: Chrome/Perfetto ``trace.json``
  timelines (per-node tracks, phase spans, message-flow arrows), JSONL
  event logs, and the validator the CI trace smoke runs.

:mod:`repro.obs.jsonout` provides the versioned machine-readable stats
schema behind ``repro run --json`` and ``repro reproduce --json``.
"""

from repro.obs.events import (
    NULL_TRACER,
    EventKind,
    EventTrace,
    TraceEvent,
    Tracer,
)
from repro.obs.export import (
    chrome_trace_document,
    load_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.jsonout import STATS_SCHEMA, run_stats_json
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry_from_run,
)
from repro.obs.profiler import PhaseProfile, ProfileReport, profile_run

__all__ = [
    "NULL_TRACER",
    "EventKind",
    "EventTrace",
    "TraceEvent",
    "Tracer",
    "chrome_trace_document",
    "load_jsonl",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "STATS_SCHEMA",
    "run_stats_json",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry_from_run",
    "PhaseProfile",
    "ProfileReport",
    "profile_run",
]
