"""Overhead guard: the disabled-tracing path must stay near-free.

Every instrumentation site in the simulator follows the same convention::

    obs = self.machine.obs
    if obs.enabled:
        obs.emit(...)

With tracing off (``obs`` is :data:`~repro.obs.events.NULL_TRACER`) a site
costs one attribute load plus one falsy check — no event object, no
dispatch.  This module turns that claim into a measurable bound:

1. run a seed benchmark workload untraced and time it;
2. run the identical workload under a :class:`~repro.obs.events.CountingTracer`
   to count how many guard sites actually fire;
3. microbenchmark the guard itself (attribute load + ``.enabled`` check on a
   disabled tracer) to get a per-site cost;
4. bound the disabled-path overhead as ``sites x per-site cost / untraced
   wall time`` and assert it is under the budget (default 5%).

The analytic bound is deliberate: directly diffing two wall-clock runs of a
small simulation measures allocator noise, not the guard.  Counting real
sites against a measured per-site cost is stable under CI jitter while still
failing loudly if someone puts event construction, string formatting, or a
dict build on the disabled path — any of those multiplies the per-site cost
past the budget.

Run as a script (the CI smoke job does)::

    python -m repro.obs.overhead --check
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.obs.events import NULL_TRACER, CountingTracer

#: disabled-tracing overhead budget, as a fraction of untraced runtime
BUDGET = 0.05


@dataclass(frozen=True)
class OverheadReport:
    """The measured bound and everything that went into it."""

    workload: str
    untraced_seconds: float
    guard_sites: int
    per_guard_seconds: float
    budget: float = BUDGET

    @property
    def bound(self) -> float:
        """Upper bound on the disabled-path overhead fraction."""
        return (self.guard_sites * self.per_guard_seconds
                / self.untraced_seconds)

    @property
    def ok(self) -> bool:
        return self.bound < self.budget

    def render(self) -> str:
        return (
            f"workload            {self.workload}\n"
            f"untraced run        {self.untraced_seconds * 1e3:.1f} ms\n"
            f"guard sites fired   {self.guard_sites}\n"
            f"cost per guard      {self.per_guard_seconds * 1e9:.1f} ns\n"
            f"overhead bound      {self.bound * 100:.3f}% "
            f"(budget {self.budget * 100:.0f}%)\n"
            f"verdict             {'OK' if self.ok else 'OVER BUDGET'}"
        )


def _bench_run(tracer=None) -> float:
    """One seed water run (Figure 7's optimized bar); returns wall seconds."""
    from repro.apps import water
    from repro.bench.figures import WATER_CFG, WATER_KW
    from repro.bench.harness import VersionSpec, run_version

    spec = VersionSpec("overhead-probe", water, "predictive", True,
                       WATER_CFG.with_(block_size=32), dict(WATER_KW))
    t0 = time.perf_counter()
    run_version(spec, tracer=tracer)
    return time.perf_counter() - t0


def measure_guard_cost(iterations: int = 200_000) -> float:
    """Seconds per disabled guard (attribute load + ``.enabled`` check)."""

    class _Holder:
        __slots__ = ("obs",)

        def __init__(self) -> None:
            self.obs = NULL_TRACER

    holder = _Holder()
    fired = 0
    t0 = time.perf_counter()
    for _ in range(iterations):
        obs = holder.obs  # the exact shape of every instrumentation site
        if obs.enabled:
            fired += 1  # pragma: no cover - NULL_TRACER is disabled
    elapsed = time.perf_counter() - t0
    assert fired == 0
    return elapsed / iterations


def measure_overhead(repeats: int = 3) -> OverheadReport:
    """Bound the disabled-tracing overhead on a seed water/predictive run."""
    counting = CountingTracer()
    _bench_run(tracer=counting)
    untraced = min(_bench_run() for _ in range(repeats))
    per_guard = min(measure_guard_cost() for _ in range(repeats))
    return OverheadReport(
        workload="water predictive opt (fig7, block=32)",
        untraced_seconds=untraced,
        guard_sites=counting.emitted,
        per_guard_seconds=per_guard,
    )


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.overhead",
        description="bound the disabled-tracing overhead of the "
                    "instrumented simulator",
    )
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero if the bound exceeds the budget")
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)
    report = measure_overhead(repeats=args.repeats)
    print(report.render())
    if args.check and not report.ok:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
