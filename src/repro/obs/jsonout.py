"""Machine-readable run statistics (``repro run --json``).

A stable, versioned JSON schema (:data:`STATS_SCHEMA`) so benchmarks and CI
can diff runs without screen-scraping the terminal tables.  The document
contains everything :class:`~repro.sim.stats.RunStats` knows — the paper's
figure breakdown, per-node category cycles and counters, per-phase rows,
and the resilience counters (emitted only when nonzero, mirroring the
table output so fault-free documents stay minimal and fingerprint-stable).
"""

from __future__ import annotations

from typing import Any

from repro.sim.stats import RunStats, TimeCategory

STATS_SCHEMA = "repro.run-stats/v1"


def run_stats_json(stats: RunStats, **meta: Any) -> dict[str, Any]:
    """Serialize one run's statistics.

    ``meta`` (e.g. ``app="water", protocol="predictive", nodes=16``) lands
    under a ``"run"`` key so callers can stamp provenance without touching
    the schema.
    """
    doc: dict[str, Any] = {
        "schema": STATS_SCHEMA,
        "run": {k: v for k, v in sorted(meta.items()) if v is not None},
        "wall_time": stats.wall_time,
        "figure_breakdown": stats.figure_breakdown(),
        "totals": {
            "local_hits": stats.local_hits,
            "remote_misses": stats.misses,
            "hit_rate": stats.hit_rate,
            "messages": stats.messages,
            "bytes_on_wire": stats.bytes_on_wire,
            "remote_requests": stats.total_remote_requests,
        },
        "nodes": [
            {
                "node": n.node,
                "cycles": {c.value: n.cycles[c] for c in TimeCategory},
                "read_misses": n.read_misses,
                "write_misses": n.write_misses,
                "local_hits": n.local_hits,
                "presend_blocks_sent": n.presend_blocks_sent,
                "presend_blocks_received": n.presend_blocks_received,
                "presend_useless_blocks": n.presend_useless_blocks,
                "messages_sent": n.messages_sent,
                "bytes_sent": n.bytes_sent,
            }
            for n in stats.nodes
        ],
        "phases": [
            {
                "name": p.phase_name,
                "directive": p.directive_id,
                "wall_start": p.wall_start,
                "wall_end": p.wall_end,
                "misses": p.misses,
                "hits": p.hits,
                "messages": p.messages,
                "cycles": dict(sorted(p.cycles.items())),
            }
            for p in stats.phases
        ],
    }
    resilience = _resilience(stats)
    if resilience:
        doc["resilience"] = resilience
    return doc


def _resilience(stats: RunStats) -> dict[str, Any]:
    """Nonzero-only resilience counters, like ``_resilience_rows``."""
    out: dict[str, Any] = {}
    for key, value in (
        ("transport_retries", stats.transport_retries),
        ("transport_timeouts", stats.transport_timeouts),
        ("duplicates_suppressed", stats.duplicates_suppressed),
        ("schedules_degraded", stats.schedules_degraded),
        ("crashes", stats.crashes),
        ("reissued_requests", stats.reissued_requests),
    ):
        if value:
            out[key] = value
    if stats.crashes:
        out["downtime_cycles"] = stats.downtime
    return out
