"""The structured event-tracing bus.

Instrumented sites across the simulator emit typed, timestamped events
through a :class:`Tracer` attached to the machine (``machine.obs``), the
network, and the engine.  The contract at every site is::

    obs = self.machine.obs
    if obs.enabled:
        obs.emit(EventKind.MISS_BEGIN, t, node=node, block=block, kind=kind)

With tracing off (the default), ``machine.obs`` is :data:`NULL_TRACER` and
the site costs one attribute load plus one falsy check — nothing is
allocated, formatted, or stored.  :mod:`repro.obs.overhead` measures that
guard cost and the CI asserts the disabled path stays under 5% of a seed
run's wall time.

Events carry the *simulated* timestamp of the thing they describe (cycles,
not host time) plus the phase context the tracer maintains — the phase's
base name, its iteration ordinal (how many times that phase has executed),
and the covering directive — so exporters and the profiler can attribute
every event to (phase, iteration) without re-deriving run structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable


class EventKind:
    """The event taxonomy (plain strings: cheap to emit, stable to export).

    Grouped by the layer that emits them; docs/OBSERVABILITY.md documents
    each kind's attributes.
    """

    # phase / directive structure (machine)
    PHASE_BEGIN = "phase.begin"
    PHASE_END = "phase.end"
    GROUP_BEGIN = "group.begin"
    GROUP_END = "group.end"
    PRESEND_PHASE = "presend.phase"
    BARRIER_ARRIVE = "barrier.arrive"
    BARRIER_RELEASE = "barrier.release"

    # shared-data accesses (base protocol / replay processor)
    MISS_BEGIN = "miss.begin"
    MISS_END = "miss.end"

    # wire traffic (network)
    MSG_SEND = "msg.send"
    MSG_RECV = "msg.recv"
    MSG_DROP = "msg.drop"
    MSG_DUP = "msg.dup"

    # coherence actions (protocols)
    INVALIDATE = "cache.inv"
    RECALL = "cache.recall"

    # predictive protocol / schedule store
    PRESEND_MSG = "presend.msg"
    PRESEND_CONSUMED = "presend.consumed"
    PRESEND_WASTE = "presend.waste"
    PRESEND_OUTCOME = "presend.outcome"
    SCHED_DEGRADE = "schedule.degrade"
    SCHED_EVICT = "schedule.evict"
    SCHED_FLUSH = "schedule.flush"
    SCHED_STALE = "schedule.stale"
    SCHED_CORRUPT = "schedule.corrupt"
    SCHED_WARM = "schedule.warm"

    # schedule corpus (host-side durable store; ``ts`` is 0.0 — corpus
    # operations happen outside any simulated clock)
    CORPUS_HIT = "corpus.hit"
    CORPUS_MISS = "corpus.miss"
    CORPUS_STORE = "corpus.store"
    CORPUS_QUARANTINE = "corpus.quarantine"
    CORPUS_EVICT = "corpus.evict"
    CORPUS_RECOVER = "corpus.recover"
    CORPUS_FALLBACK = "corpus.fallback"

    # resilient transport
    RETRY = "transport.retry"
    TIMEOUT = "transport.timeout"
    DUP_SUPPRESSED = "transport.dup"

    # crash-stop recovery
    CRASH = "node.crash"
    DETECT = "node.detect"
    RESTART = "node.restart"
    REISSUE = "node.reissue"

    # discrete-event engine
    ENGINE_RUN = "engine.run"

    # analytical model (repro.model; host-side like the corpus, ``ts`` is
    # 0.0 — predictions happen outside any simulated clock)
    MODEL_PREDICT = "model.predict"
    MODEL_CALIBRATE = "model.calibrate"
    MODEL_VALIDATE = "model.validate"
    MODEL_SWEEP = "model.sweep"

    # campaign farm (coordinator; ``ts`` is host seconds since farm start
    # and ``node`` is the worker id — parallel campaigns have no single
    # simulated clock to stamp)
    FARM_WORKER_UP = "farm.worker.up"
    FARM_WORKER_DOWN = "farm.worker.down"
    FARM_DISPATCH = "farm.dispatch"
    FARM_STEAL = "farm.steal"
    FARM_DONE = "farm.done"
    FARM_RETRY = "farm.retry"
    FARM_PREEMPT = "farm.preempt"

    # multi-host farm links (socket transport; ``node`` is the worker
    # slot the remote agent occupies)
    FARM_LINK_UP = "farm.link.up"
    FARM_LINK_DOWN = "farm.link.down"
    FARM_LINK_GHOST = "farm.link.ghost"
    FARM_LEASE_EXPIRE = "farm.lease.expire"
    FARM_CHAOS = "farm.link.chaos"
    FARM_DEGRADE = "farm.degrade"

    @classmethod
    def all_kinds(cls) -> frozenset[str]:
        return frozenset(
            v for k, v in vars(cls).items()
            if isinstance(v, str) and not k.startswith("_")
        )


@dataclass(slots=True)
class TraceEvent:
    """One emitted event.

    ``ts`` is simulated cycles; ``node`` is the node the event belongs to
    (None for machine-global events such as barrier releases).  ``phase``,
    ``iteration``, and ``directive`` are the tracer's context at emission
    time; ``attrs`` holds the kind-specific payload.
    """

    ts: float
    kind: str
    node: int | None = None
    phase: str | None = None
    iteration: int | None = None
    directive: int | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        d: dict[str, Any] = {"ts": self.ts, "kind": self.kind}
        if self.node is not None:
            d["node"] = self.node
        if self.phase is not None:
            d["phase"] = self.phase
        if self.iteration is not None:
            d["iteration"] = self.iteration
        if self.directive is not None:
            d["directive"] = self.directive
        if self.attrs:
            d["attrs"] = self.attrs
        return d

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "TraceEvent":
        return cls(
            ts=d["ts"], kind=d["kind"], node=d.get("node"),
            phase=d.get("phase"), iteration=d.get("iteration"),
            directive=d.get("directive"), attrs=d.get("attrs", {}),
        )


class Tracer:
    """The sink interface instrumented sites talk to.

    ``enabled`` is the one flag every site checks; the base class is the
    disabled no-op sink.  Subclasses that set ``enabled = True`` receive
    every event through :meth:`emit` and the phase-context callbacks.
    """

    enabled: bool = False

    def emit(self, kind: str, ts: float, node: int | None = None,
             **attrs: Any) -> None:
        """Record one event (no-op when disabled)."""

    def begin_phase(self, name: str, directive: int | None,
                    ts: float) -> None:
        """A phase starts: establish (phase, iteration) context and emit."""

    def end_phase(self, ts: float, **attrs: Any) -> None:
        """The phase's barrier released: emit and clear the context."""

    def set_directive(self, directive: int | None) -> None:
        """The covering compiler directive changed (begin_group/end_group)."""


#: The shared disabled sink; ``machine.obs`` defaults to this.
NULL_TRACER = Tracer()


class EventTrace(Tracer):
    """A recording tracer: stores every event in emission order.

    Maintains the (phase, iteration) context: iteration is the per-base-name
    execution ordinal (``sweep#1``/``sweep#2`` from the runtime both map to
    base ``sweep`` with iterations 1, 2, ...), which is what the profiler
    and the timeline exporters group by.
    """

    enabled = True

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []
        self._phase: str | None = None
        self._iteration: int | None = None
        self._directive: int | None = None
        self._iterations_of: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    # -- emission ------------------------------------------------------------

    def emit(self, kind: str, ts: float, node: int | None = None,
             **attrs: Any) -> None:
        self.events.append(TraceEvent(
            ts=ts, kind=kind, node=node, phase=self._phase,
            iteration=self._iteration, directive=self._directive,
            attrs=attrs,
        ))

    # -- phase context ---------------------------------------------------------

    @staticmethod
    def base_name(phase_name: str) -> str:
        """Strip the runtime's ``#<count>`` suffix: ``sweep#3`` -> ``sweep``."""
        base, _, tail = phase_name.rpartition("#")
        return base if base and tail.isdigit() else phase_name

    def begin_phase(self, name: str, directive: int | None,
                    ts: float) -> None:
        base = self.base_name(name)
        iteration = self._iterations_of.get(base, 0) + 1
        self._iterations_of[base] = iteration
        self._phase = base
        self._iteration = iteration
        self._directive = directive
        self.emit(EventKind.PHASE_BEGIN, ts, raw_name=name)

    def end_phase(self, ts: float, **attrs: Any) -> None:
        self.emit(EventKind.PHASE_END, ts, **attrs)
        self._phase = None
        self._iteration = None

    def set_directive(self, directive: int | None) -> None:
        self._directive = directive

    # -- queries ---------------------------------------------------------------

    def of_kind(self, *kinds: str) -> list[TraceEvent]:
        want = set(kinds)
        return [ev for ev in self.events if ev.kind in want]

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for ev in self.events:
            out[ev.kind] = out.get(ev.kind, 0) + 1
        return out


class CountingTracer(Tracer):
    """An enabled sink that only counts emissions (for the overhead bound).

    Each count approximates one guard execution on the disabled path: a site
    that emits N events under this tracer runs its ``obs.enabled`` check N
    times when tracing is off.
    """

    enabled = True

    def __init__(self) -> None:
        self.emitted = 0

    def emit(self, kind: str, ts: float, node: int | None = None,
             **attrs: Any) -> None:
        self.emitted += 1

    def begin_phase(self, name: str, directive: int | None, ts: float) -> None:
        self.emitted += 1

    def end_phase(self, ts: float, **attrs: Any) -> None:
        self.emitted += 1


def events_to_dicts(events: Iterable[TraceEvent]) -> list[dict[str, Any]]:
    return [ev.to_dict() for ev in events]
