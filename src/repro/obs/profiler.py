"""The phase profiler: attribute cycles and events to (phase, iteration).

The paper's figures report end-of-run aggregates; the profiler answers the
questions those aggregates hide — *which* phase regressed, *when* a schedule
started mispredicting, how pre-send quality evolved across iterations.  It
combines the run's :class:`~repro.sim.stats.RunStats` (per-phase wall/miss
deltas, which exist even without tracing) with an
:class:`~repro.obs.events.EventTrace` (which adds per-event attribution and
the pre-send outcome events the schedule-quality table needs).

Two tables come out:

* the **phase timeline** — one row per (phase, iteration) execution, with
  wall cycles, misses, hits, hit rate, and messages;
* **schedule quality** — one row per (directive, instance) pre-send group,
  with blocks sent, messages used, coalescing efficiency (blocks/message),
  blocks consumed before invalidation, useless blocks, waste ratio,
  prediction accuracy, and coverage (consumed / (consumed + misses during
  the covered phases)).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.obs.events import EventKind, EventTrace, TraceEvent
from repro.util.tables import format_table


@dataclass
class PhaseProfile:
    """One (phase, iteration) execution."""

    phase: str
    iteration: int
    directive: int | None
    wall_start: float
    wall_end: float
    misses: int = 0
    hits: int = 0
    messages: int = 0
    #: per-category cycle deltas for this execution (the shared accounting
    #: schema of ``PhaseBreakdown.cycles``; nonzero categories only)
    cycles: dict[str, float] = field(default_factory=dict)

    @property
    def wall(self) -> float:
        return self.wall_end - self.wall_start

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 1.0


@dataclass
class ScheduleQuality:
    """Pre-send quality for one (directive, instance) group execution."""

    directive: int
    instance: int          # 1-based execution ordinal of this directive
    ts: float              # group begin time
    blocks_sent: int = 0
    messages: int = 0
    consumed: int = 0      # pre-sent blocks used before invalidation
    useless: int = 0       # pre-sent blocks invalidated or never touched
    misses: int = 0        # remote misses during the phases this group covers

    @property
    def coalescing(self) -> float:
        """Blocks per pre-send message (1.0 = no coalescing win)."""
        return self.blocks_sent / self.messages if self.messages else 0.0

    @property
    def waste_ratio(self) -> float:
        return self.useless / self.blocks_sent if self.blocks_sent else 0.0

    @property
    def accuracy(self) -> float:
        """Fraction of pre-sent blocks that were used (1 - waste)."""
        return self.consumed / self.blocks_sent if self.blocks_sent else 0.0

    @property
    def coverage(self) -> float:
        """Fraction of remote needs satisfied by pre-send rather than a miss."""
        need = self.consumed + self.misses
        return self.consumed / need if need else 1.0


@dataclass
class ProfileReport:
    """The profiler's output: phase timeline + schedule-quality history."""

    phases: list[PhaseProfile] = field(default_factory=list)
    schedule_quality: list[ScheduleQuality] = field(default_factory=list)
    event_counts: dict[str, int] = field(default_factory=dict)
    wall_time: float = 0.0

    # -- tables ---------------------------------------------------------------

    def phase_table(self) -> str:
        rows = [
            [p.phase, p.iteration, p.wall, float(p.misses), float(p.hits),
             p.hit_rate, float(p.messages)]
            for p in self.phases
        ]
        return format_table(
            ["phase", "iter", "wall", "misses", "hits", "hit rate", "msgs"],
            rows, title="Phase timeline",
        )

    def schedule_table(self) -> str:
        rows = [
            [q.directive, q.instance, float(q.blocks_sent), float(q.messages),
             q.coalescing, float(q.consumed), float(q.useless),
             q.waste_ratio, q.accuracy, q.coverage]
            for q in self.schedule_quality
        ]
        return format_table(
            ["directive", "inst", "sent", "msgs", "blk/msg", "used",
             "useless", "waste", "accuracy", "coverage"],
            rows, title="Schedule quality (pre-send, per directive instance)",
        )

    def render(self) -> str:
        parts = [self.phase_table()]
        if self.schedule_quality:
            parts.append(self.schedule_table())
        else:
            parts.append("(no pre-send activity: schedule-quality table empty)")
        return "\n\n".join(parts)

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": "repro.profile/v1",
            "wall_time": self.wall_time,
            "phases": [
                {
                    "phase": p.phase, "iteration": p.iteration,
                    "directive": p.directive, "wall": p.wall,
                    "misses": p.misses, "hits": p.hits,
                    "hit_rate": p.hit_rate, "messages": p.messages,
                    "cycles": dict(sorted(p.cycles.items())),
                }
                for p in self.phases
            ],
            "schedule_quality": [
                {
                    "directive": q.directive, "instance": q.instance,
                    "blocks_sent": q.blocks_sent, "messages": q.messages,
                    "coalescing": q.coalescing, "consumed": q.consumed,
                    "useless": q.useless, "waste_ratio": q.waste_ratio,
                    "accuracy": q.accuracy, "coverage": q.coverage,
                }
                for q in self.schedule_quality
            ],
            "event_counts": dict(sorted(self.event_counts.items())),
        }


def profile_run(stats, trace: EventTrace | Iterable[TraceEvent] | None = None
                ) -> ProfileReport:
    """Build a :class:`ProfileReport` from run stats plus an optional trace.

    Without a trace the phase timeline is built from ``stats.phases`` alone
    (iterations inferred per base name) and the schedule-quality table is
    empty — pre-send attribution needs the trace's presend/outcome events.
    """
    report = ProfileReport(wall_time=stats.wall_time)

    events = list(trace) if trace is not None else []
    report.event_counts = _count(events)

    # Phase timeline from RunStats (exists with or without tracing).
    iterations: dict[str, int] = {}
    for p in stats.phases:
        base = EventTrace.base_name(p.phase_name)
        iterations[base] = iterations.get(base, 0) + 1
        report.phases.append(PhaseProfile(
            phase=base, iteration=iterations[base],
            directive=p.directive_id,
            wall_start=p.wall_start, wall_end=p.wall_end,
            misses=p.misses, hits=p.hits, messages=p.messages,
            cycles=dict(p.cycles),
        ))

    if events:
        report.schedule_quality = _schedule_quality(events, report.phases)
    return report


def _count(events: list[TraceEvent]) -> dict[str, int]:
    out: dict[str, int] = {}
    for ev in events:
        out[ev.kind] = out.get(ev.kind, 0) + 1
    return out


def _schedule_quality(events: list[TraceEvent],
                      phases: list[PhaseProfile]) -> list[ScheduleQuality]:
    """Fold presend events into per-(directive, instance) quality rows.

    Group structure comes from GROUP_BEGIN/GROUP_END pairs; PRESEND_MSG
    events between them count sent blocks and messages, and the GROUP_END's
    PRESEND_OUTCOME-style attrs settle consumed/useless.  Because outcomes
    for a group are only known once the *next* execution of the same
    directive rebuilds (deferred waste judgment), PRESEND_CONSUMED /
    PRESEND_WASTE events are attributed to the group instance that sent the
    block, carried in the event's ``attrs``.
    """
    instances: dict[int, int] = {}
    rows: dict[tuple[int, int], ScheduleQuality] = {}
    current: ScheduleQuality | None = None

    for ev in events:
        if ev.kind == EventKind.GROUP_BEGIN and ev.directive is not None:
            inst = instances.get(ev.directive, 0) + 1
            instances[ev.directive] = inst
            current = rows.setdefault(
                (ev.directive, inst),
                ScheduleQuality(directive=ev.directive, instance=inst,
                                ts=ev.ts),
            )
        elif ev.kind == EventKind.GROUP_END:
            current = None
        elif ev.kind == EventKind.PRESEND_MSG and current is not None:
            current.messages += 1
            current.blocks_sent += int(ev.attrs.get("blocks", 1))
        elif ev.kind == EventKind.PRESEND_CONSUMED:
            row = _sender_row(rows, ev, instances)
            if row is not None:
                row.consumed += 1
        elif ev.kind == EventKind.PRESEND_WASTE:
            row = _sender_row(rows, ev, instances)
            if row is not None:
                row.useless += int(ev.attrs.get("blocks", 1))
        elif ev.kind == EventKind.MISS_BEGIN and ev.directive is not None:
            inst = instances.get(ev.directive)
            if inst is not None:
                row = rows.get((ev.directive, inst))
                if row is not None:
                    row.misses += 1

    return [rows[k] for k in sorted(rows)]


def _sender_row(rows: dict[tuple[int, int], ScheduleQuality],
                ev: TraceEvent,
                instances: dict[int, int]) -> ScheduleQuality | None:
    """The group row a consumed/waste event settles.

    The sending instance is carried in ``attrs['instance']`` when the
    emitter knows it; otherwise fall back to the latest instance of the
    event's directive.
    """
    directive = ev.attrs.get("src_directive", ev.directive)
    if directive is None:
        return None
    inst = ev.attrs.get("instance", instances.get(directive))
    if inst is None:
        return None
    return rows.get((directive, inst))
