"""Adaptive: structured adaptive mesh relaxation (paper §5.1).

"Adaptive is a structured mesh calculation that computes electric potentials
in a box.  The program imposes a mesh over the box and computes the potential
at each point by averaging its four neighbors.  At points where the gradient
is steep, finer detail is necessary and the program subdivides the cell into
four child cells. ... Each iteration of the program consists of a red-black
sweep over the mesh computing averages.  Within each sweep, each cell updates
values in its quad tree, reading values from neighboring points."  Table 1:
128x128 mesh, 100 iterations (scaled default: 16x16, 10 iterations).

Model:

* ``mesh``  — (N, N) float cell potentials, row-block distributed; the
  *left* boundary column is held at 1.0 (the "charged" box wall), so the
  steep-gradient stripe — and therefore refinement — runs down the left
  side of every processor's row band and across every band boundary,
  where quad-tree neighbor reads become inter-node communication.  The
  per-cell work of refined cells (4x/16x the tree nodes) also loads the
  left-column owners unevenly within a sweep, the imbalance the paper
  blames for Adaptive's synchronization time.
* ``level`` — (N, N) int refinement level, 0..MAX_LEVEL.
* ``tree``  — (N*N, TREE_NODES) float quad-tree node values per cell
  (4 depth-1 quadrants + 16 depth-2 sub-quadrants), rows co-owned with
  their cell.

Each sweep updates a cell's potential from its four neighbors, then updates
its active quad-tree nodes, reading the *neighboring cell's* quad-tree
sub-values when the neighbor is refined (the "neighbor reads in the quad
tree" the predictive protocol optimizes).  A refinement phase raises the
level of cells whose gradient exceeds a per-level threshold and initializes
the newly active tree nodes.  Refinement *adds* blocks to the communication
pattern incrementally — the predictive protocol's incremental schedules
track it; deletions never happen, matching the protocol's design point.
"""

from __future__ import annotations

import numpy as np

from repro.apps.common import OwnerMap
from repro.cstar.driver import Env
from repro.cstar.embedded import EmbeddedProgram, access
from repro.cstar.runtime import RowBlock2D

DEFAULTS = dict(size=16, iterations=10, threshold=0.08, work_scale=1.0)
PAPER_SCALE = dict(size=128, iterations=100, threshold=0.08)

MAX_LEVEL = 2
#: quad-tree layout per cell: nodes 0..3 are depth-1 quadrants, 4..19 are
#: depth-2 sub-quadrants (4 per quadrant)
TREE_NODES = 20

#: quadrant -> (horizontal neighbor direction, vertical neighbor direction)
#: directions: 0=left 1=right 2=up 3=down; quadrant 0=NW 1=NE 2=SW 3=SE
_QUAD_DIRS = {0: (0, 2), 1: (1, 2), 2: (0, 3), 3: (1, 3)}
_DIR_OFFSETS = {0: (0, -1), 1: (0, 1), 2: (-1, 0), 3: (1, 0)}
#: the neighbor's quadrant facing ours across direction d
_FACING = {0: {0: 1, 2: 3}, 1: {1: 0, 3: 2}, 2: {0: 2, 1: 3}, 3: {2: 0, 3: 1}}


def _neighbor(i: int, j: int, d: int) -> tuple[int, int]:
    di, dj = _DIR_OFFSETS[d]
    return i + di, j + dj


def cell_update(i, j, n, read_mesh, read_level, read_tree):
    """The sweep kernel for one cell; shared verbatim by the parallel body
    and the sequential reference, so values agree bit-for-bit.

    ``read_mesh(i, j)``, ``read_level(i, j)``, ``read_tree(cell, node)`` are
    the only data sources.  Returns (new_center, {tree_node: value}, cost).
    """
    cost = 4
    left = read_mesh(i, j - 1)
    right = read_mesh(i, j + 1)
    up = read_mesh(i - 1, j)
    down = read_mesh(i + 1, j)
    new_center = 0.25 * (left + right + up + down)
    level = read_level(i, j)
    tree_updates: dict[int, float] = {}
    if level >= 1:
        for q in range(4):
            dh, dv = _QUAD_DIRS[q]
            vals = []
            for d in (dh, dv):
                ni, nj = _neighbor(i, j, d)
                cost += 3
                if read_level(ni, nj) >= 1:
                    # neighbor is refined: read its facing sub-cell from its
                    # quad tree (the communication this app exercises)
                    vals.append(read_tree(ni * n + nj, _FACING[d][q]))
                else:
                    vals.append(read_mesh(ni, nj))
            tree_updates[q] = 0.5 * new_center + 0.25 * (vals[0] + vals[1])
        if level >= 2:
            for q in range(4):
                parent = tree_updates[q]
                for s in range(4):
                    dh, dv = _QUAD_DIRS[s]
                    ni, nj = _neighbor(i, j, dh)
                    cost += 3
                    if read_level(ni, nj) >= 2:
                        nbr = read_tree(ni * n + nj, 4 + _FACING[dh][s] * 4 + s)
                    else:
                        nbr = read_mesh(ni, nj)
                    tree_updates[4 + q * 4 + s] = 0.75 * parent + 0.25 * nbr
    return new_center, tree_updates, cost


def refine_decision(i, j, read_mesh, read_level, threshold):
    """Refine when the local gradient exceeds the per-level threshold."""
    level = read_level(i, j)
    if level >= MAX_LEVEL:
        return None
    c = read_mesh(i, j)
    grad = 0.0
    for d in range(4):
        ni, nj = _neighbor(i, j, d)
        grad = max(grad, abs(read_mesh(ni, nj) - c))
    if grad > threshold * (0.5 ** level):
        return level + 1
    return None


def _interior_cells(size: int, color: int):
    return [
        (i, j)
        for i in range(1, size - 1)
        for j in range(1, size - 1)
        if (i + j) % 2 == color
    ]


def build(
    size: int = DEFAULTS["size"],
    iterations: int = DEFAULTS["iterations"],
    threshold: float = DEFAULTS["threshold"],
    work_scale: float = DEFAULTS["work_scale"],
) -> EmbeddedProgram:
    """``work_scale`` calibrates modelled compute cost per cell (see
    water.build)."""
    n = size

    def setup(env: Env) -> None:
        nodes = env.machine.config.n_nodes
        # a cell is a C++ object (value + quad-tree pointer + bookkeeping):
        # pad to 32 bytes so one cell occupies a whole minimum-size block
        mesh = env.runtime.aggregate(
            "mesh", (n, n), dist=RowBlock2D(n, n, nodes), pad=4
        )
        level = env.runtime.aggregate(
            "level", (n, n), dtype="int", dist=RowBlock2D(n, n, nodes), pad=4
        )
        # tree rows co-owned with their cell
        per = -(-n // nodes)
        owners = np.repeat(np.minimum(np.arange(n) // per, nodes - 1), n)
        env.runtime.aggregate(
            "tree", (n * n, TREE_NODES), dist=OwnerMap(owners, TREE_NODES)
        )
        mesh.data[:, 0] = 1.0  # charged left wall
        env.state["red"] = _interior_cells(n, 0)
        env.state["black"] = _interior_cells(n, 1)

    prog = EmbeddedProgram("adaptive", setup)

    def sweep_body(ctx, env: Env) -> None:
        i, j = ctx.pos
        mesh, level, tree = env.agg("mesh"), env.agg("level"), env.agg("tree")
        new_center, tree_updates, cost = cell_update(
            i, j, n,
            lambda a, b: ctx.read(mesh, (a, b)),
            lambda a, b: int(ctx.read(level, (a, b))),
            lambda c, k: ctx.read(tree, (c, k)),
        )
        ctx.charge(cost * work_scale)
        ctx.write(mesh, (i, j), new_center)
        for node_idx, v in tree_updates.items():
            ctx.write(tree, (i * n + j, node_idx), v)

    sweep_accesses = [
        access("mesh", "r", "non-home"),
        access("mesh", "w", "home"),
        access("level", "r", "non-home"),
        access("tree", "r", "non-home"),
        access("tree", "w", "home"),
    ]
    prog.parallel("sweep_red", sweep_accesses, sweep_body)
    prog.parallel("sweep_black", list(sweep_accesses), sweep_body)

    def refine_body(ctx, env: Env) -> None:
        i, j = ctx.pos
        mesh, level, tree = env.agg("mesh"), env.agg("level"), env.agg("tree")
        ctx.charge(6 * work_scale)
        new_level = refine_decision(
            i, j,
            lambda a, b: ctx.read(mesh, (a, b)),
            lambda a, b: int(ctx.read(level, (a, b))),
            threshold,
        )
        if new_level is not None:
            ctx.write(level, (i, j), new_level)
            center = ctx.read(mesh, (i, j))
            cell = i * n + j
            if new_level == 1:
                for q in range(4):
                    ctx.write(tree, (cell, q), center)
            else:
                for q in range(4):
                    parent = ctx.read(tree, (cell, q))
                    for s in range(4):
                        ctx.write(tree, (cell, 4 + q * 4 + s), parent)

    prog.parallel(
        "refine",
        [
            access("mesh", "r", "non-home"),
            access("level", "r", "home"),
            access("level", "w", "home"),
            access("tree", "r", "home"),
            access("tree", "w", "home"),
        ],
        refine_body,
    )

    red = lambda env: env.state["red"]
    black = lambda env: env.state["black"]
    prog.build(
        prog.loop(
            iterations,
            prog.call("sweep_red", over="mesh", snapshot=["mesh", "level", "tree"],
                      elements=red),
            prog.call("sweep_black", over="mesh", snapshot=["mesh", "level", "tree"],
                      elements=black),
            prog.call("refine", over="mesh", snapshot=["mesh", "level", "tree"],
                      elements=red),  # refinement checked on red cells
        )
    )
    return prog


def reference(
    size: int = DEFAULTS["size"],
    iterations: int = DEFAULTS["iterations"],
    threshold: float = DEFAULTS["threshold"],
):
    """Sequential reference with identical phase/snapshot semantics.

    Returns (mesh, level, tree) arrays.
    """
    n = size
    mesh = np.zeros((n, n))
    mesh[:, 0] = 1.0
    level = np.zeros((n, n), dtype=np.int64)
    tree = np.zeros((n * n, TREE_NODES))

    def sweep(cells):
        msnap, lsnap, tsnap = mesh.copy(), level.copy(), tree.copy()
        for i, j in cells:
            new_center, updates, _ = cell_update(
                i, j, n,
                lambda a, b: msnap[a, b],
                lambda a, b: int(lsnap[a, b]),
                lambda c, k: tsnap[c, k],
            )
            mesh[i, j] = new_center
            for k, v in updates.items():
                tree[i * n + j, k] = v

    def refine(cells):
        msnap, lsnap, tsnap = mesh.copy(), level.copy(), tree.copy()
        for i, j in cells:
            new_level = refine_decision(
                i, j,
                lambda a, b: msnap[a, b],
                lambda a, b: int(lsnap[a, b]),
                threshold,
            )
            if new_level is not None:
                level[i, j] = new_level
                cell = i * n + j
                center = msnap[i, j]
                if new_level == 1:
                    tree[cell, 0:4] = center
                else:
                    for q in range(4):
                        tree[cell, 4 + q * 4 : 8 + q * 4] = tsnap[cell, q]

    red = _interior_cells(n, 0)
    black = _interior_cells(n, 1)
    for _ in range(iterations):
        sweep(red)
        sweep(black)
        refine(red)
    return mesh, level, tree
