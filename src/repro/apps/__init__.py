"""The paper's benchmark applications (Table 1) plus the two baselines.

* :mod:`repro.apps.adaptive` — **Adaptive**: structured adaptive mesh
  relaxation with quad-tree cell refinement (dynamic repetitive pattern);
* :mod:`repro.apps.barnes` — **Barnes**: gravitational N-body with a
  Barnes-Hut octree (dynamic repetitive, excellent spatial locality), plus
  the hand-optimized **SPMD** variant under a write-update protocol;
* :mod:`repro.apps.water` — **Water**: molecular dynamics with a spherical
  cutoff (static repetitive producer-consumer pattern), plus the **Splash**
  transparent-shared-memory variant.

Each module exposes ``build(**params) -> EmbeddedProgram``, ``DEFAULTS``
(scaled-down sizes; the paper-scale values are in ``PAPER_SCALE``), and a
``reference(...)`` sequential implementation used to validate values.
"""

__all__ = ["adaptive", "barnes", "water"]
