"""Water: molecular dynamics with a spherical cutoff (paper §5.3).

"Water evaluates forces and potentials in a system of water molecules over a
number of time steps. ... The program computes interactions between all pairs
of molecules that lie within a spherical cutoff range equal to half the
length of the box enclosing all molecules."  Table 1: 512 molecules, 20
iterations (scaled default: 64 molecules, 5 iterations).

The communication pattern is **static and repetitive producer-consumer**: a
molecule's position, updated by its owner in one iteration's update phase, is
read by the ~n/2 other molecules whose cutoff sphere contains it in the next
iteration's interaction phase.  The compiler places one directive on the
interaction phase (rule 2: unstructured position reads) and one on the
update phase (rule 1: owner writes reached by those reads), so in steady
state the predictive protocol pre-invalidates consumers before the update
and pre-sends fresh positions before the interactions.

Physics simplification (documented in DESIGN.md): molecules are point
particles under a truncated, softened Lennard-Jones potential rather than
rigid 3-site waters with intra-molecular terms — the paper's evaluation is
about the communication pattern, which depends only on "each molecule reads
the positions of every molecule within the cutoff", preserved exactly.  In
the C** data-parallel formulation each molecule accumulates its own force
from its neighbors (the paired-update reduction of the SPMD original is
expressed as two half-window reads, keeping force writes owner-local).

Variants:

* ``variant="cstar"`` — the C** program (owner-aligned homes); run with
  ``optimized=True/False`` for the paper's opt/unopt versions.
* ``variant="splash"`` — the Splash-2-style version "optimized for
  transparent shared memory": the same physics, written the way the SPLASH
  Water-Nsquared code is — each processor handles each unordered pair once
  (the n/2 following molecules), accumulates both partners' force
  contributions into *private* partial arrays, and a merge step publishes
  each processor's partials into a shared scratch aggregate that the
  owner sums during the update.  The merge/sum traffic (every partial row
  bounces between its writer and the molecule's owner every iteration)
  plus Stache's default round-robin page homes and the absence of
  directives are what make this version slower than both C** versions
  (paper Figure 7).
* ``variant="splash-naive"`` — pedagogical worst case used by the ablation
  benches: Newton's-third-law reactions accumulated *directly* into the
  partner's shared force row, one read-modify-write per pair, migrating
  force blocks between processors mid-phase.  On a software DSM this is
  catastrophic — the overhead Chandra et al. [2] measured for transparent
  shared memory.
"""

from __future__ import annotations

import numpy as np

from repro.apps.common import RowAligned, lattice_positions, read_vec, rows, write_vec
from repro.cstar.embedded import EmbeddedProgram, access
from repro.cstar.driver import Env

DEFAULTS = dict(n=64, iterations=5, box=6.0, dt=0.002, work_scale=1.0)
PAPER_SCALE = dict(n=512, iterations=20, box=12.0, dt=0.002)

#: Lennard-Jones parameters (reduced units), softened and truncated.
EPS = 1.0
SIGMA = 1.0
SOFTENING = 0.05
FORCE_CAP = 50.0


def _pair_force(ri, rj, cutoff: float) -> tuple:
    """Force on molecule i from molecule j (zero outside the cutoff)."""
    dx = ri[0] - rj[0]
    dy = ri[1] - rj[1]
    dz = ri[2] - rj[2]
    r2 = dx * dx + dy * dy + dz * dz + SOFTENING
    if r2 > cutoff * cutoff:
        return (0.0, 0.0, 0.0)
    inv2 = (SIGMA * SIGMA) / r2
    inv6 = inv2 * inv2 * inv2
    mag = 24.0 * EPS * inv6 * (2.0 * inv6 - 1.0) / r2
    if mag > FORCE_CAP:
        mag = FORCE_CAP
    elif mag < -FORCE_CAP:
        mag = -FORCE_CAP
    return (mag * dx, mag * dy, mag * dz)


def _neighbor_window(i: int, n: int):
    """The molecules whose interactions molecule i computes: the n/2
    following and n/2 preceding in the ordered data set (paper §5.3)."""
    half = n // 2
    for off in range(1, half + 1):
        yield (i + off) % n
    for off in range(1, n - half):
        yield (i - off) % n


def build(
    n: int = DEFAULTS["n"],
    iterations: int = DEFAULTS["iterations"],
    box: float = DEFAULTS["box"],
    dt: float = DEFAULTS["dt"],
    work_scale: float = DEFAULTS["work_scale"],
    variant: str = "cstar",
) -> EmbeddedProgram:
    """Construct the Water program (see module docstring for variants).

    ``work_scale`` scales the modelled compute cost per interaction; it
    calibrates the compute/communication balance to the paper's platform
    without touching the communication pattern.
    """
    cutoff = box / 2.0
    splashy = variant.startswith("splash")
    home = "round_robin" if splashy else "owner"

    def setup(env: Env) -> None:
        nodes = env.machine.config.n_nodes
        dist = RowAligned(n, 4, nodes)
        pos = env.runtime.aggregate("pos", (n, 4), dist=dist, home=home)
        vel = env.runtime.aggregate("vel", (n, 4), dist=dist, home=home)
        force = env.runtime.aggregate("force", (n, 4), dist=dist, home=home)
        if variant == "splash":
            # shared scratch for per-processor force partials: 4 fields
            # (fx, fy, fz, pad) per (molecule, node) slot so one slot fills
            # one 32-byte block
            env.runtime.aggregate(
                "fpart", (n, 4 * nodes),
                dist=RowAligned(n, 4 * nodes, nodes), home=home,
            )
            env.runtime.aggregate("pslot", (nodes,), home=home)
        pts = lattice_positions(n, box)
        pos.data[:, :3] = pts
        vel.data[:] = 0.0
        force.data[:] = 0.0

    prog = EmbeddedProgram(f"water-{variant}", setup)

    # ---- interaction phase: static repetitive producer-consumer reads ----
    def interactions_body(ctx, env: Env) -> None:
        i = ctx.pos[0]
        pos = env.agg("pos")
        force = env.agg("force")
        ri = read_vec(ctx, pos, i)
        fx = fy = fz = 0.0
        for j in _neighbor_window(i, n):
            rj = read_vec(ctx, pos, j)
            ctx.charge(12 * work_scale)  # distance + LJ evaluation
            px, py, pz = _pair_force(ri, rj, cutoff)
            fx += px
            fy += py
            fz += pz
        write_vec(ctx, force, i, (fx, fy, fz))

    prog.parallel(
        "interactions",
        [
            access("pos", "r", "home"),
            access("pos", "r", "non-home"),
            access("force", "w", "home"),
        ],
        interactions_body,
    )

    # ---- update phase: owner writes of positions/velocities --------------
    def update_body(ctx, env: Env) -> None:
        i = ctx.pos[0]
        pos, vel, force = env.agg("pos"), env.agg("vel"), env.agg("force")
        ri = read_vec(ctx, pos, i)
        vi = read_vec(ctx, vel, i)
        fi = read_vec(ctx, force, i)
        ctx.charge(9 * work_scale)
        vi = tuple(v + f * dt for v, f in zip(vi, fi))
        ri = tuple(r + v * dt for r, v in zip(ri, vi))
        write_vec(ctx, vel, i, vi)
        write_vec(ctx, pos, i, ri)

    prog.parallel(
        "update",
        [
            access("pos", "r", "home"),
            access("pos", "w", "home"),
            access("vel", "r", "home"),
            access("vel", "w", "home"),
            access("force", "r", "home"),
        ],
        update_body,
    )

    # ---- SPLASH-style phases -----------------------------------------------
    def _pair_window(i: int):
        """Offsets so each unordered pair is handled by exactly one owner:
        the full half-window for i < n/2, one less for the rest."""
        half = n // 2
        top = half + 1 if (n % 2 == 1 or i < half) else half
        return range(1, top)

    def splash_interactions_body(ctx, env: Env) -> None:
        """Compute each pair once; accumulate both partners' contributions
        into this processor's *private* partial array (no shared traffic —
        SPLASH's per-process local force arrays)."""
        i = ctx.pos[0]
        pos = env.agg("pos")
        ri = read_vec(ctx, pos, i)
        scratch = env.state.setdefault("partials", {}).setdefault(ctx.node, {})
        fi = scratch.setdefault(i, [0.0, 0.0, 0.0])
        for off in _pair_window(i):
            j = (i + off) % n
            rj = read_vec(ctx, pos, j)
            ctx.charge(12 * work_scale)
            px, py, pz = _pair_force(ri, rj, cutoff)
            fi[0] += px
            fi[1] += py
            fi[2] += pz
            fj = scratch.setdefault(j, [0.0, 0.0, 0.0])
            fj[0] -= px
            fj[1] -= py
            fj[2] -= pz

    prog.parallel(
        "splash_interactions",
        [
            access("pos", "r", "home"),
            access("pos", "r", "non-home"),
        ],
        splash_interactions_body,
    )

    def splash_naive_body(ctx, env: Env) -> None:
        """Pedagogical worst case: reactions accumulated straight into the
        partner's shared force row (one remote RMW per pair)."""
        i = ctx.pos[0]
        pos, force = env.agg("pos"), env.agg("force")
        ri = read_vec(ctx, pos, i)
        fx = fy = fz = 0.0
        for off in _pair_window(i):
            j = (i + off) % n
            rj = read_vec(ctx, pos, j)
            ctx.charge(12 * work_scale)
            px, py, pz = _pair_force(ri, rj, cutoff)
            fx += px
            fy += py
            fz += pz
            ctx.update(force, (j, 0), -px)
            ctx.update(force, (j, 1), -py)
            ctx.update(force, (j, 2), -pz)
        ctx.update(force, (i, 0), fx)
        ctx.update(force, (i, 1), fy)
        ctx.update(force, (i, 2), fz)

    prog.parallel(
        "splash_naive_interactions",
        [
            access("pos", "r", "home"),
            access("pos", "r", "non-home"),
            access("force", "r", "non-home"),
            access("force", "w", "non-home"),
        ],
        splash_naive_body,
    )

    def zero_forces_body(ctx, env: Env) -> None:
        i = ctx.pos[0]
        ctx.charge(1 * work_scale)
        write_vec(ctx, env.agg("force"), i, (0.0, 0.0, 0.0))

    prog.parallel(
        "zero_forces", [access("force", "w", "home")], zero_forces_body
    )

    def merge_body(ctx, env: Env) -> None:
        """Processor p publishes its private partials into the shared
        scratch (SPLASH's UPDATE_FORCES step, one slot per (molecule, p))."""
        p = ctx.pos[0]
        fpart = env.agg("fpart")
        scratch = env.state.get("partials", {}).get(p, {})
        for j in range(n):
            contrib = scratch.get(j, (0.0, 0.0, 0.0))
            ctx.charge(3 * work_scale)
            for k in range(3):
                ctx.write(fpart, (j, 4 * p + k), contrib[k])
        scratch.clear()

    prog.parallel(
        "merge_partials",
        [access("fpart", "w", "non-home")],
        merge_body,
    )

    def splash_update_body(ctx, env: Env) -> None:
        i = ctx.pos[0]
        pos, vel, fpart = env.agg("pos"), env.agg("vel"), env.agg("fpart")
        nodes = env.machine.config.n_nodes
        fx = fy = fz = 0.0
        for p in range(nodes):
            ctx.charge(3 * work_scale)
            fx += ctx.read(fpart, (i, 4 * p + 0))
            fy += ctx.read(fpart, (i, 4 * p + 1))
            fz += ctx.read(fpart, (i, 4 * p + 2))
        ri = read_vec(ctx, pos, i)
        vi = read_vec(ctx, vel, i)
        ctx.charge(9 * work_scale)
        vi = (vi[0] + fx * dt, vi[1] + fy * dt, vi[2] + fz * dt)
        ri = tuple(r + v * dt for r, v in zip(ri, vi))
        write_vec(ctx, vel, i, vi)
        write_vec(ctx, pos, i, ri)

    prog.parallel(
        "splash_update",
        [
            access("pos", "r", "home"),
            access("pos", "w", "home"),
            access("vel", "r", "home"),
            access("vel", "w", "home"),
            access("fpart", "r", "non-home"),
        ],
        splash_update_body,
    )

    molecule_rows = lambda env: rows(n)
    if variant == "splash":
        proc_rows = lambda env: [
            (p,) for p in range(env.machine.config.n_nodes)
        ]
        prog.build(
            prog.loop(
                iterations,
                prog.call("splash_interactions", over="pos", snapshot=["pos"],
                          elements=molecule_rows),
                prog.call("merge_partials", over="pslot", snapshot=[],
                          elements=proc_rows),
                prog.call("splash_update", over="pos",
                          snapshot=["pos", "vel", "fpart"],
                          elements=molecule_rows),
            )
        )
    elif variant == "splash-naive":
        prog.build(
            prog.loop(
                iterations,
                prog.call("zero_forces", over="force", elements=molecule_rows),
                prog.call("splash_naive_interactions", over="pos",
                          snapshot=["pos"], elements=molecule_rows),
                prog.call("update", over="pos",
                          snapshot=["pos", "vel", "force"],
                          elements=molecule_rows),
            )
        )
    else:
        prog.build(
            prog.loop(
                iterations,
                prog.call("interactions", over="force", snapshot=["pos"],
                          elements=molecule_rows),
                prog.call("update", over="pos", snapshot=["pos", "vel", "force"],
                          elements=molecule_rows),
            )
        )
    return prog


def reference(
    n: int = DEFAULTS["n"],
    iterations: int = DEFAULTS["iterations"],
    box: float = DEFAULTS["box"],
    dt: float = DEFAULTS["dt"],
) -> tuple[np.ndarray, np.ndarray]:
    """Sequential reference: returns (positions, velocities) after the run."""
    cutoff = box / 2.0
    pos = lattice_positions(n, box)
    vel = np.zeros_like(pos)
    for _ in range(iterations):
        force = np.zeros_like(pos)
        for i in range(n):
            for j in _neighbor_window(i, n):
                force[i] += np.array(_pair_force(pos[i], pos[j], cutoff))
        vel = vel + force * dt
        pos = pos + vel * dt
    return pos, vel
