"""Barnes: gravitational N-body simulation with a Barnes-Hut octree (§5.2).

"Barnes uses an oct-tree to represent bodies in 3-dimensional space. ... To
calculate the force on a body, the algorithm performs a depth-first traversal
of the tree.  If an interior node is sufficiently far away from the body, the
bodies in that region are approximated by a point mass at the center of mass
of the collection."  Table 1: 16384 bodies, 3 iterations (scaled default:
128 bodies, 3 iterations).

Phase structure per time step — exactly the paper's Figure 4:

1. **build_tree** — each body writes its leaf (position/mass) and the tree
   nodes its insertion created (geometry + child links): *unstructured
   writes* to ``tree``/``childs``, plus home reads of its own body row.
2. **center_of_mass** — a loop over tree levels, deepest first; each
   internal node averages its children: *home-only* accesses, so the
   compiler hoists a single directive out of the loop (the paper's
   "phase 3" optimization).
3. **compute_forces** — depth-first traversal with opening criterion
   ``size/dist < theta``; reads interior nodes and child links
   (*unstructured*), reads leaf bodies from ``bodies`` (*unstructured* —
   the remote-body reads that dominate communication), writes its own
   acceleration (*home*).
4. **update** — integrate velocities/positions: *home-only* owner writes,
   requiring a schedule by rule 1 (reached by compute_forces' unstructured
   body reads).

The octree structure itself is computed on the host each iteration (the
shared-memory traffic of building it is modelled by phase 1's writes, with
per-body insertion-depth compute charges); DFS numbering keeps subtrees
contiguous, which is what gives Barnes its excellent spatial locality at
large cache blocks (the paper's 1024-byte result).

``variant="spmd"`` models the hand-optimized SPMD program of Falsafi et
al. [5] under the write-update protocol: the tree is built locally (no
unstructured remote writes — each tree row is written by its home), and
consumers of tree rows and body rows receive pushed updates at the end of
each producing phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.common import OwnerMap, RowAligned, read_vec, rows, write_vec
from repro.cstar.driver import Env
from repro.cstar.embedded import EmbeddedProgram, LoopSpec, access
from repro.util.errors import SimulationError

DEFAULTS = dict(n=128, iterations=3, theta=0.6, dt=0.1, vel_scale=0.4, work_scale=1.0)
PAPER_SCALE = dict(n=16384, iterations=3, theta=0.6, dt=0.1, vel_scale=0.4)

#: tree row fields: cx, cy, cz, mass, half-size, is_leaf, body_id, depth
TREE_FIELDS = 8
BODY_FIELDS = 8  # x y z vx vy vz mass pad
MAX_DEPTH = 24
SOFTENING2 = 1e-4
G = 1.0


# --------------------------------------------------------------------------- #
# host-side octree structure
# --------------------------------------------------------------------------- #


@dataclass
class OctNode:
    center: np.ndarray
    half: float
    depth: int
    children: list[int] = field(default_factory=lambda: [-1] * 8)
    body: int = -1  # leaf body id, or -1 for internal
    creator: int = 0  # body whose insertion allocated this node


class Octree:
    """A Barnes-Hut octree built by successive insertion (host side)."""

    def __init__(self, positions: np.ndarray):
        lo = positions.min(axis=0)
        hi = positions.max(axis=0)
        center = (lo + hi) / 2
        half = float((hi - lo).max()) / 2 * 1.01 + 1e-9
        self.nodes: list[OctNode] = [OctNode(center=center, half=half, depth=0)]
        for b in range(len(positions)):
            self._insert(0, b, positions)

    def _octant(self, node: OctNode, p: np.ndarray) -> int:
        return (
            (1 if p[0] > node.center[0] else 0)
            | (2 if p[1] > node.center[1] else 0)
            | (4 if p[2] > node.center[2] else 0)
        )

    def _child_center(self, node: OctNode, o: int) -> np.ndarray:
        off = np.array(
            [1 if o & 1 else -1, 1 if o & 2 else -1, 1 if o & 4 else -1],
            dtype=float,
        )
        return node.center + off * (node.half / 2)

    def _new_node(self, parent: OctNode, o: int, creator: int) -> int:
        idx = len(self.nodes)
        self.nodes.append(
            OctNode(
                center=self._child_center(parent, o),
                half=parent.half / 2,
                depth=parent.depth + 1,
                creator=creator,
            )
        )
        return idx

    def _insert(self, root: int, b: int, positions: np.ndarray) -> None:
        node_idx = root
        while True:
            node = self.nodes[node_idx]
            if node.depth >= MAX_DEPTH:
                raise SimulationError(
                    "octree exceeded max depth (coincident bodies?)"
                )
            if node.body == -1 and all(c == -1 for c in node.children):
                if node_idx == 0 and len(self.nodes) == 1:
                    node.body = b  # first body lands in the root
                    return
                node.body = b
                return
            if node.body != -1:
                # leaf with one body: push the resident body down, then retry
                resident = node.body
                node.body = -1
                o = self._octant(node, positions[resident])
                child = self._new_node(node, o, creator=b)
                node.children[o] = child
                self.nodes[child].body = resident
                continue
            o = self._octant(node, positions[b])
            if node.children[o] == -1:
                node.children[o] = self._new_node(node, o, creator=b)
            node_idx = node.children[o]

    # -- DFS numbering and levels ------------------------------------------------

    def dfs_order(self) -> list[int]:
        order: list[int] = []
        stack = [0]
        while stack:
            i = stack.pop()
            order.append(i)
            for c in reversed(self.nodes[i].children):
                if c != -1:
                    stack.append(c)
        return order

    def depth_levels(self) -> list[list[int]]:
        """Internal-node ids grouped by depth (index = depth)."""
        levels: list[list[int]] = []
        for i, nd in enumerate(self.nodes):
            if nd.body != -1:
                continue
            while len(levels) <= nd.depth:
                levels.append([])
            levels[nd.depth].append(i)
        return levels


@dataclass
class TreeLayout:
    """Mapping between octree node ids and aggregate rows (per iteration)."""

    row_of: dict[int, int]
    node_of: dict[int, int]
    octree: Octree
    levels: list[list[int]]  # internal node ids per depth

    @classmethod
    def build(cls, positions: np.ndarray) -> "TreeLayout":
        tree = Octree(positions)
        order = tree.dfs_order()
        row_of = {node: row for row, node in enumerate(order)}
        node_of = {row: node for node, row in row_of.items()}
        return cls(row_of=row_of, node_of=node_of, octree=tree,
                   levels=tree.depth_levels())


# --------------------------------------------------------------------------- #
# shared force kernel
# --------------------------------------------------------------------------- #


def traverse_force(
    b: int,
    pos_b,
    theta: float,
    read_tree,
    read_child,
    read_body,
    root_row: int = 0,
):
    """Barnes-Hut force on body ``b`` via depth-first traversal.

    ``read_tree(row, f)``, ``read_child(row, o)``, ``read_body(i, f)`` are
    the data sources (ctx-based in the parallel body, array-based in the
    reference).  Returns ((ax, ay, az), cost).
    """
    ax = ay = az = 0.0
    cost = 0
    stack = [root_row]
    while stack:
        row = stack.pop()
        is_leaf = read_tree(row, 5) > 0.5
        cost += 6
        if is_leaf:
            j = int(read_tree(row, 6))
            if j == b:
                continue
            # exact leaf interaction from the body's own row
            jx = read_body(j, 0)
            jy = read_body(j, 1)
            jz = read_body(j, 2)
            jm = read_body(j, 6)
            dx, dy, dz = jx - pos_b[0], jy - pos_b[1], jz - pos_b[2]
            r2 = dx * dx + dy * dy + dz * dz + SOFTENING2
            inv = G * jm / (r2 * np.sqrt(r2))
            ax += inv * dx
            ay += inv * dy
            az += inv * dz
            cost += 12
            continue
        cx = read_tree(row, 0)
        cy = read_tree(row, 1)
        cz = read_tree(row, 2)
        mass = read_tree(row, 3)
        half = read_tree(row, 4)
        if mass <= 0.0:
            continue
        dx, dy, dz = cx - pos_b[0], cy - pos_b[1], cz - pos_b[2]
        r2 = dx * dx + dy * dy + dz * dz + SOFTENING2
        if (2.0 * half) * (2.0 * half) < theta * theta * r2:
            inv = G * mass / (r2 * np.sqrt(r2))
            ax += inv * dx
            ay += inv * dy
            az += inv * dz
            cost += 12
        else:
            for o in range(8):
                child_row = int(read_child(row, o))
                cost += 1
                if child_row >= 0:
                    stack.append(child_row)
    return (ax, ay, az), cost


# --------------------------------------------------------------------------- #
# the embedded program
# --------------------------------------------------------------------------- #


def max_tree_rows(n: int) -> int:
    return 8 * n + 64


def build(
    n: int = DEFAULTS["n"],
    iterations: int = DEFAULTS["iterations"],
    theta: float = DEFAULTS["theta"],
    dt: float = DEFAULTS["dt"],
    vel_scale: float = DEFAULTS["vel_scale"],
    work_scale: float = DEFAULTS["work_scale"],
    seed: int = 77,
    variant: str = "cstar",
) -> EmbeddedProgram:
    """``work_scale`` calibrates modelled compute cost per traversal step
    (see water.build)."""
    maxn = max_tree_rows(n)

    def setup(env: Env) -> None:
        nodes = env.machine.config.n_nodes
        # partition boundaries aligned to the home-assignment granularity
        # (Stache distributes at page granularity), as hand-partitioned
        # codes do; one tree/body row is 64 bytes
        align = max(1, env.machine.config.page_size // (BODY_FIELDS * 8))
        bodies = env.runtime.aggregate(
            "bodies", (n, BODY_FIELDS),
            dist=RowAligned(n, BODY_FIELDS, nodes, align=align),
        )
        # acc rows padded to 64 B so they partition identically to bodies
        env.runtime.aggregate(
            "acc", (n, 4), dist=RowAligned(n, 4, nodes, align=align), pad=2
        )
        # tree rows in DFS order, block-distributed: contiguous subtrees land
        # on one node, the source of Barnes' spatial locality
        env.runtime.aggregate(
            "tree", (maxn, TREE_FIELDS),
            dist=RowAligned(maxn, TREE_FIELDS, nodes, align=align),
        )
        env.runtime.aggregate(
            "childs", (maxn, 8), dtype="int",
            dist=RowAligned(maxn, 8, nodes, align=align),
        )
        rng = np.random.default_rng(seed)
        pts = rng.uniform(-1.0, 1.0, (n, 3))
        # a denser clump in one octant: the unbalanced tree of the paper
        pts[: n // 4] = rng.uniform(0.3, 0.9, (n // 4, 3))
        bodies.data[:, 0:3] = pts
        # initial velocities keep the tree structure changing between
        # iterations ("small structural changes" — paper §1), so schedules
        # accumulate some stale entries, as in the real workload
        bodies.data[:, 3:6] = vel_scale * rng.uniform(-1.0, 1.0, (n, 3))
        bodies.data[:, 6] = 1.0 / n

    prog = EmbeddedProgram(f"barnes-{variant}", setup)

    # ---- host: rebuild the octree structure from current positions --------
    def host_build_structure(env: Env) -> None:
        bodies = env.agg("bodies")
        layout = TreeLayout.build(bodies.data[:, 0:3].copy())
        if len(layout.octree.nodes) > maxn:
            raise SimulationError("octree overflow: raise max_tree_rows")
        env.state["layout"] = layout

    # ---- phase 1: build_tree ----------------------------------------------
    def build_body(ctx, env: Env) -> None:
        b = ctx.pos[0]
        layout: TreeLayout = env.state["layout"]
        bodies, tree, childs = env.agg("bodies"), env.agg("tree"), env.agg("childs")
        # read own body (home)
        x = ctx.read(bodies, (b, 0))
        y = ctx.read(bodies, (b, 1))
        z = ctx.read(bodies, (b, 2))
        m = ctx.read(bodies, (b, 6))
        # write every node this body's insertion created (geometry + links),
        # and its own leaf row: unstructured writes
        for node_id, nd in enumerate(layout.octree.nodes):
            if nd.creator != b and not (node_id == 0 and b == 0):
                continue
            row = layout.row_of[node_id]
            ctx.charge(4)
            if nd.body == -1:
                # internal node: geometry now, mass/cm in the upward pass
                ctx.write(tree, (row, 0), float(nd.center[0]))
                ctx.write(tree, (row, 1), float(nd.center[1]))
                ctx.write(tree, (row, 2), float(nd.center[2]))
                ctx.write(tree, (row, 5), 0.0)
                ctx.write(tree, (row, 6), -1.0)
                ctx.write(tree, (row, 3), 0.0)
            # a leaf's position/mass/flag are written by its resident body
            # below (possibly a different body than the creator)
            ctx.write(tree, (row, 4), float(nd.half))
            for o in range(8):
                c = nd.children[o]
                ctx.write(childs, (row, o), layout.row_of[c] if c != -1 else -1)
        # own leaf: mark and fill
        leaf_node = next(
            i for i, nd in enumerate(layout.octree.nodes) if nd.body == b
        )
        row = layout.row_of[leaf_node]
        ctx.charge(6)
        ctx.write(tree, (row, 0), float(x))
        ctx.write(tree, (row, 1), float(y))
        ctx.write(tree, (row, 2), float(z))
        ctx.write(tree, (row, 3), float(m))
        ctx.write(tree, (row, 5), 1.0)
        ctx.write(tree, (row, 6), float(b))

    prog.parallel(
        "build_tree",
        [
            access("bodies", "r", "home"),
            access("tree", "w", "non-home"),
            access("childs", "w", "non-home"),
        ],
        build_body,
    )

    # ---- phase 2: center of mass (per level, home-only) --------------------
    def com_body(ctx, env: Env) -> None:
        row = ctx.pos[0]
        tree, childs = env.agg("tree"), env.agg("childs")
        mx = my = mz = mass = 0.0
        for o in range(8):
            c = int(ctx.read(childs, (row, o)))
            ctx.charge(2)
            if c < 0:
                continue
            cm = ctx.read(tree, (c, 3))
            mx += ctx.read(tree, (c, 0)) * cm
            my += ctx.read(tree, (c, 1)) * cm
            mz += ctx.read(tree, (c, 2)) * cm
            mass += cm
            ctx.charge(6)
        if mass > 0.0:
            ctx.write(tree, (row, 0), mx / mass)
            ctx.write(tree, (row, 1), my / mass)
            ctx.write(tree, (row, 2), mz / mass)
        ctx.write(tree, (row, 3), mass)

    prog.parallel(
        "center_of_mass",
        [
            access("tree", "r", "home"),
            access("tree", "w", "home"),
            access("childs", "r", "home"),
        ],
        com_body,
    )

    # ---- phase 3: force computation -----------------------------------------
    def force_body(ctx, env: Env) -> None:
        b = ctx.pos[0]
        bodies, tree, childs, acc = (
            env.agg("bodies"), env.agg("tree"), env.agg("childs"), env.agg("acc")
        )
        pos_b = read_vec(ctx, bodies, b)
        (ax, ay, az), cost = traverse_force(
            b, pos_b, theta,
            lambda r, f: ctx.read(tree, (r, f)),
            lambda r, o: ctx.read(childs, (r, o)),
            lambda i, f: ctx.read(bodies, (i, f)),
        )
        ctx.charge(cost * work_scale)
        write_vec(ctx, acc, b, (ax, ay, az))

    prog.parallel(
        "compute_forces",
        [
            access("bodies", "r", "home"),
            access("bodies", "r", "non-home"),
            access("tree", "r", "non-home"),
            access("childs", "r", "non-home"),
            access("acc", "w", "home"),
        ],
        force_body,
    )

    # ---- phase 4: update ------------------------------------------------------
    def update_body(ctx, env: Env) -> None:
        b = ctx.pos[0]
        bodies, acc = env.agg("bodies"), env.agg("acc")
        a = read_vec(ctx, acc, b)
        v = tuple(ctx.read(bodies, (b, 3 + k)) for k in range(3))
        p = read_vec(ctx, bodies, b)
        ctx.charge(9 * work_scale)
        v = tuple(vk + ak * dt for vk, ak in zip(v, a))
        p = tuple(pk + vk * dt for pk, vk in zip(p, v))
        for k in range(3):
            ctx.write(bodies, (b, 3 + k), v[k])
            ctx.write(bodies, (b, k), p[k])

    prog.parallel(
        "update",
        [
            access("bodies", "r", "home"),
            access("bodies", "w", "home"),
            access("acc", "r", "home"),
        ],
        update_body,
    )

    # ---- SPMD variant: local tree build under write-update -------------------
    def tree_write_body(ctx, env: Env) -> None:
        """Each tree row's OWNER writes the fully-computed row (local build +
        local upward pass), as hand-written SPMD code does."""
        row = ctx.pos[0]
        layout: TreeLayout = env.state["layout"]
        node = layout.node_of.get(row)
        tree, childs = env.agg("tree"), env.agg("childs")
        ref = env.state["tree_values"]
        cref = env.state["child_values"]
        ctx.charge(6)
        for f in range(TREE_FIELDS):
            ctx.write(tree, (row, f), float(ref[row, f]))
        for o in range(8):
            ctx.write(childs, (row, o), int(cref[row, o]))

    prog.parallel(
        "tree_write",
        [
            access("tree", "w", "home"),
            access("childs", "w", "home"),
        ],
        tree_write_body,
    )

    def host_spmd_tree_values(env: Env) -> None:
        """Compute the full tree (values + links) host-side for the SPMD
        variant; tree_write then publishes rows from their owners."""
        layout: TreeLayout = env.state["layout"]
        bodies = env.agg("bodies")
        tvals = np.zeros((maxn, TREE_FIELDS))
        cvals = np.full((maxn, 8), -1, dtype=np.int64)
        for node_id, nd in enumerate(layout.octree.nodes):
            row = layout.row_of[node_id]
            tvals[row, 0:3] = nd.center
            tvals[row, 4] = nd.half
            if nd.body != -1:
                tvals[row, 0:3] = bodies.data[nd.body, 0:3]
                tvals[row, 3] = bodies.data[nd.body, 6]
                tvals[row, 5] = 1.0
                tvals[row, 6] = nd.body
            else:
                tvals[row, 5] = 0.0
                tvals[row, 6] = -1.0
            for o, c in enumerate(nd.children):
                if c != -1:
                    cvals[row, o] = layout.row_of[c]
        # upward pass, deepest first
        for level in reversed(layout.levels):
            for node_id in level:
                row = layout.row_of[node_id]
                mx = my = mz = mass = 0.0
                for o in range(8):
                    c = cvals[row, o]
                    if c < 0:
                        continue
                    cm = tvals[c, 3]
                    mx += tvals[c, 0] * cm
                    my += tvals[c, 1] * cm
                    mz += tvals[c, 2] * cm
                    mass += cm
                if mass > 0:
                    tvals[row, 0:3] = (mx / mass, my / mass, mz / mass)
                tvals[row, 3] = mass
        env.state["tree_values"] = tvals
        env.state["child_values"] = cvals

    # ---- main ------------------------------------------------------------------
    body_rows = lambda env: rows(n)

    def com_levels_count(env: Env) -> int:
        return len(env.state["layout"].levels)

    def com_level_reset(env: Env) -> None:
        env.state["com_level"] = len(env.state["layout"].levels)

    def com_level_next(env: Env) -> None:
        env.state["com_level"] -= 1

    def com_level_elements(env: Env):
        layout: TreeLayout = env.state["layout"]
        depth = env.state["com_level"]
        return [(layout.row_of[i], 0) for i in layout.levels[depth]]

    def active_tree_rows(env: Env):
        layout: TreeLayout = env.state["layout"]
        return [(r, 0) for r in range(len(layout.octree.nodes))]

    if variant == "spmd":
        prog.build(
            prog.loop(
                iterations,
                prog.stmt(host_build_structure),
                prog.stmt(host_spmd_tree_values),
                prog.call("tree_write", over="tree", snapshot=[],
                          elements=active_tree_rows),
                prog.call("compute_forces", over="acc",
                          snapshot=["bodies", "tree", "childs"],
                          elements=body_rows),
                prog.call("update", over="bodies", snapshot=["bodies", "acc"],
                          elements=body_rows),
            )
        )
    else:
        prog.build(
            prog.loop(
                iterations,
                prog.stmt(host_build_structure),
                prog.call("build_tree", over="bodies",
                          snapshot=["bodies"], elements=body_rows),
                prog.stmt(com_level_reset),
                prog.loop(
                    LoopSpec(count=com_levels_count),
                    prog.stmt(com_level_next),
                    prog.call("center_of_mass", over="tree",
                              snapshot=["tree", "childs"],
                              elements=com_level_elements),
                ),
                prog.call("compute_forces", over="acc",
                          snapshot=["bodies", "tree", "childs"],
                          elements=body_rows),
                prog.call("update", over="bodies", snapshot=["bodies", "acc"],
                          elements=body_rows),
            )
        )
    return prog


# --------------------------------------------------------------------------- #
# references
# --------------------------------------------------------------------------- #


def reference(
    n: int = DEFAULTS["n"],
    iterations: int = DEFAULTS["iterations"],
    theta: float = DEFAULTS["theta"],
    dt: float = DEFAULTS["dt"],
    vel_scale: float = DEFAULTS["vel_scale"],
    seed: int = 77,
):
    """Sequential Barnes-Hut with the same tree and traversal: values must
    match the simulated run exactly.  Returns (positions, velocities)."""
    rng = np.random.default_rng(seed)
    pos = rng.uniform(-1.0, 1.0, (n, 3))
    pos[: n // 4] = rng.uniform(0.3, 0.9, (n // 4, 3))
    vel = vel_scale * rng.uniform(-1.0, 1.0, (n, 3))
    mass = np.full(n, 1.0 / n)
    maxn = max_tree_rows(n)
    for _ in range(iterations):
        layout = TreeLayout.build(pos.copy())
        tvals = np.zeros((maxn, TREE_FIELDS))
        cvals = np.full((maxn, 8), -1, dtype=np.int64)
        for node_id, nd in enumerate(layout.octree.nodes):
            row = layout.row_of[node_id]
            tvals[row, 0:3] = nd.center
            tvals[row, 4] = nd.half
            if nd.body != -1:
                tvals[row, 0:3] = pos[nd.body]
                tvals[row, 3] = mass[nd.body]
                tvals[row, 5] = 1.0
                tvals[row, 6] = nd.body
            for o, c in enumerate(nd.children):
                if c != -1:
                    cvals[row, o] = layout.row_of[c]
        for level in reversed(layout.levels):
            for node_id in level:
                row = layout.row_of[node_id]
                mx = my = mz = m = 0.0
                for o in range(8):
                    c = cvals[row, o]
                    if c < 0:
                        continue
                    cm = tvals[c, 3]
                    mx += tvals[c, 0] * cm
                    my += tvals[c, 1] * cm
                    mz += tvals[c, 2] * cm
                    m += cm
                if m > 0:
                    tvals[row, 0:3] = (mx / m, my / m, mz / m)
                tvals[row, 3] = m
        acc = np.zeros((n, 3))
        for b in range(n):
            (ax, ay, az), _ = traverse_force(
                b, pos[b], theta,
                lambda r, f: tvals[r, f],
                lambda r, o: cvals[r, o],
                lambda i, f: pos[i, f] if f < 3 else mass[i],
            )
            acc[b] = (ax, ay, az)
        vel = vel + acc * dt
        pos = pos + vel * dt
    return pos, vel


def direct_reference(n=DEFAULTS["n"], seed=77):
    """O(n^2) accelerations for the initial configuration — used to check
    the Barnes-Hut approximation error is small."""
    rng = np.random.default_rng(seed)
    pos = rng.uniform(-1.0, 1.0, (n, 3))
    pos[: n // 4] = rng.uniform(0.3, 0.9, (n // 4, 3))
    mass = np.full(n, 1.0 / n)
    acc = np.zeros((n, 3))
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            d = pos[j] - pos[i]
            r2 = float(d @ d) + SOFTENING2
            acc[i] += G * mass[j] * d / (r2 * np.sqrt(r2))
    return acc
