"""Helpers shared by the benchmark applications."""

from __future__ import annotations

import numpy as np

from repro.cstar.runtime import Aggregate, Distribution, ElementContext


def rows(n: int):
    """Element list for one invocation per *row* of an (n, fields) aggregate
    (an element of a multi-field aggregate is the row object, not each
    field)."""
    return [(i, 0) for i in range(n)]


def read_vec(ctx: ElementContext, agg: Aggregate, row: int, k: int = 3) -> tuple:
    """Read fields 0..k-1 of a row of a (n, fields) aggregate."""
    read = ctx.read
    return tuple(float(read(agg, (row, f))) for f in range(k))


def write_vec(ctx: ElementContext, agg: Aggregate, row: int, values) -> None:
    for f, v in enumerate(values):
        ctx.write(agg, (row, f), float(v))


class RowAligned(Distribution):
    """Distribute rows of a (n, fields) aggregate in contiguous per-node
    chunks (keeps pos/vel/force rows co-owned).

    ``align`` rounds the chunk size up to a multiple (typically the number
    of rows per cache block), so ownership boundaries coincide with block
    boundaries — hand-partitioned SPMD codes do this to avoid false sharing
    across partitions.
    """

    def __init__(self, rows: int, fields: int, nodes: int, align: int = 1):
        self.rows = rows
        self.fields = fields
        self.nodes = nodes
        self.align = max(1, align)

    def owner(self, idx) -> int:
        per = -(-self.rows // self.nodes)
        per = -(-per // self.align) * self.align
        return min(idx[0] // per, self.nodes - 1)

    def validate(self, shape) -> None:
        from repro.util.errors import ConfigError

        if tuple(shape) != (self.rows, self.fields):
            raise ConfigError(f"RowAligned({self.rows},{self.fields}) != {shape}")


class OwnerMap(Distribution):
    """Distribution given by an explicit row -> node array (for tree
    aggregates whose ownership follows an application structure)."""

    def __init__(self, owners: np.ndarray, fields: int | None = None):
        self.owners = np.asarray(owners, dtype=np.int64)
        self.fields = fields

    def owner(self, idx) -> int:
        return int(self.owners[idx[0]])

    def validate(self, shape) -> None:
        from repro.util.errors import ConfigError

        if shape[0] != len(self.owners):
            raise ConfigError(
                f"OwnerMap covers {len(self.owners)} rows, aggregate has {shape[0]}"
            )
        if self.fields is not None and (len(shape) != 2 or shape[1] != self.fields):
            raise ConfigError(f"OwnerMap expects (n, {self.fields}), got {shape}")


def lattice_positions(n: int, box: float, seed: int = 1234) -> np.ndarray:
    """Deterministic jittered-lattice initial positions inside a cubic box."""
    side = int(np.ceil(n ** (1.0 / 3.0)))
    rng = np.random.default_rng(seed)
    pts = []
    spacing = box / side
    for i in range(side):
        for j in range(side):
            for k in range(side):
                if len(pts) == n:
                    break
                base = np.array([i, j, k], dtype=float) * spacing + spacing / 2
                pts.append(base + rng.uniform(-0.05, 0.05, 3) * spacing)
    return np.array(pts[:n])
