"""Dynamic coherence invariants, checked at every phase barrier.

The static audit (:mod:`repro.protocols.verify`) proves the transition
*table* is complete; this monitor checks that the *executed* protocol kept
its promises.  It is attached through ``machine.phase_hooks`` and inspects
the genuinely authoritative state — per-node tag tables
(:mod:`repro.tempest.tags`) against directory entries
(:mod:`repro.protocols.directory`) — at each point the machine claims
quiescence (a released phase barrier).

Invariants (all evaluated per cache block):

* **single-writer / multi-reader** — at most one node holds a READ_WRITE
  tag, and a writer excludes readers elsewhere.  The write-update protocol
  deliberately keeps the home writable while consumers hold read-only
  copies (it trades sequential consistency for push efficiency, paper
  §3.2), so its profile sets ``home_writer_may_coexist``.
* **directory–cache agreement** — every stable directory state implies an
  exact tag pattern: IDLE means only home holds the block; SHARED means
  home + sharers are readable and nobody writable; EXCLUSIVE means exactly
  the owner is writable.
* **no lost invalidations** — no non-home node retains a copy the
  directory does not account for (a stale copy is precisely what a dropped
  or unacknowledged invalidation leaves behind).
* **quiescence** — at a phase barrier nothing is in flight: no BUSY
  directory entries, no queued pending requests, no outstanding faults,
  no deferred cache messages.

A failure raises :class:`CoherenceViolation` carrying the protocol name,
the workload seed, and the tie-break schedule recorded so far — everything
needed to replay the exact interleaving.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.protocols.directory import DirState
from repro.tempest.tags import AccessTag
from repro.util.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover
    from repro.tempest.machine import Machine


class CoherenceViolation(ReproError):
    """A dynamic coherence invariant failed.

    Structured: ``invariant`` names the broken rule, ``detail`` the exact
    states involved, and ``seed``/``schedule`` replay the interleaving
    (``repro verify --replay SEED`` / ``ReplayPolicy(schedule)``).
    """

    def __init__(self, invariant: str, detail: str, *, protocol: str = "?",
                 phase: str = "?", seed: int | None = None,
                 schedule: list[int] | None = None):
        self.invariant = invariant
        self.detail = detail
        self.protocol = protocol
        self.phase = phase
        self.seed = seed
        self.schedule = list(schedule) if schedule else []
        super().__init__(self.report())

    def report(self) -> str:
        lines = [
            f"coherence violation: {self.invariant}",
            f"  protocol: {self.protocol}",
            f"  phase:    {self.phase}",
            f"  detail:   {self.detail}",
        ]
        if self.seed is not None:
            lines.append(f"  seed:     {self.seed} (replay: repro verify --replay {self.seed})")
        lines.append(f"  schedule: {self.schedule or '(FIFO order)'}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-safe form; :meth:`from_dict` rebuilds an equivalent violation.

        Includes the ``fault_events`` list that :func:`repro.verify.oracle.
        run_workload` attaches after construction, so a violation can cross
        a farm worker boundary without losing its injection record.
        """
        return {
            "invariant": self.invariant,
            "detail": self.detail,
            "protocol": self.protocol,
            "phase": self.phase,
            "seed": self.seed,
            "schedule": list(self.schedule),
            "fault_events": [ev.to_dict()
                             for ev in getattr(self, "fault_events", [])],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CoherenceViolation":
        from repro.faults.plan import FaultEvent

        violation = cls(
            data["invariant"], data["detail"],
            protocol=data["protocol"], phase=data["phase"],
            seed=data["seed"], schedule=data["schedule"],
        )
        violation.fault_events = [FaultEvent.from_dict(ev)
                                  for ev in data.get("fault_events", [])]
        return violation


@dataclass
class InvariantProfile:
    """Which invariants apply to a protocol family."""

    #: write-update keeps the home writable next to registered readers
    home_writer_may_coexist: bool = False
    #: states treated as stable sharing (directory agreement checked)
    shared_states: frozenset = frozenset({DirState.SHARED})


PROFILES: dict[str, InvariantProfile] = {
    "stache": InvariantProfile(),
    "predictive": InvariantProfile(),
    "write-update": InvariantProfile(
        home_writer_may_coexist=True,
        shared_states=frozenset({"UPDATE_SHARED"}),
    ),
}


def profile_for(protocol_name: str) -> InvariantProfile:
    return PROFILES.get(protocol_name, InvariantProfile())


def dead_node_references(machine: "Machine", nodes=None) -> list[str]:
    """Every directory or schedule reference to a down node, as report lines.

    ``nodes`` defaults to the machine's currently-down set (empty without a
    crash controller).  Used two ways: the crash controller self-checks with
    the just-detected node right after recovery, and the invariant monitor
    asserts the set is empty at every phase barrier.
    """
    if nodes is None:
        ctl = getattr(machine, "crash_controller", None)
        nodes = set() if ctl is None else set(ctl.down)
    if not nodes:
        return []
    refs: list[str] = []
    directory = getattr(machine.protocol, "directory", None)
    if directory is not None:
        for entry in directory.known():
            if entry.home in nodes:
                refs.append(f"entry homed at dead node: {entry!r}")
            if entry.owner in nodes:
                refs.append(f"dead owner: {entry!r}")
            dead_sharers = entry.sharers & nodes
            if dead_sharers:
                refs.append(f"dead sharers {sorted(dead_sharers)}: {entry!r}")
            if entry.in_service in nodes:
                refs.append(f"dead requester in service: {entry!r}")
            dead_pending = sorted({p.requester for p in entry.pending} & nodes)
            if dead_pending:
                refs.append(f"dead pending requesters {dead_pending}: {entry!r}")
    schedules = getattr(machine.protocol, "schedules", None)
    if schedules is not None:
        for sched in schedules.values():
            for e in sched:
                where = f"schedule {sched.directive_id} block {e.block}"
                if machine.home(e.block) in nodes:
                    refs.append(f"{where}: homed at dead node")
                dead_readers = e.readers & nodes
                if dead_readers:
                    refs.append(f"{where}: dead readers {sorted(dead_readers)}")
                if e.writer in nodes:
                    refs.append(f"{where}: dead writer {e.writer}")
    return refs


@dataclass
class InvariantMonitor:
    """Checks coherence invariants at every phase barrier of one machine.

    Attach with :meth:`attach`; context for violation reports (seed, the
    live tie-break policy) can be set once and is sampled lazily at raise
    time.
    """

    seed: int | None = None
    policy: object | None = None  # TieBreakPolicy, for its recorded schedule
    checks_run: int = field(default=0)

    def attach(self, machine: "Machine") -> "InvariantMonitor":
        machine.phase_hooks.append(self._on_phase_end)
        return self

    # -- hook ---------------------------------------------------------------

    def _on_phase_end(self, machine: "Machine", trace) -> None:
        self.check(machine, phase=trace.name)

    def _raise(self, machine: "Machine", phase: str, invariant: str, detail: str):
        schedule = list(getattr(self.policy, "choices", []) or [])
        raise CoherenceViolation(
            invariant, detail,
            protocol=machine.protocol.name, phase=phase,
            seed=self.seed, schedule=schedule,
        )

    # -- the checks ---------------------------------------------------------

    def check(self, machine: "Machine", phase: str = "?") -> None:
        """Run every invariant against the machine's current state."""
        self.checks_run += 1
        prof = profile_for(machine.protocol.name)
        self._check_quiescence(machine, phase)
        self._check_dead_nodes(machine, phase)
        self._check_tags_vs_directory(machine, phase, prof)

    def _check_dead_nodes(self, machine: "Machine", phase: str) -> None:
        """No directory entry or schedule may reference a down node."""
        refs = dead_node_references(machine)
        if refs:
            shown = "; ".join(refs[:5])
            if len(refs) > 5:
                shown += f" (+{len(refs) - 5} more)"
            self._raise(machine, phase, "dead-node-reference", shown)

    def _check_quiescence(self, machine: "Machine", phase: str) -> None:
        if machine.engine.pending:
            self._raise(machine, phase, "quiescence",
                        f"{machine.engine.pending} events still queued at the barrier")
        outstanding = getattr(machine.protocol, "outstanding", {})
        if outstanding:
            self._raise(machine, phase, "quiescence",
                        f"outstanding faults never completed: {sorted(outstanding)}")
        deferred = getattr(machine.protocol, "_deferred", {})
        if deferred:
            self._raise(machine, phase, "quiescence",
                        f"deferred cache messages never serviced: {sorted(deferred)}")
        transport = getattr(machine, "_transport", None)
        if transport is not None:
            if transport.unacked:
                self._raise(machine, phase, "quiescence",
                            f"{transport.unacked} transport send(s) still "
                            f"unacknowledged at the barrier")
            if transport.held_back:
                self._raise(machine, phase, "quiescence",
                            f"{transport.held_back} out-of-order message(s) "
                            f"still held back at the barrier")
        directory = getattr(machine.protocol, "directory", None)
        if directory is None:
            return
        for entry in directory.known():
            if entry.state in DirState.BUSY:
                self._raise(machine, phase, "quiescence",
                            f"directory entry still busy at the barrier: {entry!r}")
            if entry.pending:
                self._raise(machine, phase, "quiescence",
                            f"requests still pending at the barrier: {entry!r}")

    def _check_tags_vs_directory(self, machine: "Machine", phase: str,
                                 prof: InvariantProfile) -> None:
        # Gather per-block holders from the authoritative tag tables.
        readers: dict[int, set[int]] = {}
        writers: dict[int, set[int]] = {}
        for node in machine.nodes:
            for block in node.tags.blocks_with_tag(AccessTag.READ_ONLY):
                readers.setdefault(block, set()).add(node.id)
            for block in node.tags.blocks_with_tag(AccessTag.READ_WRITE):
                writers.setdefault(block, set()).add(node.id)

        # single-writer / multi-reader
        for block in set(readers) | set(writers):
            ws = writers.get(block, set())
            rs = readers.get(block, set())
            home = machine.home(block)
            if len(ws) > 1:
                self._raise(machine, phase, "single-writer",
                            f"block {block}: multiple writable copies at nodes {sorted(ws)}")
            if ws and rs:
                coexist_ok = prof.home_writer_may_coexist and ws == {home}
                if not coexist_ok:
                    self._raise(
                        machine, phase, "single-writer",
                        f"block {block}: writable copy at {sorted(ws)} coexists "
                        f"with readable copies at {sorted(rs)}")

        directory = getattr(machine.protocol, "directory", None)
        if directory is None:
            return

        # directory state -> exact tag pattern
        tracked: set[int] = set()
        for entry in directory.known():
            block, home = entry.block, entry.home
            tracked.add(block)
            rs = readers.get(block, set())
            ws = writers.get(block, set())
            if entry.state == DirState.IDLE:
                if (rs | ws) - {home}:
                    self._raise(machine, phase, "directory-agreement",
                                f"{entry!r} is IDLE but remote copies exist: "
                                f"readers={sorted(rs)} writers={sorted(ws)}")
                if home not in ws:
                    self._raise(machine, phase, "directory-agreement",
                                f"{entry!r} is IDLE but home holds no writable copy")
            elif entry.state in prof.shared_states:
                stale = rs - entry.sharers - {home}
                if stale:
                    self._raise(machine, phase, "lost-invalidation",
                                f"{entry!r}: nodes {sorted(stale)} hold readable "
                                f"copies the directory does not list")
                missing = entry.sharers - rs - ws
                if missing:
                    self._raise(machine, phase, "directory-agreement",
                                f"{entry!r}: recorded sharers {sorted(missing)} "
                                f"hold no readable copy")
                if ws and not (prof.home_writer_may_coexist and ws == {home}):
                    self._raise(machine, phase, "directory-agreement",
                                f"{entry!r} is shared but nodes {sorted(ws)} hold "
                                f"writable copies")
            elif entry.state == DirState.EXCLUSIVE:
                if ws != {entry.owner}:
                    self._raise(machine, phase, "directory-agreement",
                                f"{entry!r}: owner should be the only writer, "
                                f"but writers={sorted(ws)}")
                if rs:
                    self._raise(machine, phase, "lost-invalidation",
                                f"{entry!r} is EXCLUSIVE but nodes {sorted(rs)} "
                                f"still hold readable copies")

        # no lost invalidations on untracked blocks: a non-home copy of a
        # block the directory has never seen can only come from a protocol
        # granting data without recording it
        for block in (set(readers) | set(writers)) - tracked:
            home = machine.home(block)
            holders = (readers.get(block, set()) | writers.get(block, set())) - {home}
            if holders:
                self._raise(machine, phase, "lost-invalidation",
                            f"block {block}: nodes {sorted(holders)} hold copies "
                            f"but the home directory has no entry")
