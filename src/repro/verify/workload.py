"""Randomized fuzz workloads: seeded, replayable coherence stress sessions.

A workload is an ordinary recorded session (the same shape
:mod:`repro.tempest.tracefile` saves and replays) generated from one seed:
iterative phase groups whose access patterns mix the paper's motifs —
producer/consumer blocks, multi-reader fan-in to one home, migratory
read-modify-write, same-phase read+write conflicts, and adaptive growth
(new readers appearing in later iterations).

Two dialects, chosen per seed:

* **home-owned writes** (even seeds) — every write targets a block its
  writer is home for, the SPMD discipline the write-update protocol
  requires; these sessions run under all three protocols and feed the
  differential oracle.
* **remote writes allowed** (odd seeds) — writers fault on other nodes'
  blocks, driving Stache/predictive through the EXCLUSIVE / recall /
  writeback paths that home-owned traffic never reaches; these sessions
  run under the invalidate-family protocols only.

Each block has at most one writer per phase, so the final memory image
(last writer + write count per block) is a deterministic function of the
session — the property the differential oracle checks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.tempest.machine import PhaseTrace
from repro.util.config import MachineConfig

#: protocols compatible with each workload dialect
INVALIDATE_PROTOCOLS = ("stache", "predictive")
ALL_PROTOCOLS = ("stache", "write-update", "predictive")


@dataclass
class Workload:
    """One generated fuzz session plus the context needed to run it."""

    seed: int
    config: MachineConfig
    events: list = field(default_factory=list)
    regions: list = field(default_factory=list)
    protocols: tuple = ALL_PROTOCOLS

    @property
    def session(self) -> tuple[list, list]:
        return self.events, self.regions

    def describe(self) -> str:
        phases = sum(1 for e in self.events if e[0] == "phase")
        return (f"workload seed={self.seed} nodes={self.config.n_nodes} "
                f"phases={phases} protocols={','.join(self.protocols)}")


def generate_workload(seed: int) -> Workload:
    """Deterministically generate the fuzz workload for ``seed``."""
    rng = random.Random(seed ^ 0x5EED)
    home_owned = seed % 2 == 0

    n_nodes = rng.randint(2, 4)
    block_size = 32
    blocks_per_page = 4
    page_size = block_size * blocks_per_page
    pages_per_node = rng.randint(1, 2)
    n_pages = n_nodes * pages_per_node
    cfg = MachineConfig(n_nodes=n_nodes, block_size=block_size, page_size=page_size)

    homes = [p % n_nodes for p in range(n_pages)]
    regions = [{"name": "data", "size": n_pages * page_size, "homes": homes}]
    # the address space reserves page 0 (null), so the region's first block
    # is one page's worth of blocks in — use global block indices throughout
    first_block = blocks_per_page
    blocks = range(first_block, first_block + n_pages * blocks_per_page)
    home_of = {b: homes[(b - first_block) // blocks_per_page] for b in blocks}

    n_directives = rng.randint(1, 3)
    iterations = rng.randint(2, 3)

    # Per directive: a base access pattern that stays mostly stable across
    # iterations (so the predictive schedule is usually right) plus a chance
    # of adaptive growth each iteration.
    directives = []
    for d in range(n_directives):
        written: dict[int, int] = {}  # block -> writer (unique per phase)
        for b in blocks:
            if rng.random() < 0.5:
                if home_owned:
                    written[b] = home_of[b]
                else:
                    written[b] = rng.randrange(n_nodes)
        readers: dict[int, set[int]] = {
            b: {n for n in range(n_nodes) if rng.random() < 0.4}
            for b in blocks
        }
        directives.append({"written": written, "readers": readers})

    events: list = []
    for it in range(iterations):
        for d, pat in enumerate(directives):
            # adaptive growth: occasionally a new reader joins a block
            if it > 0 and rng.random() < 0.5:
                b = rng.choice(list(blocks))
                pat["readers"][b].add(rng.randrange(n_nodes))
            ops: list[list] = [[] for _ in range(n_nodes)]
            for node in range(n_nodes):
                node_ops: list = []
                for b, writer in pat["written"].items():
                    if writer == node:
                        node_ops.append(("w", b))
                for b, rs in pat["readers"].items():
                    if node in rs:
                        node_ops.append(("r", b))
                rng.shuffle(node_ops)
                # migratory read-modify-write: re-read a block just written
                if node_ops and rng.random() < 0.3:
                    k = rng.randrange(len(node_ops))
                    kind, b = node_ops[k]
                    if kind == "w":
                        node_ops.insert(k, ("r", b))
                # intersperse compute charges so processors desynchronize;
                # quantized so timestamps still collide across nodes, which
                # is what creates tie-break choice points to explore
                final_ops: list = []
                for op in node_ops:
                    if rng.random() < 0.4:
                        final_ops.append(("c", 50 * rng.randint(1, 8)))
                    final_ops.append(op)
                ops[node] = final_ops
            events.append(("begin_group", d))
            events.append(("phase", PhaseTrace(f"d{d}-it{it}", ops)))
            events.append(("end_group",))

    return Workload(
        seed=seed,
        config=cfg,
        events=events,
        regions=regions,
        protocols=ALL_PROTOCOLS if home_owned else INVALIDATE_PROTOCOLS,
    )


def expected_observables(workload: Workload) -> dict:
    """The trace-determined ground truth the differential oracle checks.

    Pure function of the session: per-block reader set, writer set, write
    count, and final (last-writer, write-count) image in program order.
    """
    readers: dict[int, set[int]] = {}
    writers: dict[int, set[int]] = {}
    write_counts: dict[int, int] = {}
    last_writer: dict[int, int] = {}
    for ev in workload.events:
        if ev[0] != "phase":
            continue
        trace: PhaseTrace = ev[1]
        for node, ops in enumerate(trace.ops):
            for op in ops:
                if op[0] == "r":
                    readers.setdefault(op[1], set()).add(node)
                elif op[0] == "w":
                    writers.setdefault(op[1], set()).add(node)
                    write_counts[op[1]] = write_counts.get(op[1], 0) + 1
                    last_writer[op[1]] = node
    return {
        "readers": readers,
        "writers": writers,
        "image": {b: (last_writer[b], write_counts[b]) for b in last_writer},
    }


def make_bundled_sessions() -> dict[str, Workload]:
    """The small, deterministic sessions checked in under examples/traces/.

    Home-owned seeds so every bundled trace runs under all three protocols.
    """
    return {
        "producer_consumer.trace": generate_workload(6),
        "multireader_fanin.trace": generate_workload(30),
        "adaptive_growth.trace": generate_workload(38),
    }
