"""Run a workload under one protocol + interleaving; differential compare.

The oracle's claim: a coherence protocol must never change *observable*
execution — the per-block reader/writer sets and the final memory image
(last writer + write count per block) are fully determined by the access
trace, whatever protocol or legal message order serves it.  Pre-sending in
particular (the paper's optimization) may only move data earlier, never
alter what the processors read and write.

:func:`run_workload` replays one session through a machine wrapped in an
:class:`~repro.verify.interleave.ExplorerEngine`, with the
:class:`~repro.verify.monitor.InvariantMonitor` attached; any protocol
error, simulation deadlock, or invariant failure surfaces as a structured
:class:`~repro.verify.monitor.CoherenceViolation` carrying the seed and
the recorded tie-break schedule.  :func:`differential_check` then compares
each protocol's observables against the trace-derived ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.factory import make_machine
from repro.sim.stats import RunStats
from repro.tempest.tracefile import replay_session
from repro.util.errors import ProtocolError, SimulationError, TransportTimeout
from repro.verify.interleave import ExplorerEngine, FifoPolicy, TieBreakPolicy
from repro.verify.monitor import CoherenceViolation, InvariantMonitor
from repro.verify.workload import Workload, expected_observables


@dataclass
class Observables:
    """What one run exposed to the outside world."""

    protocol: str
    readers: dict[int, set[int]] = field(default_factory=dict)
    writers: dict[int, set[int]] = field(default_factory=dict)
    image: dict[int, tuple[int, int]] = field(default_factory=dict)
    stats: RunStats | None = None
    #: faults actually injected during the run (empty without a fault plan)
    fault_events: list = field(default_factory=list)
    #: learned schedule records (``CommSchedule.to_record``), filled only
    #: when the run was asked to harvest for the durable corpus
    harvest: list = field(default_factory=list)

    def record(self, node: int, block: int, kind: str) -> None:
        if kind == "r":
            self.readers.setdefault(block, set()).add(node)
        else:
            self.writers.setdefault(block, set()).add(node)
            last, count = self.image.get(block, (node, 0))
            self.image[block] = (node, count + 1)


def run_workload(
    workload: Workload,
    protocol: str,
    policy: TieBreakPolicy | None = None,
    max_events: int | None = 2_000_000,
    fault_plan=None,
    tracer=None,
    fast: bool = False,
    warm=None,
    harvest: bool = False,
) -> Observables:
    """Replay ``workload`` under ``protocol`` with policy-driven tie-breaks.

    ``fault_plan`` optionally arms a :class:`repro.faults.plan.FaultPlan` on
    the machine (see :meth:`Machine.install_fault_plan`); an inactive plan
    changes nothing.  ``tracer`` optionally attaches a
    :class:`repro.obs.events.Tracer` (``machine.attach_tracer``) so fault
    campaigns can export event timelines.  ``fast=True`` runs the compiled
    fast path (:mod:`repro.fastpath`) — only honoured under FIFO
    tie-breaking, since its calendar queue dispatches in exactly the
    reference FIFO order; exploratory or replay policies fall back to the
    reference :class:`ExplorerEngine`.  ``warm`` optionally seeds corpus
    schedule records into the protocol before the run (see
    :meth:`PredictiveProtocol.warm_seed`); ``harvest=True`` collects the
    learned schedules into ``Observables.harvest`` afterwards so the
    caller can persist them.  Raises
    :class:`CoherenceViolation` on any invariant failure, protocol error,
    transport timeout, or deadlock, with the seed, schedule, and injected
    fault events attached for replay.
    """
    use_fast = fast and (policy is None or type(policy) is FifoPolicy)
    policy = policy if policy is not None else FifoPolicy()
    if use_fast:
        from repro.fastpath.calqueue import FastEngine

        engine = FastEngine(default_max_events=max_events)
        machine = make_machine(workload.config, protocol, engine=engine,
                               fast=True, warm=warm)
    else:
        engine = ExplorerEngine(policy, default_max_events=max_events)
        machine = make_machine(workload.config, protocol, engine=engine,
                               warm=warm)
    if fault_plan is not None:
        machine.install_fault_plan(fault_plan)
    if tracer is not None:
        machine.attach_tracer(tracer)
    monitor = InvariantMonitor(seed=workload.seed, policy=policy)
    monitor.attach(machine)
    obs = Observables(protocol=protocol)
    machine.access_hooks.append(obs.record)

    def injected() -> list:
        inj = machine.fault_injector
        return list(inj.injected) if inj is not None else []

    try:
        obs.stats = replay_session(workload.session, machine)
        monitor.check(machine, phase="end-of-run")
    except CoherenceViolation as violation:
        violation.fault_events = injected()
        raise
    except (ProtocolError, SimulationError) as exc:
        if isinstance(exc, TransportTimeout):
            invariant = "transport-timeout"
        elif "deadlock" in str(exc):
            invariant = "deadlock"
        else:
            invariant = "protocol-error"
        violation = CoherenceViolation(
            invariant, str(exc),
            protocol=protocol, phase="(during run)",
            seed=workload.seed, schedule=list(policy.choices),
        )
        violation.fault_events = injected()
        raise violation from exc
    obs.fault_events = injected()
    if harvest:
        store = getattr(machine.protocol, "schedules", None)
        if store is not None:
            obs.harvest = [s.to_record() for s in store.values()
                           if s.entries]
    return obs


def differential_check(workload: Workload, observed: dict[str, Observables]) -> None:
    """Compare every protocol's observables against the trace ground truth.

    Each run's observables must match the program-order expectation exactly;
    transitively, all protocols therefore agree with each other.  Raises
    :class:`CoherenceViolation` (invariant ``differential``) on mismatch.
    """
    expected = expected_observables(workload)
    for proto, obs in observed.items():
        for label, got, want in [
            ("reader sets", obs.readers, expected["readers"]),
            ("writer sets", obs.writers, expected["writers"]),
            ("final memory image", obs.image, expected["image"]),
        ]:
            if got != want:
                diff_blocks = sorted(
                    b for b in set(got) | set(want) if got.get(b) != want.get(b)
                )[:8]
                detail = (
                    f"{proto} diverged from the trace-determined {label} on "
                    f"blocks {diff_blocks}: "
                    + "; ".join(
                        f"block {b}: got {got.get(b)!r}, expected {want.get(b)!r}"
                        for b in diff_blocks[:3]
                    )
                )
                raise CoherenceViolation(
                    "differential", detail,
                    protocol=proto, phase="end-of-run", seed=workload.seed,
                )
