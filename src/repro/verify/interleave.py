"""Interleaving exploration: pluggable tie-break over same-timestamp events.

The base :class:`~repro.sim.engine.Engine` breaks ties between events with
equal timestamps in FIFO (schedule) order, which makes runs reproducible but
exercises exactly one of the many *legal* message orders — two messages that
arrive at the same instant are semantically unordered, so a correct protocol
must tolerate every permutation.  :class:`ExplorerEngine` exposes that choice
as a :class:`TieBreakPolicy`:

* :class:`FifoPolicy` — the base engine's order (always index 0);
* :class:`SeededRandomPolicy` — a seeded pseudo-random pick at every choice
  point, so one seed names one complete interleaving;
* :class:`ReplayPolicy` — follow a recorded choice list, then fall back to
  FIFO; this is what makes violation traces replayable and shrinkable;
* :class:`DfsPolicy` — used by :func:`explore_dfs` to enumerate distinct
  interleavings systematically (bounded depth-first search over choice
  points, in the stateless-model-checking style).

Every policy records its decisions in ``choices`` and the number of ready
events it chose among in ``frontiers``; together with the workload seed this
is a complete, replayable schedule.
"""

from __future__ import annotations

import heapq
import random
from typing import Callable, Iterator

from repro.sim.engine import Engine, Event


class TieBreakPolicy:
    """Decides which of several same-timestamp events dispatches first."""

    def __init__(self) -> None:
        #: index chosen at each choice point (frontier size 1 is skipped)
        self.choices: list[int] = []
        #: frontier size at each recorded choice point
        self.frontiers: list[int] = []

    def choose(self, frontier: list[Event]) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def pick(self, frontier: list[Event]) -> int:
        """Record-keeping wrapper around :meth:`choose`."""
        if len(frontier) == 1:
            return 0
        i = self.choose(frontier)
        self.choices.append(i)
        self.frontiers.append(len(frontier))
        return i

    def describe(self) -> str:
        return type(self).__name__


class FifoPolicy(TieBreakPolicy):
    """The base engine's deterministic order: lowest sequence number first."""

    def choose(self, frontier: list[Event]) -> int:
        return 0


class SeededRandomPolicy(TieBreakPolicy):
    """Uniform random tie-breaks from one seed = one named interleaving."""

    def __init__(self, seed: int) -> None:
        super().__init__()
        self.seed = seed
        self._rng = random.Random(seed)

    def choose(self, frontier: list[Event]) -> int:
        return self._rng.randrange(len(frontier))

    def describe(self) -> str:
        return f"SeededRandomPolicy(seed={self.seed})"


class ReplayPolicy(TieBreakPolicy):
    """Follow a recorded choice prefix, then fall back to FIFO.

    Choices beyond the current frontier size are clamped, so a schedule
    recorded against one run stays applicable to slightly perturbed reruns
    (this is what lets shrinking cut the schedule down to a prefix).
    """

    def __init__(self, schedule: list[int]) -> None:
        super().__init__()
        self.schedule = list(schedule)
        self._cursor = 0

    def choose(self, frontier: list[Event]) -> int:
        if self._cursor < len(self.schedule):
            i = min(self.schedule[self._cursor], len(frontier) - 1)
            self._cursor += 1
            return i
        return 0

    def describe(self) -> str:
        return f"ReplayPolicy({self.schedule})"


class DfsPolicy(ReplayPolicy):
    """ReplayPolicy that keeps recording after the prefix (for DFS search)."""


class ExplorerEngine(Engine):
    """An engine whose same-timestamp dispatch order is policy-controlled.

    With :class:`FifoPolicy` it is behaviourally identical to the base
    engine.  ``default_max_events`` bounds every :meth:`run` call so a
    protocol bug that livelocks under an adversarial order is reported as
    a :class:`~repro.util.errors.SimulationError` instead of hanging the
    fuzzer.
    """

    def __init__(self, policy: TieBreakPolicy | None = None,
                 default_max_events: int | None = 2_000_000) -> None:
        super().__init__()
        self.policy = policy if policy is not None else FifoPolicy()
        self.default_max_events = default_max_events

    def _next_event(self) -> Event | None:
        self._prune_cancelled_front()
        if not self._queue:
            return None
        t = self._queue[0].time
        frontier: list[Event] = []
        while self._queue and self._queue[0].time == t:
            ev = heapq.heappop(self._queue)
            if not ev.cancelled:
                frontier.append(ev)
        # heap pops arrive in (time, seq) order, so the frontier is already
        # sorted by seq — choice indices are therefore stable across replays
        i = self.policy.pick(frontier)
        chosen = frontier.pop(i)
        for ev in frontier:
            heapq.heappush(self._queue, ev)
        return chosen

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        if max_events is None:
            max_events = self.default_max_events
        return super().run(until=until, max_events=max_events)


def explore_dfs(
    run: Callable[[TieBreakPolicy], object],
    max_runs: int = 64,
    max_depth: int = 12,
) -> Iterator[tuple[list[int], object]]:
    """Bounded depth-first enumeration of distinct interleavings.

    ``run(policy)`` must execute the workload from scratch under ``policy``
    and return an arbitrary result.  Yields ``(choice_prefix, result)`` per
    executed schedule.  Branching is limited to the first ``max_depth``
    choice points; at most ``max_runs`` schedules execute.  Exceptions from
    ``run`` propagate to the caller (they are the interesting outcome).
    """
    stack: list[list[int]] = [[]]
    executed = 0
    while stack and executed < max_runs:
        prefix = stack.pop()
        policy = DfsPolicy(prefix)
        result = run(policy)
        executed += 1
        # Branch on every choice point this run passed beyond its prefix:
        # sibling schedules take alternative indices at that point.
        for pos in range(len(prefix), min(len(policy.choices), max_depth)):
            width = policy.frontiers[pos]
            base = policy.choices[:pos]
            for alt in range(width - 1, 0, -1):
                if alt != policy.choices[pos]:
                    stack.append(base + [alt])
        yield policy.choices[:], result
