"""Dynamic protocol verification: model checking + fuzzing.

The static audit in :mod:`repro.protocols.verify` checks transition-table
*completeness*; this package checks transition *behaviour* by execution:

* :mod:`~repro.verify.interleave` — tie-break policies over same-timestamp
  events (seeded-random and bounded-DFS schedulers), so one workload yields
  many legal message orders;
* :mod:`~repro.verify.monitor` — coherence invariants (single-writer,
  directory/cache agreement, no lost invalidations, quiescence) checked at
  every phase barrier, raising replayable :class:`CoherenceViolation`\\ s;
* :mod:`~repro.verify.workload` — seeded random fuzz sessions;
* :mod:`~repro.verify.oracle` — differential execution across protocols
  with trace-derived ground truth;
* :mod:`~repro.verify.fuzz` — the campaign driver with schedule shrinking,
  surfaced as the ``repro verify`` CLI command.
"""

from repro.verify.fuzz import (
    FuzzReport,
    ViolationRecord,
    dfs_explore_seed,
    fuzz,
    replay_seed,
    shrink_schedule,
    verify_trace_file,
)
from repro.verify.interleave import (
    DfsPolicy,
    ExplorerEngine,
    FifoPolicy,
    ReplayPolicy,
    SeededRandomPolicy,
    TieBreakPolicy,
    explore_dfs,
)
from repro.verify.monitor import (
    PROFILES,
    CoherenceViolation,
    InvariantMonitor,
    InvariantProfile,
    profile_for,
)
from repro.verify.oracle import Observables, differential_check, run_workload
from repro.verify.workload import (
    ALL_PROTOCOLS,
    INVALIDATE_PROTOCOLS,
    Workload,
    expected_observables,
    generate_workload,
    make_bundled_sessions,
)

__all__ = [
    "ALL_PROTOCOLS",
    "CoherenceViolation",
    "DfsPolicy",
    "ExplorerEngine",
    "FifoPolicy",
    "FuzzReport",
    "INVALIDATE_PROTOCOLS",
    "InvariantMonitor",
    "InvariantProfile",
    "Observables",
    "PROFILES",
    "ReplayPolicy",
    "SeededRandomPolicy",
    "TieBreakPolicy",
    "ViolationRecord",
    "Workload",
    "dfs_explore_seed",
    "differential_check",
    "expected_observables",
    "explore_dfs",
    "fuzz",
    "profile_for",
    "generate_workload",
    "make_bundled_sessions",
    "replay_seed",
    "run_workload",
    "shrink_schedule",
    "verify_trace_file",
]
