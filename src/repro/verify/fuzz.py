"""The fuzz driver: many seeds x protocols x interleavings, with shrinking.

One *seed* names one generated workload (:mod:`repro.verify.workload`) and
one pseudo-random tie-break schedule per protocol.  Every run executes under
the invariant monitor; home-owned seeds additionally cross-check all
protocols through the differential oracle.  A failure is captured as a
:class:`~repro.verify.monitor.CoherenceViolation` and then **shrunk**: the
recorded tie-break schedule is bisected to the shortest prefix that still
reproduces a violation (the suffix falls back to deterministic FIFO), so
counterexamples replay from a handful of choices instead of thousands.

``repro verify`` (see :mod:`repro.cli`) is a thin front-end over
:func:`fuzz` and :func:`verify_trace_file`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.farm.jobs import derive_seed
from repro.obs.metrics import MetricsRegistry, registry_from_run
from repro.tempest.tracefile import load_session
from repro.util.config import MachineConfig
from repro.verify.interleave import ReplayPolicy, SeededRandomPolicy, explore_dfs
from repro.verify.monitor import CoherenceViolation
from repro.verify.oracle import Observables, differential_check, run_workload
from repro.verify.workload import (
    ALL_PROTOCOLS,
    Workload,
    generate_workload,
)

FUZZ_SCHEMA = "repro.fuzz/v1"


@dataclass
class ViolationRecord:
    """One caught violation plus its minimized replay schedule."""

    seed: int
    protocol: str
    violation: CoherenceViolation
    minimized_schedule: list[int] | None = None
    shrink_runs: int = 0

    def report(self) -> str:
        lines = [self.violation.report()]
        if self.minimized_schedule is not None:
            lines.append(
                f"  minimized: {len(self.minimized_schedule)} choice(s) "
                f"{self.minimized_schedule} (shrunk in {self.shrink_runs} reruns)"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "protocol": self.protocol,
            "violation": self.violation.to_dict(),
            "minimized_schedule": self.minimized_schedule,
            "shrink_runs": self.shrink_runs,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ViolationRecord":
        return cls(
            seed=data["seed"], protocol=data["protocol"],
            violation=CoherenceViolation.from_dict(data["violation"]),
            minimized_schedule=data["minimized_schedule"],
            shrink_runs=data["shrink_runs"],
        )


@dataclass
class FuzzReport:
    """Aggregate outcome of one fuzz campaign."""

    seeds: int = 0
    runs: int = 0
    protocols: tuple = ALL_PROTOCOLS
    violations: list[ViolationRecord] = field(default_factory=list)
    #: per-run simulator metrics, labelled by protocol, merged across seeds
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        lines = [
            f"fuzzed {self.seeds} seed(s), {self.runs} run(s) across "
            f"protocols {', '.join(self.protocols)} in {self.elapsed:.1f}s"
        ]
        if self.ok:
            lines.append("no coherence violations found")
        else:
            lines.append(f"{len(self.violations)} VIOLATION(S):")
            for rec in self.violations:
                lines.append(rec.report())
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """Canonical JSON-safe report — everything except wall-clock time.

        This is the determinism surface: a farmed campaign's ``to_dict``
        must equal the sequential campaign's byte for byte (``elapsed`` is
        host time, so it is deliberately excluded).
        """
        return {
            "schema": FUZZ_SCHEMA,
            "seeds": self.seeds,
            "runs": self.runs,
            "protocols": list(self.protocols),
            "ok": self.ok,
            "violations": [rec.to_dict() for rec in self.violations],
            "metrics": self.metrics.to_dict(),
        }


def shrink_schedule(
    fails: Callable[[list[int]], bool], schedule: list[int]
) -> tuple[list[int], int]:
    """Bisect ``schedule`` to a minimal failing prefix.

    ``fails(prefix)`` reruns the workload with ``prefix`` as the tie-break
    schedule (FIFO beyond it) and reports whether a violation reproduces.
    Returns ``(minimal_prefix, reruns)``.
    """
    runs = 0

    def check(prefix: list[int]) -> bool:
        nonlocal runs
        runs += 1
        return fails(prefix)

    if check([]):
        return [], runs
    lo, hi = 0, len(schedule)  # invariant: fails at hi, passes at lo
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if check(schedule[:mid]):
            hi = mid
        else:
            lo = mid
    minimal = schedule[:hi]
    # a trailing 0 is the FIFO default — dropping it cannot change the run,
    # but confirm by rerun in case the bisection landed on a fluke
    while minimal and minimal[-1] == 0 and check(minimal[:-1]):
        minimal = minimal[:-1]
    return minimal, runs


def _fails_with(workload: Workload, protocol: str) -> Callable[[list[int]], bool]:
    def fails(prefix: list[int]) -> bool:
        try:
            run_workload(workload, protocol, ReplayPolicy(prefix))
        except CoherenceViolation:
            return True
        return False

    return fails


def fuzz_seed_job(spec: dict) -> dict:
    """Run one seed's complete fuzz work; a pure function of ``spec``.

    ``spec`` is transport-safe (``{"seed", "protocols", "shrink"}``, plus
    the optional corpus envelope: ``"warm"`` maps protocol names to
    schedule records seeded before the run, ``"harvest"`` asks the job to
    return the learned records) and the result is a JSON-safe dict — this
    is the unit the campaign farm ships to workers, and the exact same
    function the sequential path folds, which is what makes ``--jobs N``
    reports byte-identical to ``--jobs 1``.  Warm envelopes are computed
    coordinator-side (the worker never opens the corpus), so a farmed
    campaign warms identically however the seeds are sharded.

    Each protocol's tie-break stream is seeded with
    ``derive_seed(seed, protocol)``: a stable hash of the run's identity,
    so protocols no longer share one interleaving stream and a sharded
    campaign explores exactly the orders the sequential one would.
    """
    seed = int(spec["seed"])
    protocols = tuple(spec["protocols"])
    shrink = bool(spec["shrink"])
    warm = spec.get("warm", {})
    harvest = bool(spec.get("harvest"))
    workload = generate_workload(seed)
    run_protocols = [p for p in workload.protocols if p in protocols]
    registry = MetricsRegistry()
    out: dict = {"seed": seed, "runs": 0, "violations": [], "progress": [],
                 "harvest": {}}
    observed: dict[str, Observables] = {}
    for protocol in run_protocols:
        policy = SeededRandomPolicy(derive_seed(seed, protocol))
        out["runs"] += 1
        try:
            obs = run_workload(workload, protocol, policy,
                               warm=warm.get(protocol), harvest=harvest)
        except CoherenceViolation as violation:
            rec = ViolationRecord(seed=seed, protocol=protocol, violation=violation)
            if shrink and violation.schedule:
                rec.minimized_schedule, rec.shrink_runs = shrink_schedule(
                    _fails_with(workload, protocol), violation.schedule
                )
            elif shrink:
                rec.minimized_schedule, rec.shrink_runs = [], 0
            out["violations"].append(rec.to_dict())
            out["progress"].append(
                f"seed {seed} [{protocol}]: VIOLATION ({violation.invariant})"
            )
            continue
        observed[protocol] = obs
        registry.update(registry_from_run(obs.stats, protocol=protocol))
        if harvest and obs.harvest:
            out["harvest"][protocol] = obs.harvest
    if observed:
        try:
            differential_check(workload, observed)
        except CoherenceViolation as violation:
            out["violations"].append(
                ViolationRecord(seed=seed, protocol=violation.protocol,
                                violation=violation).to_dict()
            )
            out["progress"].append(f"seed {seed}: DIFFERENTIAL mismatch")
    out["metrics"] = registry.to_dict()
    return out


def _fold_seed_result(report: FuzzReport, result: dict,
                      progress: Callable[[str], None] | None) -> None:
    """Fold one :func:`fuzz_seed_job` result into the campaign report."""
    report.seeds += 1
    report.runs += result["runs"]
    for rec in result["violations"]:
        report.violations.append(ViolationRecord.from_dict(rec))
    report.metrics.update(MetricsRegistry.from_dict(result["metrics"]))
    if progress:
        for message in result["progress"]:
            progress(message)


def fuzz(
    seeds: int = 50,
    protocols: Sequence[str] | None = None,
    first_seed: int = 0,
    shrink: bool = True,
    progress: Callable[[str], None] | None = None,
    jobs: int = 1,
    tracer=None,
    farm_transport=None,
    corpus=None,
) -> FuzzReport:
    """Fuzz ``seeds`` workloads under adversarial interleavings.

    ``jobs > 1`` shards the seeds across a local worker farm
    (:func:`repro.farm.coordinator.run_farm`); ``farm_transport``
    overrides the farm backend (the multi-host socket transport).  The
    folded report's :meth:`~FuzzReport.to_dict` is byte-identical to the
    sequential one.  ``tracer`` (farm runs only) receives the farm's
    lifecycle events.  ``corpus`` (a :func:`repro.corpus.open_corpus`
    handle) warm-starts each seed's schedule-learning protocols from
    persisted schedules and harvests what the fault-free runs learned back
    into the store; all corpus traffic happens coordinator-side, so farmed
    and sequential campaigns warm identically and workers stay stateless.
    """
    report = FuzzReport(protocols=tuple(protocols) if protocols else ALL_PROTOCOLS)
    t0 = time.perf_counter()
    specs = [
        {"seed": seed, "protocols": list(report.protocols), "shrink": shrink}
        for seed in range(first_seed, first_seed + seeds)
    ]
    #: seed -> protocol -> (corpus key, n_nodes), for the harvest fold
    corpus_keys: dict[int, dict[str, tuple[str, int]]] = {}
    if corpus is not None:
        from repro.corpus import supports_warm, workload_key

        for spec in specs:
            workload = generate_workload(spec["seed"])
            spec["harvest"] = True
            spec["warm"] = {}
            keys = corpus_keys[spec["seed"]] = {}
            for protocol in report.protocols:
                if protocol not in workload.protocols:
                    continue
                if not supports_warm(protocol):
                    continue
                key = workload_key(workload, protocol)
                keys[protocol] = (key, workload.config.n_nodes)
                entry = corpus.lookup(key, workload.config.n_nodes)
                if entry is not None:
                    spec["warm"][protocol] = entry["records"]
    if farm_transport is not None or (jobs > 1 and len(specs) > 1):
        from repro.farm.coordinator import run_farm
        from repro.farm.jobs import FarmJob

        farm = run_farm(
            [FarmJob(index=i, kind="fuzz-seed", params=spec)
             for i, spec in enumerate(specs)],
            n_workers=jobs, tracer=tracer, progress=progress,
            transport=farm_transport,
        )
        results = [farm.results[i] for i in range(len(specs))]
    else:
        results = (fuzz_seed_job(spec) for spec in specs)
    for i, result in enumerate(results):
        _fold_seed_result(report, result, progress)
        if corpus is not None:
            _store_harvest(corpus, result,
                           corpus_keys.get(result["seed"], {}))
        if progress and i % 25 == 24:
            progress(f"... {i + 1}/{seeds} seeds")
    report.elapsed = time.perf_counter() - t0
    return report


def _store_harvest(corpus, result: dict,
                   keys: dict[str, tuple[str, int]]) -> None:
    """Persist one seed job's learned schedules (fault-free learning only)."""
    for protocol, records in sorted((result.get("harvest") or {}).items()):
        known = keys.get(protocol)
        if known is None or not records:
            continue
        key, n_nodes = known
        corpus.store(key, {"protocol": protocol, "n_nodes": n_nodes,
                           "records": records})


def replay_seed(seed: int, protocols: Sequence[str] | None = None) -> FuzzReport:
    """Re-run exactly one seed (the replay path printed in violations)."""
    return fuzz(seeds=1, first_seed=seed, protocols=protocols)


def dfs_explore_seed(
    seed: int,
    protocol: str,
    max_runs: int = 64,
    max_depth: int = 10,
) -> tuple[int, list[ViolationRecord]]:
    """Systematically enumerate interleavings of one workload (bounded DFS).

    Returns ``(schedules_executed, violations)``.  A protocol the workload's
    dialect does not support (write-update needs home-owned writes) explores
    zero schedules.
    """
    workload = generate_workload(seed)
    if protocol not in workload.protocols:
        return 0, []
    violations: list[ViolationRecord] = []
    executed = 0

    def run_once(policy):
        return run_workload(workload, protocol, policy)

    gen = explore_dfs(run_once, max_runs=max_runs, max_depth=max_depth)
    while True:
        try:
            next(gen)
        except StopIteration:
            break
        except CoherenceViolation as violation:
            rec = ViolationRecord(seed=seed, protocol=protocol, violation=violation)
            rec.minimized_schedule, rec.shrink_runs = shrink_schedule(
                _fails_with(workload, protocol), violation.schedule
            )
            violations.append(rec)
            break
        executed += 1
    return executed, violations


# -- bundled-trace verification --------------------------------------------------


def verify_trace_file(
    path: str | Path,
    protocols: Sequence[str] = ALL_PROTOCOLS,
    config: MachineConfig | None = None,
    seeds_per_protocol: int = 2,
) -> FuzzReport:
    """Replay a saved session file under each protocol + several orders.

    The session must carry its recorded regions (``record_regions``) so homes
    can be restored.  Each protocol runs once in FIFO order and then under
    ``seeds_per_protocol`` seeded-random interleavings, all monitored.
    """
    events, regions = load_session(path)
    n_nodes = next(len(ev[1].ops) for ev in events if ev[0] == "phase")
    cfg = config or MachineConfig(n_nodes=n_nodes, block_size=32, page_size=128)
    report = FuzzReport(protocols=tuple(protocols))
    t0 = time.perf_counter()
    workload = Workload(seed=-1, config=cfg, events=events, regions=regions,
                        protocols=tuple(protocols))
    observed: dict[str, Observables] = {}
    for protocol in protocols:
        policies = [None] + [SeededRandomPolicy(s) for s in range(seeds_per_protocol)]
        for policy in policies:
            report.runs += 1
            try:
                obs = run_workload(workload, protocol, policy)
            except CoherenceViolation as violation:
                report.violations.append(
                    ViolationRecord(seed=-1, protocol=protocol, violation=violation)
                )
                continue
            observed[protocol] = obs
            report.metrics.update(registry_from_run(obs.stats, protocol=protocol))
    if observed:
        try:
            differential_check(workload, observed)
        except CoherenceViolation as violation:
            report.violations.append(
                ViolationRecord(seed=-1, protocol=violation.protocol,
                                violation=violation)
            )
    report.seeds = 1
    report.elapsed = time.perf_counter() - t0
    return report
