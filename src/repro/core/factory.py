"""Construction helpers: machine + protocol by name.

The paper evaluates each application under several protocol configurations;
this registry is the single place the harness, tests, and examples use to
instantiate them.
"""

from __future__ import annotations

from repro.core.predictive import PredictiveProtocol
from repro.protocols.stache import StacheProtocol
from repro.protocols.writeupdate import WriteUpdateProtocol
from repro.tempest.machine import Machine
from repro.util.config import MachineConfig
from repro.util.errors import ConfigError

PROTOCOLS = {
    StacheProtocol.name: StacheProtocol,
    PredictiveProtocol.name: PredictiveProtocol,
    WriteUpdateProtocol.name: WriteUpdateProtocol,
}


def make_machine(config: MachineConfig, protocol: str = "stache",
                 engine=None, fast: bool = False, warm=None) -> Machine:
    """Create a simulated machine running the named coherence protocol.

    ``protocol`` is one of ``"stache"`` (the write-invalidate default),
    ``"predictive"`` (the paper's contribution), or ``"write-update"``
    (the hand-optimized SPMD baseline's custom protocol).  ``engine``
    optionally supplies a pre-built event engine — the verification
    subsystem passes an :class:`~repro.verify.interleave.ExplorerEngine`
    here to fuzz message interleavings.  ``fast=True`` selects the
    compiled fast path (:mod:`repro.fastpath`): a calendar-queue engine,
    packed tag tables, and the analyze/specialize/schedule pipeline, with
    behaviour bit-identical to the reference path.  ``warm`` optionally
    supplies schedule records (``CommSchedule.to_record`` dicts, e.g. from
    the durable corpus) seeded into the protocol before the run so
    pre-sends start at iteration 1; protocols without schedule support
    silently ignore it.
    """
    cls = PROTOCOLS.get(protocol)
    if cls is None:
        raise ConfigError(
            f"unknown protocol {protocol!r}; available: {sorted(PROTOCOLS)}"
        )
    if fast:
        from repro.fastpath.calqueue import FastEngine

        if engine is None:
            engine = FastEngine()
        elif not isinstance(engine, FastEngine):
            raise ConfigError(
                "fast=True requires a FastEngine (or no engine argument); "
                f"got {type(engine).__name__}"
            )
    machine = Machine(config, cls, engine=engine)
    if fast:
        machine.use_fastpath()
    if warm and hasattr(machine.protocol, "warm_seed"):
        machine.protocol.warm_seed(warm)
    return machine
