"""Runtime directives placed by the C** compiler (paper §4).

The compiler does not identify communication *patterns*; it only identifies
*program points* where potentially repetitive communication occurs and brackets
them with directives.  At runtime:

* ``BEGIN_PHASE`` invokes the pre-send part of the predictive protocol using
  the directive's schedule, then enables schedule recording for the covered
  parallel calls;
* ``END_PHASE`` disables recording;
* ``FLUSH_SCHEDULE`` discards a schedule (used when an application's pattern
  change includes many deletions, §3.3 — exposed for programs/ablations, not
  placed automatically).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field


class DirectiveKind(enum.Enum):
    BEGIN_PHASE = "begin_phase"
    END_PHASE = "end_phase"
    FLUSH_SCHEDULE = "flush_schedule"


_ids = itertools.count(1)


@dataclass(frozen=True)
class Directive:
    """A compiler-assigned phase-group identity.

    One ``Directive`` corresponds to one static program point; its ``id``
    keys the communication schedule that persists across dynamic executions
    of that point.
    """

    id: int
    label: str = ""

    @staticmethod
    def fresh(label: str = "") -> "Directive":
        return Directive(id=next(_ids), label=label)

    def __repr__(self) -> str:
        lbl = f" {self.label!r}" if self.label else ""
        return f"<Directive #{self.id}{lbl}>"
