"""The predictive cache-coherence protocol (paper §3.3-3.4).

``PredictiveProtocol`` extends Stache in two ways, exactly as the paper
describes:

1. **Schedule building.**  Home-node request handlers are augmented: while
   execution is inside a compiler-directed phase group, every faulting
   GET_RO / GET_RW routed through the home is recorded into that directive's
   :class:`~repro.core.schedule.CommSchedule`.  Schedules grow incrementally;
   read+write of one block within the same phase instance marks it a
   *conflict* block.

2. **Pre-send.**  At the start of a subsequent execution of the phase group,
   every node walks the schedule slice it is home for and executes
   anticipated actions early (§3.4):

   * ``READ`` entries — invalidate/recall any current writer, then forward
     read-only copies to all recorded readers;
   * ``WRITE`` entries — invalidate current readers or writer, then forward
     a writable copy to the recorded writer;
   * ``CONFLICT`` entries — no action.

   Neighboring blocks bound for the same destination are coalesced into bulk
   messages to amortize message startup cost.  A global barrier ends the
   pre-send phase so every block is in a state the default protocol expects.

Modelling note: pre-send precedes all computation of the phase and ends with
a barrier, so invalidations issued during pre-send need no acknowledgements
(the barrier subsumes them), and the rare recall of a remote writer's copy is
accounted synchronously in the home's walk (a full request/response round
trip of cost) rather than through transient directory states.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.schedule import (
    CommSchedule,
    EntryKind,
    ScheduleStore,
    coalesce_blocks,
)
from repro.obs.events import EventKind as Ev
from repro.protocols.directory import DirState
from repro.protocols.messages import MessageKind as MK
from repro.protocols.stache import StacheProtocol
from repro.tempest.network import Message
from repro.tempest.tags import AccessTag
from repro.util.errors import ProtocolError

if TYPE_CHECKING:  # pragma: no cover
    from repro.tempest.machine import Machine


class PredictiveProtocol(StacheProtocol):
    """Stache + communication-schedule prediction.

    Two class-level knobs support the ablation benchmarks:

    * ``coalesce_presend`` — transfer runs of neighboring blocks as bulk
      messages (§3.4).  Off: one message per block.
    * ``rebuild_every_group`` — discard the schedule at every pre-send
      (the inspector-executor-style "rebuild whenever anything changed"
      policy the paper's incremental schedules avoid).
    * ``anticipate_conflicts`` — implement §3.4's suggested extension:
      for a conflict block, "anticipate the first stable block state (read
      or write) before the conflict occurred" instead of doing nothing.

    Robustness knobs (graceful degradation — correctness never depends on a
    prediction, so every fallback is merely plain Stache for a while):

    * ``max_schedules`` — bound on live schedules; least-recently-used
      directive sites are evicted and relearned on return.
    * ``degrade_patience`` / ``degrade_cooldown`` — pre-sent copies are
      judged *deferred*: a copy only counts as wasted once the schedule
      pre-sends it again and it was never accessed in the interim (so it
      was invalidated unconsumed), and any access to a pre-sent copy — in
      whatever later phase — resets the schedule's waste streak.  After
      ``degrade_patience`` consecutive confirmed wastes the schedule is
      flushed and the directive falls back to plain Stache for
      ``degrade_cooldown`` instances before learning afresh.  Deferred
      judgment is what keeps degradation off genuine workloads: a directive
      whose pre-sends are consumed by a *different* aliased phase, or whose
      recall merely brings the block home before the home reads it, is
      helping even though its own instance never touches the copies.  Only
      schedules that are chronically wrong — corrupted, stale, or predicting
      for a consumer that never comes back while a writer keeps invalidating
      the copy — accumulate confirmed wastes.
    """

    name = "predictive"
    coalesce_presend = True
    rebuild_every_group = False
    anticipate_conflicts = False
    max_schedules = 64
    degrade_patience = 3
    degrade_cooldown = 2

    def __init__(self, machine: "Machine") -> None:
        super().__init__(machine)
        self.schedules = ScheduleStore(self.max_schedules)
        #: (dst, block) pairs pre-sent in the current group (for usefulness stats)
        self._presented: set[tuple[int, int]] = set()
        self.presend_messages = 0
        self.presend_blocks = 0
        #: set while a group's schedule is frozen (injected staleness or a
        #: degradation cooldown): home handlers skip incremental recording
        self._suppress_learning = False
        #: deferred judgment of pre-sent copies: (dst, block) -> the schedule
        #: that transferred it, pending until the copy is either accessed
        #: (useful) or pre-sent again unconsumed (confirmed waste)
        self._pending_judgment: dict[tuple[int, int], CommSchedule] = {}
        machine.access_hooks.append(self._judge_access)
        self.schedules.on_evict = self._note_evict

    def _note_evict(self, directive_id: int) -> None:
        obs = self.machine.obs
        if obs.enabled:
            obs.emit(Ev.SCHED_EVICT, self.machine.engine.now,
                     evicted_directive=directive_id)

    # -- schedule access -----------------------------------------------------------

    def schedule_for(self, directive_id: int) -> CommSchedule:
        return self.schedules.fetch(directive_id)

    def flush_schedule(self, directive_id: int) -> None:
        """FLUSH_SCHEDULE directive: rebuild from empty (§3.3)."""
        if directive_id in self.schedules:
            self.schedules[directive_id].flush()
            obs = self.machine.obs
            if obs.enabled:
                obs.emit(Ev.SCHED_FLUSH, self.machine.engine.now,
                         flushed_directive=directive_id)

    def warm_seed(self, records) -> int:
        """Install corpus records as starting schedules; returns how many took.

        Seeded schedules enter through the same :meth:`ScheduleStore.insert`
        path a checkpoint restore uses, so the first ``begin_group`` at a
        seeded directive pre-sends immediately (iteration 1) instead of
        spending it learning.  A warmed schedule is an *optimization input*,
        never a trust boundary: a wrong one merely mispredicts, which the
        deferred-judgment degradation machinery already absorbs.  Records
        that fail to decode are skipped — corpus damage must never surface
        as a simulation exception — and sites that already hold a schedule
        are left alone (live learning outranks the corpus).
        """
        installed = 0
        obs = self.machine.obs
        for record in records or ():
            try:
                sched = CommSchedule.from_record(record)
            except Exception:
                continue
            if not sched.entries or sched.directive_id in self.schedules:
                continue
            self.schedules.insert(sched)
            installed += 1
            if obs.enabled:
                obs.emit(Ev.SCHED_WARM, self.machine.engine.now,
                         warmed_directive=sched.directive_id,
                         entries=len(sched.entries))
        return installed

    # -- part 1: building schedules (augmented home handlers) -----------------------

    def _handle(self, msg: Message, t: float) -> None:
        directive = self.machine.current_directive
        if (directive is not None and msg.kind in MK.REQUESTS
                and not self._suppress_learning):
            kind = "r" if msg.kind == MK.GET_RO else "w"
            self.schedule_for(directive).record(msg.block, msg.src, kind)
        super()._handle(msg, t)

    # -- part 2: pre-send ------------------------------------------------------------

    def begin_group(self, directive_id: int, t: float) -> list[float]:
        """Walk schedules at every home node; pre-send data; return per-node
        send-side completion times (the machine adds the closing barrier)."""
        sched = self.schedule_for(directive_id)
        if self.rebuild_every_group:
            sched.flush()
        sched.begin_instance()
        self._presented.clear()
        self._suppress_learning = False
        obs = self.machine.obs
        if sched.wasted_streak >= self.degrade_patience:
            sched.degrade(self.degrade_cooldown)
            self.machine.stats.schedules_degraded += 1
            if obs.enabled:
                obs.emit(Ev.SCHED_DEGRADE, t,
                         cooldown=self.degrade_cooldown)
            self._pending_judgment = {
                pair: owner for pair, owner in self._pending_judgment.items()
                if owner is not sched
            }
        injector = self.machine.fault_injector
        if injector is not None:
            action = injector.schedule_fault(directive_id)
            if action == "stale":
                # The schedule stops tracking reality this instance: pre-send
                # from it as-is, but record none of this instance's faults.
                self._suppress_learning = True
                if obs.enabled:
                    obs.emit(Ev.SCHED_STALE, t)
            elif action == "corrupt":
                self._corrupt_schedule(sched)
                if obs.enabled:
                    obs.emit(Ev.SCHED_CORRUPT, t, entries=len(sched.entries))
        if sched.cooldown > 0:
            # Degraded: this phase group runs as plain Stache while the
            # misprediction source (hopefully) passes.
            sched.cooldown -= 1
            self._suppress_learning = True
            return None
        if not sched.entries:
            # Nothing learned yet (first execution, or just flushed): no
            # pre-send phase, so no pre-send barrier either.
            return None
        cfg = self.config
        completions: list[float] = []
        for node in self.machine.nodes:
            cursor = t
            entries = sched.entries_for_home(self.machine.home, node.id)
            # (dst, tag) -> blocks to transfer in bulk
            outgoing: dict[tuple[int, AccessTag], list[int]] = {}
            for entry in entries:
                cursor += cfg.presend_entry_cost
                kind = entry.kind
                if kind is EntryKind.CONFLICT:
                    if not self.anticipate_conflicts:
                        continue  # no anticipated action (§3.4)
                    # extension: act as if the block were in its last stable
                    # state before the conflict appeared
                    kind = entry.pre_conflict_kind
                    if kind is None or (kind is EntryKind.WRITE
                                        and entry.writer is None):
                        continue
                if kind is EntryKind.READ:
                    cursor = self._presend_read(node.id, entry, cursor,
                                                outgoing, sched)
                else:
                    cursor = self._presend_write(node.id, entry, cursor, outgoing)
            cursor = self._send_bulk(node.id, outgoing, cursor, sched)
            completions.append(cursor)
        return completions

    def end_group(self, directive_id: int, t: float) -> None:
        """Account pre-sent blocks the receiver never touched (redundant
        transfers from untracked deletions or over-wide blocks), and fold
        the outcome into the schedule's degradation tracking."""
        presented = len(self._presented)
        useless = 0
        for dst, block in self._presented:
            if not self.machine.was_accessed(dst, block):
                self.machine.node(dst).stats.presend_useless_blocks += 1
                useless += 1
        self._presented.clear()
        self._suppress_learning = False
        sched = self.schedules.get(directive_id)
        if sched is not None:
            sched.note_presend_outcome(presented, useless)
            sched.fold_instance_judgment()
        obs = self.machine.obs
        if obs.enabled and presented:
            obs.emit(Ev.PRESEND_OUTCOME, t, presented=presented,
                     useless=useless)

    def _corrupt_schedule(self, sched: CommSchedule) -> None:
        """Injected corruption: flip every entry's anticipated direction.

        Deterministic, and only ever *mis-predicts* — the pre-send walk keeps
        the directory consistent whatever the entries claim, so a corrupted
        schedule costs useless transfers and re-faults, never coherence.
        """
        for entry in sched.entries.values():
            if entry.kind is EntryKind.READ and entry.readers:
                entry.kind = EntryKind.WRITE
                entry.writer = min(entry.readers)
            elif entry.kind is EntryKind.WRITE and entry.writer is not None:
                entry.kind = EntryKind.READ
                entry.readers.add(entry.writer)

    # -- crash recovery --------------------------------------------------------------

    def on_node_crashed(self, node: int, t: float) -> None:
        super().on_node_crashed(node, t)
        # Copies pre-sent to the dead node died with its caches: they are
        # neither wasted predictions nor useful ones, so they leave deferred
        # judgment (and this group's usefulness sample) entirely.
        self._pending_judgment = {
            pair: owner for pair, owner in self._pending_judgment.items()
            if pair[0] != node
        }
        self._presented = {p for p in self._presented if p[0] != node}

    def on_node_detected_down(self, node: int, t: float) -> None:
        super().on_node_detected_down(node, t)
        # Schedules predicting for (or homed at) the dead node would pre-send
        # into its cold caches; purge those references and let the existing
        # incremental-learning path relearn the survivors' pattern.
        for sched in self.schedules.values():
            sched.purge_node(node, self.machine.home)

    # -- pre-send actions per entry kind ------------------------------------------------

    def _presend_read(self, home: int, entry, cursor: float, outgoing,
                      sched: CommSchedule) -> float:
        """READ entry: recall any writer, forward RO copies to readers."""
        dentry = self.directory.entry(entry.block)
        if dentry.state in DirState.BUSY:
            raise ProtocolError(f"pre-send with busy directory entry {dentry}")
        if dentry.state == DirState.EXCLUSIVE:
            cursor = self._synchronous_recall(dentry, cursor)
            # The recall is itself an anticipatory transfer — home regains a
            # readable copy — so it enters deferred judgment like any other
            # pre-sent block: a schedule whose only effect is bringing the
            # block home before the home reads it is helping, not wasting.
            self._register_presend(home, entry.block, sched, cursor)
        home_tags = self.machine.node(home).tags
        for reader in sorted(entry.readers):
            if reader == home:
                continue  # home reads its own memory
            if self.machine.node(reader).tags.permits(entry.block, "r"):
                continue  # already holds a usable copy
            outgoing.setdefault((reader, AccessTag.READ_ONLY), []).append(entry.block)
            dentry.sharers.add(reader)
            dentry.state = DirState.SHARED
            home_tags.downgrade(entry.block)
        return cursor

    def _presend_write(self, home: int, entry, cursor: float, outgoing) -> float:
        """WRITE entry: invalidate readers/writer, forward the writable copy."""
        dentry = self.directory.entry(entry.block)
        if dentry.state in DirState.BUSY:
            raise ProtocolError(f"pre-send with busy directory entry {dentry}")
        writer = entry.writer
        home_tags = self.machine.node(home).tags
        if dentry.state == DirState.EXCLUSIVE:
            if dentry.owner == writer:
                return cursor  # predicted writer already owns the block
            cursor = self._synchronous_recall(dentry, cursor)
        elif dentry.state == DirState.SHARED:
            for sharer in sorted(dentry.sharers):
                if sharer == writer:
                    continue
                self.send(
                    Message(MK.PRESEND_INV, src=home, dst=sharer, block=entry.block),
                    cursor,
                )
                cursor += self.config.presend_entry_cost
            dentry.sharers.intersection_update({writer})
        if writer == home:
            if dentry.sharers:
                # writer held an RO copy; with others gone it upgrades in place
                dentry.sharers.clear()
            dentry.state = DirState.IDLE
            dentry.owner = None
            home_tags.set(entry.block, AccessTag.READ_WRITE)
        else:
            if self.machine.node(writer).tags.permits(entry.block, "w"):
                return cursor
            outgoing.setdefault((writer, AccessTag.READ_WRITE), []).append(entry.block)
            dentry.sharers.clear()
            dentry.owner = writer
            dentry.state = DirState.EXCLUSIVE
            home_tags.invalidate(entry.block)
        return cursor

    def _synchronous_recall(self, dentry, cursor: float) -> float:
        """Recall a writable copy during pre-send (synchronous accounting).

        Charges a full request/response round trip plus handler occupancy at
        the owner, invalidates the owner's tag, and returns home memory to
        the IDLE state.
        """
        owner = dentry.owner
        cfg = self.config
        cursor += (
            2 * cfg.message_cost(cfg.block_size)
            + 2 * cfg.handler_cost
        )
        self.machine.node(owner).tags.invalidate(dentry.block)
        home_node = self.machine.node(dentry.home)
        home_node.tags.set(dentry.block, AccessTag.READ_WRITE)
        home_node.stats.messages_sent += 1
        self.machine.node(owner).stats.messages_sent += 1
        self.machine.node(owner).stats.bytes_sent += cfg.block_size
        dentry.owner = None
        dentry.state = DirState.IDLE
        return cursor

    def _register_presend(self, dst: int, block: int,
                          sched: CommSchedule, t: float) -> None:
        """Enter a transferred copy into deferred judgment.

        Re-transferring a pair that is still pending means the earlier copy
        was invalidated without ever being accessed — the one observation
        that *confirms* a pre-send was wasted (an unconsumed copy that is
        never invalidated costs nothing further and is left unjudged).
        """
        prev = self._pending_judgment.get((dst, block))
        if prev is not None:
            prev.note_waste()
            obs = self.machine.obs
            if obs.enabled:
                obs.emit(Ev.PRESEND_WASTE, t, node=dst, block=block,
                         src_directive=prev.directive_id)
        self._pending_judgment[(dst, block)] = sched

    def _judge_access(self, node: int, block: int, kind: str) -> None:
        """machine.access_hooks observer: any access consumes a pending copy."""
        sched = self._pending_judgment.pop((node, block), None)
        if sched is not None:
            sched.note_useful()
            obs = self.machine.obs
            if obs.enabled:
                obs.emit(Ev.PRESEND_CONSUMED, self.machine.engine.now,
                         node=node, block=block,
                         src_directive=sched.directive_id)

    def _send_bulk(self, home: int, outgoing, cursor: float,
                   sched: CommSchedule) -> float:
        """Coalesce per-destination blocks into runs; one bulk message each."""
        stats = self.machine.node(home).stats
        for (dst, tag), blocks in sorted(
            outgoing.items(), key=lambda kv: (kv[0][0], kv[0][1])
        ):
            kind = MK.PRESEND_RO if tag is AccessTag.READ_ONLY else MK.PRESEND_RW
            if self.coalesce_presend:
                runs = coalesce_blocks(blocks)
            else:
                runs = [(b, 1) for b in sorted(set(blocks))]
            for first, count in runs:
                run = list(range(first, first + count))
                msg = Message(
                    kind,
                    src=home,
                    dst=dst,
                    block=first,
                    payload_bytes=count * self.config.block_size,
                    info={"blocks": run},
                    bulk=count > 1,
                )
                self.send(msg, cursor)
                obs = self.machine.obs
                if obs.enabled:
                    obs.emit(Ev.PRESEND_MSG, cursor, node=home, dst=dst,
                             block=first, blocks=count, bulk=msg.bulk,
                             grant="rw" if kind == MK.PRESEND_RW else "ro")
                cursor += self.config.handler_cost  # injection occupancy
                self.presend_messages += 1
                self.presend_blocks += count
                stats.presend_blocks_sent += count
                self._presented.update((dst, b) for b in run)
                for b in run:
                    self._register_presend(dst, b, sched, cursor)
        return cursor

    # -- receiving pre-sent data ----------------------------------------------------------

    def handle_extra(self, msg: Message, t: float) -> None:
        if msg.kind == MK.PRESEND_INV:
            # No acknowledgement: the pre-send barrier subsumes it.
            self.machine.node(msg.dst).tags.invalidate(msg.block)
            return
        if msg.kind in (MK.PRESEND_RO, MK.PRESEND_RW):
            tags = self.machine.node(msg.dst).tags
            tag = AccessTag.READ_ONLY if msg.kind == MK.PRESEND_RO else AccessTag.READ_WRITE
            for block in msg.info["blocks"]:
                tags.set(block, tag)
            self.machine.node(msg.dst).stats.presend_blocks_received += len(
                msg.info["blocks"]
            )
            return
        super().handle_extra(msg, t)
