"""Incremental communication schedules (paper §3.3).

A schedule belongs to one compiler-placed directive site and maps cache
blocks to what the protocol learned about their communication in earlier
executions of that phase:

* which remote nodes requested a **read**able copy (the consumer set),
* which node requested the **writ**able copy (the producer),
* whether the block was both read and written *within the same phase
  instance* — a **conflict** block (false sharing or genuinely conflicting
  tasks), for which the pre-send phase takes no action.

Schedules grow incrementally: faults not anticipated by the pre-send phase
are appended, which is what lets the protocol track adaptive applications.
Deletions are *not* tracked — a node that stops accessing a block keeps
receiving it (paper §3.3: "the protocol transfers the block unnecessarily"),
until the schedule is explicitly flushed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.util.blocks import coalesce_blocks

__all__ = ["EntryKind", "ScheduleEntry", "CommSchedule", "coalesce_blocks"]


class EntryKind(enum.Enum):
    READ = "read"
    WRITE = "write"
    CONFLICT = "conflict"


@dataclass
class ScheduleEntry:
    """What the home node learned about one block's per-phase communication."""

    block: int
    kind: EntryKind
    readers: set[int] = field(default_factory=set)
    writer: int | None = None
    #: phase-group instance in which this entry was last updated
    instance: int = 0
    #: the last stable kind before the entry became a conflict (§3.4 suggests
    #: anticipating "the first stable block state before the conflict
    #: occurred" as a possible conflict action)
    pre_conflict_kind: EntryKind | None = None

    def __repr__(self) -> str:
        who = (
            f"readers={sorted(self.readers)}"
            if self.kind is EntryKind.READ
            else f"writer={self.writer}"
            if self.kind is EntryKind.WRITE
            else f"readers={sorted(self.readers)} writer={self.writer}"
        )
        return f"<Sched blk={self.block} {self.kind.value} {who}>"


class CommSchedule:
    """The communication schedule of one directive site."""

    def __init__(self, directive_id: int):
        self.directive_id = directive_id
        self.entries: dict[int, ScheduleEntry] = {}
        #: current phase-group instance (incremented at each pre-send)
        self.instance: int = 0
        # growth bookkeeping (for tests and the adaptive experiments)
        self.additions_per_instance: list[int] = []
        self._added_this_instance: int = 0

    # -- building ------------------------------------------------------------

    def begin_instance(self) -> int:
        """A new execution of this phase group starts."""
        self.instance += 1
        self.additions_per_instance.append(self._added_this_instance)
        self._added_this_instance = 0
        return self.instance

    def record(self, block: int, requester: int, kind: str) -> ScheduleEntry:
        """Record a faulting request routed through the home node.

        ``kind`` is ``"r"`` or ``"w"``.  Called from the (augmented) home
        handlers during a directive-covered phase group.
        """
        entry = self.entries.get(block)
        if entry is None:
            ek = EntryKind.READ if kind == "r" else EntryKind.WRITE
            entry = ScheduleEntry(block=block, kind=ek, instance=self.instance)
            self.entries[block] = entry
            self._added_this_instance += 1
        if entry.kind is not EntryKind.CONFLICT:
            opposite = EntryKind.WRITE if kind == "r" else EntryKind.READ
            if entry.kind is opposite and entry.instance == self.instance:
                # Read and written within the same phase.  By *different*
                # processors that is a conflict (false sharing or clashing
                # tasks, §3.3); by the same processor it is the classic
                # migratory read-modify-write, which the pre-send phase
                # should anticipate as a WRITE grant.
                same_node = (
                    (kind == "w" and entry.readers <= {requester})
                    or (kind == "r" and entry.writer == requester
                        and not entry.readers)
                )
                if same_node:
                    entry.kind = EntryKind.WRITE
                else:
                    entry.pre_conflict_kind = entry.kind
                    entry.kind = EntryKind.CONFLICT
            elif entry.kind is opposite:
                # Pattern changed between iterations (e.g. migratory data):
                # adopt the new kind.
                entry.kind = EntryKind.READ if kind == "r" else EntryKind.WRITE
        if kind == "r":
            entry.readers.add(requester)
        else:
            entry.writer = requester
        entry.instance = self.instance
        return entry

    def flush(self) -> None:
        """Discard the schedule (for deletion-heavy pattern changes, §3.3)."""
        self.entries.clear()
        self.additions_per_instance.append(self._added_this_instance)
        self._added_this_instance = 0

    # -- queries --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[ScheduleEntry]:
        return iter(self.entries.values())

    def entries_for_home(self, home_of: Callable[[int], int], node: int) -> list[ScheduleEntry]:
        """This node's slice of the schedule, in block order.

        Each processor executes pre-send actions only "for blocks in the
        communication schedule for which it is the home node" (§3.4).
        """
        mine = [e for e in self.entries.values() if home_of(e.block) == node]
        mine.sort(key=lambda e: e.block)
        return mine

    def conflict_blocks(self) -> list[int]:
        return sorted(b for b, e in self.entries.items() if e.kind is EntryKind.CONFLICT)
