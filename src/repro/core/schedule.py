"""Incremental communication schedules (paper §3.3).

A schedule belongs to one compiler-placed directive site and maps cache
blocks to what the protocol learned about their communication in earlier
executions of that phase:

* which remote nodes requested a **read**able copy (the consumer set),
* which node requested the **writ**able copy (the producer),
* whether the block was both read and written *within the same phase
  instance* — a **conflict** block (false sharing or genuinely conflicting
  tasks), for which the pre-send phase takes no action.

Schedules grow incrementally: faults not anticipated by the pre-send phase
are appended, which is what lets the protocol track adaptive applications.
Deletions are *not* tracked — a node that stops accessing a block keeps
receiving it (paper §3.3: "the protocol transfers the block unnecessarily"),
until the schedule is explicitly flushed.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.util.blocks import coalesce_blocks

__all__ = ["EntryKind", "ScheduleEntry", "CommSchedule", "ScheduleStore",
           "coalesce_blocks"]


class EntryKind(enum.Enum):
    READ = "read"
    WRITE = "write"
    CONFLICT = "conflict"


@dataclass
class ScheduleEntry:
    """What the home node learned about one block's per-phase communication."""

    block: int
    kind: EntryKind
    readers: set[int] = field(default_factory=set)
    writer: int | None = None
    #: phase-group instance in which this entry was last updated
    instance: int = 0
    #: the last stable kind before the entry became a conflict (§3.4 suggests
    #: anticipating "the first stable block state before the conflict
    #: occurred" as a possible conflict action)
    pre_conflict_kind: EntryKind | None = None

    def __repr__(self) -> str:
        who = (
            f"readers={sorted(self.readers)}"
            if self.kind is EntryKind.READ
            else f"writer={self.writer}"
            if self.kind is EntryKind.WRITE
            else f"readers={sorted(self.readers)} writer={self.writer}"
        )
        return f"<Sched blk={self.block} {self.kind.value} {who}>"


class CommSchedule:
    """The communication schedule of one directive site."""

    def __init__(self, directive_id: int):
        self.directive_id = directive_id
        self.entries: dict[int, ScheduleEntry] = {}
        #: current phase-group instance (incremented at each pre-send)
        self.instance: int = 0
        # growth bookkeeping (for tests and the adaptive experiments)
        self.additions_per_instance: list[int] = []
        self._added_this_instance: int = 0
        # degradation bookkeeping: EWMA of the per-instance useless-presend
        # fraction (reporting), plus a streak of pre-sent copies confirmed
        # wasted under deferred judgment (a copy is *wasted* only once it is
        # re-pre-sent having never been accessed; *useful* the moment any
        # access consumes it, in whichever later phase that happens)
        self.mispredict_rate: float = 0.0
        self.mispredict_samples: int = 0
        self.wasted_streak: int = 0
        self._wasted_this_instance: bool = False
        #: instances left in which the protocol skips pre-send (plain Stache)
        self.cooldown: int = 0

    # -- building ------------------------------------------------------------

    def begin_instance(self) -> int:
        """A new execution of this phase group starts."""
        self.instance += 1
        self.additions_per_instance.append(self._added_this_instance)
        self._added_this_instance = 0
        return self.instance

    def record(self, block: int, requester: int, kind: str) -> ScheduleEntry:
        """Record a faulting request routed through the home node.

        ``kind`` is ``"r"`` or ``"w"``.  Called from the (augmented) home
        handlers during a directive-covered phase group.
        """
        entry = self.entries.get(block)
        if entry is None:
            ek = EntryKind.READ if kind == "r" else EntryKind.WRITE
            entry = ScheduleEntry(block=block, kind=ek, instance=self.instance)
            self.entries[block] = entry
            self._added_this_instance += 1
        if entry.kind is not EntryKind.CONFLICT:
            opposite = EntryKind.WRITE if kind == "r" else EntryKind.READ
            if entry.kind is opposite and entry.instance == self.instance:
                # Read and written within the same phase.  By *different*
                # processors that is a conflict (false sharing or clashing
                # tasks, §3.3); by the same processor it is the classic
                # migratory read-modify-write, which the pre-send phase
                # should anticipate as a WRITE grant.
                same_node = (
                    (kind == "w" and entry.readers <= {requester})
                    or (kind == "r" and entry.writer == requester
                        and not entry.readers)
                )
                if same_node:
                    entry.kind = EntryKind.WRITE
                else:
                    entry.pre_conflict_kind = entry.kind
                    entry.kind = EntryKind.CONFLICT
            elif entry.kind is opposite:
                # Pattern changed between iterations (e.g. migratory data):
                # adopt the new kind — asymmetrically.  A read over a WRITE
                # entry always flips it to READ; a write over a READ entry
                # flips it only when no *other* node is a recorded reader.
                # Anticipating the write would invalidate those readers'
                # copies and they would fault right back, so keeping the
                # READ anticipation is never worse — and it stops an entry
                # from flip-flopping READ<->WRITE forever when distinct
                # phases under one directive alternate a producer and a
                # consumer.
                if kind == "r" or entry.readers <= {requester}:
                    entry.kind = EntryKind.READ if kind == "r" else EntryKind.WRITE
        if kind == "r":
            entry.readers.add(requester)
        else:
            entry.writer = requester
        entry.instance = self.instance
        return entry

    def flush(self) -> None:
        """Discard the schedule (for deletion-heavy pattern changes, §3.3)."""
        self.entries.clear()
        self.additions_per_instance.append(self._added_this_instance)
        self._added_this_instance = 0

    # -- degradation ----------------------------------------------------------

    #: EWMA smoothing for the misprediction rate
    EWMA_ALPHA = 0.5

    def note_presend_outcome(self, presented: int, useless: int) -> None:
        """Fold one instance's pre-send usefulness into the reporting EWMA.

        An instance that pre-sent nothing carries no information and is
        skipped.  This rate is instance-scoped — a copy unused within its own
        group still counts against it — so it is kept for reporting only;
        the degradation decision rests on the deferred-judgment streak
        (:meth:`note_waste` / :meth:`note_useful`), which credits a copy
        consumed in *any* later phase before it is invalidated.
        """
        if presented <= 0:
            return
        rate = useless / presented
        if self.mispredict_samples == 0:
            self.mispredict_rate = rate
        else:
            a = self.EWMA_ALPHA
            self.mispredict_rate = a * rate + (1.0 - a) * self.mispredict_rate
        self.mispredict_samples += 1

    def note_waste(self) -> None:
        """A pre-sent copy was confirmed wasted: it is being pre-sent again
        (so it was invalidated) without ever having been accessed.

        Wastes are folded into the streak once per instance
        (:meth:`fold_instance_judgment`), so a single churny instance that
        re-presents several copies cannot burn through the whole patience
        budget by itself.
        """
        self._wasted_this_instance = True

    def note_useful(self) -> None:
        """A pre-sent copy was consumed — the schedule is earning its keep;
        any confirmed-waste streak (and this instance's waste mark) ends
        here."""
        self.wasted_streak = 0
        self._wasted_this_instance = False

    def fold_instance_judgment(self) -> None:
        """Close one instance's deferred judgment: an instance that confirmed
        at least one waste and earned no usefulness extends the streak."""
        if self._wasted_this_instance:
            self.wasted_streak += 1
            self._wasted_this_instance = False

    def degrade(self, cooldown: int) -> None:
        """Give up on this schedule: flush it and fall back to plain Stache
        for ``cooldown`` instances before learning afresh."""
        self.flush()
        self.mispredict_rate = 0.0
        self.mispredict_samples = 0
        self.wasted_streak = 0
        self._wasted_this_instance = False
        self.cooldown = cooldown

    def purge_node(self, node: int, home_of: Callable[[int], int]) -> int:
        """Crash recovery: drop every reference to a dead node.

        Entries for blocks the dead node is home for are deleted outright
        (the restarted home relearns them from scratch); elsewhere the node
        is removed from reader sets and writer slots, deleting entries left
        empty.  Returns how many entries were deleted.
        """
        removed = 0
        for block in list(self.entries):
            e = self.entries[block]
            if home_of(block) == node:
                del self.entries[block]
                removed += 1
                continue
            e.readers.discard(node)
            if e.writer == node:
                e.writer = None
            if ((e.kind is EntryKind.READ and not e.readers)
                    or (e.kind is EntryKind.WRITE and e.writer is None)
                    or (e.kind is EntryKind.CONFLICT and e.writer is None
                        and not e.readers)):
                del self.entries[block]
                removed += 1
        return removed

    # -- queries --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[ScheduleEntry]:
        return iter(self.entries.values())

    def entries_for_home(self, home_of: Callable[[int], int], node: int) -> list[ScheduleEntry]:
        """This node's slice of the schedule, in block order.

        Each processor executes pre-send actions only "for blocks in the
        communication schedule for which it is the home node" (§3.4).
        """
        mine = [e for e in self.entries.values() if home_of(e.block) == node]
        mine.sort(key=lambda e: e.block)
        return mine

    def conflict_blocks(self) -> list[int]:
        return sorted(b for b, e in self.entries.items() if e.kind is EntryKind.CONFLICT)

    def snapshot(self) -> dict[int, tuple]:
        """A canonical, instance-independent view of the learned entries.

        Two schedules that learned the same access history — e.g. one evicted
        and rebuilt from scratch — snapshot identically even though their
        instance counters differ.
        """
        return {
            b: (e.kind, frozenset(e.readers), e.writer)
            for b, e in self.entries.items()
        }

    # -- persistence (repro.corpus) -------------------------------------------

    def to_record(self) -> dict:
        """The canonical JSON-safe form of what this schedule *learned*.

        Run-local bookkeeping (instance counters, growth history, the
        misprediction EWMA and judgment marks) deliberately does not
        persist — a warm-started run judges the inherited entries afresh,
        exactly like a run whose schedule was handed over in memory.  The
        degradation ``cooldown`` does persist: a schedule that proved
        chronically wrong should not resume pre-sending the moment a new
        process picks it up.
        """
        return {
            "directive": self.directive_id,
            "entries": [
                {
                    "block": e.block,
                    "kind": e.kind.value,
                    "readers": sorted(e.readers),
                    "writer": e.writer,
                    "pre_conflict": (e.pre_conflict_kind.value
                                     if e.pre_conflict_kind else None),
                }
                for _, e in sorted(self.entries.items())
            ],
            "cooldown": self.cooldown,
        }

    @classmethod
    def from_record(cls, record: dict) -> "CommSchedule":
        """Rebuild a schedule from :meth:`to_record` output.

        Instance counters start at 0, as in a fresh schedule — the first
        ``begin_instance`` bumps them to 1, so inherited entries can never
        be mistaken for same-instance recordings (which would mint false
        conflicts).  Raises ``KeyError``/``ValueError``/``TypeError`` on a
        malformed record; callers that load untrusted bytes (the corpus)
        validate first and quarantine failures.
        """
        sched = cls(int(record["directive"]))
        for ent in record["entries"]:
            kind = EntryKind(ent["kind"])
            pre = ent.get("pre_conflict")
            sched.entries[int(ent["block"])] = ScheduleEntry(
                block=int(ent["block"]),
                kind=kind,
                readers=set(ent["readers"]),
                writer=ent["writer"],
                instance=0,
                pre_conflict_kind=EntryKind(pre) if pre else None,
            )
        sched.cooldown = int(record.get("cooldown", 0))
        return sched


class ScheduleStore:
    """Bounded, LRU-evicting home for a protocol's communication schedules.

    Schedule memory on a real machine is finite; a long-running program with
    many directive sites must not grow it without bound.  Eviction is safe by
    construction — a schedule only *anticipates* communication, so losing one
    merely costs first-execution faults while it is relearned (and
    :meth:`CommSchedule.snapshot` lets tests check the relearned schedule is
    identical).

    Dict-flavoured reads (``in``, ``[]``, ``get``, ``values`` ...) do not
    touch recency; :meth:`fetch` is the use-and-touch accessor.
    """

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._store: "OrderedDict[int, CommSchedule]" = OrderedDict()
        self.evictions = 0
        #: optional observer called with each evicted directive id (the
        #: predictive protocol routes this to the tracing bus)
        self.on_evict: Callable[[int], None] | None = None
        #: cooldowns of degraded schedules evicted mid-cooldown, carried
        #: until the directive returns.  Without this, eviction was a
        #: degradation amnesty: a chronically wrong schedule pushed out of
        #: the LRU resumed pre-sending immediately on relearn instead of
        #: sitting out its remaining cooldown instances.
        self._evicted_cooldowns: dict[int, int] = {}

    def _evict_overflow(self) -> None:
        while len(self._store) > self.capacity:
            evicted, sched = self._store.popitem(last=False)
            self.evictions += 1
            if sched.cooldown > 0:
                self._evicted_cooldowns[evicted] = sched.cooldown
            if self.on_evict is not None:
                self.on_evict(evicted)

    def fetch(self, directive_id: int) -> CommSchedule:
        """Get-or-create the schedule for a directive; marks it used.

        A recreated schedule whose predecessor was evicted mid-cooldown
        inherits the remaining cooldown instances.
        """
        sched = self._store.get(directive_id)
        if sched is None:
            sched = CommSchedule(directive_id)
            sched.cooldown = self._evicted_cooldowns.pop(directive_id, 0)
            self._store[directive_id] = sched
            self._evict_overflow()
        else:
            self._store.move_to_end(directive_id)
        return sched

    def insert(self, sched: CommSchedule) -> None:
        """Install a schedule as most-recently used (checkpoint restore,
        corpus warm-start)."""
        self._evicted_cooldowns.pop(sched.directive_id, None)
        self._store[sched.directive_id] = sched
        self._store.move_to_end(sched.directive_id)
        self._evict_overflow()

    # -- read-only dict flavour ------------------------------------------------

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, directive_id: int) -> bool:
        return directive_id in self._store

    def __getitem__(self, directive_id: int) -> CommSchedule:
        return self._store[directive_id]

    def __iter__(self) -> Iterator[int]:
        return iter(self._store)

    def get(self, directive_id: int, default=None):
        return self._store.get(directive_id, default)

    def keys(self):
        """Directive ids, least- to most-recently used."""
        return self._store.keys()

    def values(self):
        return self._store.values()

    def items(self):
        return self._store.items()
