"""The paper's primary contribution.

* :mod:`repro.core.schedule` — incremental communication schedules: which
  blocks were communicated in a phase, who read/wrote them, conflict
  marking, and coalescing of neighboring blocks (paper §3.3-3.4).
* :mod:`repro.core.predictive` — the predictive protocol: Stache augmented
  to record faulting requests into a schedule and to pre-send data at the
  start of subsequent executions of the same compiler-identified phase.
* :mod:`repro.core.directives` — the runtime directives the C** compiler
  places (begin/end of a potentially-repetitive parallel phase group,
  schedule flush).
"""

from repro.core.schedule import (
    EntryKind,
    ScheduleEntry,
    CommSchedule,
    coalesce_blocks,
)
from repro.core.predictive import PredictiveProtocol
from repro.core.directives import Directive, DirectiveKind
from repro.core.factory import make_machine, PROTOCOLS

__all__ = [
    "make_machine",
    "PROTOCOLS",
    "EntryKind",
    "ScheduleEntry",
    "CommSchedule",
    "coalesce_blocks",
    "PredictiveProtocol",
    "Directive",
    "DirectiveKind",
]
