"""Directory state kept at each block's home node.

"Each shared-memory cache block in the system is mapped to its home node,
where it resides initially.  The home node also maintains a block's directory
information, which lists multiple readers or a single writer, and is used to
maintain consistency." (paper §3.1)

Stable states:

* ``IDLE``      — only the home's own copy exists (home tag READ_WRITE).
* ``SHARED``    — home has data (home tag READ_ONLY); ``sharers`` hold
  read-only copies.
* ``EXCLUSIVE`` — a single remote ``owner`` holds the writable copy; the
  home's own tag is INVALID.

Transient states (a request is in flight against this block; later requests
queue in ``pending``):

* ``BUSY_RECALL_RO``  — awaiting WB_DATA so a read can be satisfied.
* ``BUSY_RECALL_RW``  — awaiting WB_DATA so a write can be satisfied.
* ``BUSY_INV``        — awaiting invalidation ACKs before granting RW.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque

from repro.fastpath.packed import NodeSet
from repro.util.errors import ProtocolError

#: placeholder requester installed by crash recovery when the node being
#: serviced by a busy entry died: the completing transition still runs (so
#: the entry returns to a stable state through its normal path), but the
#: final grant is suppressed (see BaseProtocol.grant_ro / grant_rw guards).
DISCARDED = -1


class DirState:
    IDLE = "IDLE"
    SHARED = "SHARED"
    EXCLUSIVE = "EXCLUSIVE"
    BUSY_RECALL_RO = "BUSY_RECALL_RO"
    BUSY_RECALL_RW = "BUSY_RECALL_RW"
    BUSY_INV = "BUSY_INV"

    STABLE = frozenset({IDLE, SHARED, EXCLUSIVE})
    BUSY = frozenset({BUSY_RECALL_RO, BUSY_RECALL_RW, BUSY_INV})


@dataclass
class PendingRequest:
    """A request queued while the directory entry is busy."""

    kind: str  # GET_RO / GET_RW
    requester: int


@dataclass
class DirEntry:
    """Directory record for one block."""

    block: int
    home: int
    state: str = DirState.IDLE
    #: read-only copy holders as a packed bitmask set; iteration is always
    #: in ascending node order, so every sharers walk (invalidation rounds,
    #: crash repair, write-update pushes) is deterministic by construction
    sharers: NodeSet = field(default_factory=NodeSet)
    owner: int | None = None
    #: requester being serviced while in a BUSY state
    in_service: int | None = None
    acks_needed: int = 0
    pending: Deque[PendingRequest] = field(default_factory=deque)

    def check_invariants(self) -> None:
        """Sanity rules that hold in every stable state (tested heavily)."""
        if self.state == DirState.IDLE:
            if self.sharers or self.owner is not None:
                raise ProtocolError(f"IDLE entry with copies: {self}")
        elif self.state == DirState.SHARED:
            if not self.sharers:
                raise ProtocolError(f"SHARED entry without sharers: {self}")
            if self.owner is not None:
                raise ProtocolError(f"SHARED entry with owner: {self}")
            if self.home in self.sharers:
                raise ProtocolError(f"home listed as its own sharer: {self}")
        elif self.state == DirState.EXCLUSIVE:
            if self.owner is None or self.sharers:
                raise ProtocolError(f"EXCLUSIVE entry malformed: {self}")
            if self.owner == self.home:
                raise ProtocolError(f"home as remote owner: {self}")
        elif self.state in DirState.BUSY:
            if self.in_service is None:
                raise ProtocolError(f"busy entry with no request in service: {self}")
        else:
            raise ProtocolError(f"unknown directory state: {self}")

    def __repr__(self) -> str:
        own = f" owner={self.owner}" if self.owner is not None else ""
        shr = f" sharers={sorted(self.sharers)}" if self.sharers else ""
        pend = f" pending={len(self.pending)}" if self.pending else ""
        return f"<Dir blk={self.block}@{self.home} {self.state}{own}{shr}{pend}>"


class Directory:
    """All directory entries owned by the protocol instance.

    Entries are created lazily in IDLE: until the first remote request,
    a block exists only as home memory.
    """

    def __init__(self, home_of) -> None:
        self._home_of = home_of
        self._entries: dict[int, DirEntry] = {}

    def entry(self, block: int) -> DirEntry:
        e = self._entries.get(block)
        if e is None:
            e = DirEntry(block=block, home=self._home_of(block))
            self._entries[block] = e
        return e

    def known(self) -> list[DirEntry]:
        return list(self._entries.values())

    def purge_home(self, node: int) -> int:
        """Crash recovery: drop every entry homed at a dead node.

        The dead node's directory memory is gone with it; survivors' copies
        are re-registered from their tag tables when the node restarts
        (see BaseProtocol.rebuild_home_state).  Returns the purge count.
        """
        doomed = [b for b, e in self._entries.items() if e.home == node]
        for b in doomed:
            del self._entries[b]
        return len(doomed)

    def check_all(self) -> None:
        for e in self._entries.values():
            e.check_invariants()

    def __len__(self) -> int:
        return len(self._entries)
