"""Protocol message kinds.

String constants (not an enum) so :class:`repro.tempest.network.Message`
stays trivially constructible in tests; ``MessageKind`` groups them and
documents each hop of the paper's four-message producer-consumer exchange
(§3.2):

1. consumer -> home      : GET_RO                ("requests a readable copy")
2. home -> producer      : RECALL_RO / RECALL_INV ("invalidates the producer's copy")
3. producer -> home      : WB_DATA               ("returns its copy")
4. home -> consumer      : DATA_RO               ("sends the consumer a readable copy")
"""

from __future__ import annotations


class MessageKind:
    # requests (cache -> home)
    GET_RO = "GET_RO"  # read fault: want a read-only copy
    GET_RW = "GET_RW"  # write fault: want a writable copy

    # home -> current holder(s)
    INV = "INV"  # invalidate a read-only copy
    RECALL_RO = "RECALL_RO"  # invalidate a writable copy, return the data (read req)
    RECALL_INV = "RECALL_INV"  # invalidate a writable copy, return the data (write req)

    # holder -> home
    ACK = "ACK"  # invalidation acknowledged
    WB_DATA = "WB_DATA"  # returned (written-back) block data

    # home -> requester
    DATA_RO = "DATA_RO"  # readable copy
    DATA_RW = "DATA_RW"  # writable copy

    # predictive protocol pre-send (home -> predicted consumers/producer)
    PRESEND_RO = "PRESEND_RO"  # bulk: read-only copies of coalesced blocks
    PRESEND_RW = "PRESEND_RW"  # bulk: a writable copy
    PRESEND_INV = "PRESEND_INV"  # invalidation issued during pre-send

    # write-update protocol
    UPDATE = "UPDATE"  # bulk: new values pushed to registered consumers

    REQUESTS = frozenset({GET_RO, GET_RW})
    HOME_TO_HOLDER = frozenset({INV, RECALL_RO, RECALL_INV, PRESEND_INV})
    HOLDER_TO_HOME = frozenset({ACK, WB_DATA})
    DATA = frozenset({DATA_RO, DATA_RW, PRESEND_RO, PRESEND_RW, UPDATE})
