"""A write-update protocol: the hand-optimized SPMD baseline's custom protocol.

The paper compares Barnes against "a hand-optimized SPMD version ... that
uses a write-update protocol for efficient shared-memory communication on
the CM-5" (Falsafi et al., SC'94).  In that style, consumers register for a
block by reading it once; thereafter the producer's new values are *pushed*
to all registered consumers at the end of each phase in coalesced bulk
messages, so consumers never miss again.  Update protocols do not preserve
sequential consistency in general (paper §3.2), which is why they are a
hand-written, application-specific tool rather than the default.

Constraints of this model (matching SPMD usage): writes must be to blocks
the writer is home for (producers own their data).  A remote write fault
raises :class:`ProtocolError` so a mis-ported application fails loudly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.util.blocks import coalesce_blocks
from repro.protocols.base import BaseProtocol
from repro.protocols.directory import DirEntry
from repro.protocols.messages import MessageKind as MK
from repro.protocols.teapot import transition
from repro.sim.stats import TimeCategory
from repro.tempest.network import Message
from repro.tempest.tags import AccessTag
from repro.util.errors import ProtocolError

if TYPE_CHECKING:  # pragma: no cover
    from repro.tempest.machine import Machine

#: Directory state used by this protocol: home retains the writable copy
#: while any number of consumers hold continuously-updated read-only copies.
UPDATE_SHARED = "UPDATE_SHARED"


class WriteUpdateProtocol(BaseProtocol):
    """Producer-push coherence with per-phase updates.

    ``coalesce_updates`` controls whether neighboring blocks travel in one
    bulk message.  It defaults to False: coalescing into bulk messages is a
    contribution of *this paper's* predictive protocol (§3.4, §5.4), which
    the earlier hand-written update protocols did not have — each block's
    new value goes out as its own message.
    """

    name = "write-update"
    coalesce_updates = False

    # crash-recovery shape: consumers' copies are read-only registrations
    # while the home keeps the writable copy, so a restarted home rebuilds
    # UPDATE_SHARED (not SHARED) and keeps its READ_WRITE tag.
    crash_shared_states = (UPDATE_SHARED,)
    crash_rebuild_shared_state = UPDATE_SHARED
    crash_rebuild_home_tag = AccessTag.READ_WRITE

    def __init__(self, machine: "Machine") -> None:
        super().__init__(machine)
        self.updates_pushed = 0
        self.update_messages = 0

    # -- read registration ------------------------------------------------------

    @transition("IDLE", MK.GET_RO)
    @transition(UPDATE_SHARED, MK.GET_RO)
    def register_consumer(self, entry: DirEntry, msg: Message, t: float) -> None:
        """First read from a consumer: deliver data and register it."""
        if msg.src == entry.home:
            raise ProtocolError(
                f"home {msg.src} read-faulted on its own block",
                node=msg.src, block=entry.block, time=t, message_repr=repr(msg),
            )
        entry.sharers.add(msg.src)
        entry.state = UPDATE_SHARED
        # Home keeps its READ_WRITE tag: updates do not invalidate.
        self.send(
            Message(
                MK.DATA_RO,
                src=entry.home,
                dst=msg.src,
                block=entry.block,
                payload_bytes=self.config.block_size,
            ),
            t,
        )

    @transition("IDLE", MK.GET_RW)
    @transition(UPDATE_SHARED, MK.GET_RW)
    def reject_remote_write(self, entry: DirEntry, msg: Message, t: float) -> None:
        raise ProtocolError(
            f"write-update protocol requires producer-owned data; node "
            f"{msg.src} wrote block {entry.block} homed at {entry.home}",
            node=msg.src, block=entry.block, time=t, message_repr=repr(msg),
        )

    # -- phase-end update push ------------------------------------------------------

    def adjust_barrier(self, arrivals: dict[int, float]) -> dict[int, float]:
        """Push this phase's writes to registered consumers before the barrier.

        Producers serialize their pushes after their own arrival; consumers
        must additionally absorb installs.  The extra cycles are charged as
        remote-wait (communication) time so accounting still sums to wall
        time.
        """
        cfg = self.config
        # producer -> consumer -> blocks written this phase with registrations
        pushes: dict[int, dict[int, list[int]]] = {}
        for node, block in sorted(self.machine.phase_writes):
            entry = self.directory.entry(block)
            if entry.home != node:
                raise ProtocolError(
                    f"node {node} wrote block {block} homed at {entry.home} "
                    f"under write-update",
                    node=node, block=block,
                )
            for consumer in entry.sharers:
                pushes.setdefault(node, {}).setdefault(consumer, []).append(block)

        adjusted = dict(arrivals)
        install_done: dict[int, float] = {}
        for producer, per_consumer in sorted(pushes.items()):
            cursor = adjusted[producer]
            pstats = self.machine.node(producer).stats
            for consumer, blocks in sorted(per_consumer.items()):
                if self.coalesce_updates:
                    runs = coalesce_blocks(blocks)
                else:
                    runs = [(b, 1) for b in sorted(set(blocks))]
                for first, count in runs:
                    payload = count * cfg.block_size
                    send_done = cursor + cfg.handler_cost  # injection
                    if count > 1:
                        arrival = send_done + cfg.bulk_message_cost(payload)
                    else:
                        arrival = send_done + cfg.message_cost(payload)
                    install = (
                        cfg.handler_cost + cfg.presend_entry_cost * count
                    )
                    done = max(install_done.get(consumer, 0.0), arrival) + install
                    install_done[consumer] = done
                    cursor = send_done
                    pstats.messages_sent += 1
                    pstats.bytes_sent += payload
                    self.update_messages += 1
                    self.updates_pushed += count
            # producer-side time spent injecting updates
            pstats.add(TimeCategory.REMOTE_WAIT, cursor - adjusted[producer])
            adjusted[producer] = cursor
        for consumer, done in install_done.items():
            if done > adjusted[consumer]:
                self.machine.node(consumer).stats.add(
                    TimeCategory.REMOTE_WAIT, done - adjusted[consumer]
                )
                adjusted[consumer] = done
        return adjusted
