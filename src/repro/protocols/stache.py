"""Stache: Blizzard's default coherence protocol (paper §3.1).

A directory-based, sequentially-consistent, write-invalidate protocol.
Read faults obtain a read-only copy from home (recalling a remote writer's
copy first); write faults invalidate all outstanding copies before a
writable copy is granted.  This reproduces the four-message
producer-consumer exchange of §3.2 whose cost motivates the predictive
protocol.

Home-side transitions are declared teapot-style; see
:mod:`repro.protocols.base` for the cache side and timing discipline.
"""

from __future__ import annotations

from repro.protocols.base import BaseProtocol
from repro.protocols.directory import DirEntry, DirState
from repro.protocols.messages import MessageKind as MK
from repro.protocols.teapot import transition
from repro.tempest.network import Message
from repro.tempest.tags import AccessTag
from repro.util.errors import ProtocolError


class StacheProtocol(BaseProtocol):
    """The write-invalidate baseline protocol."""

    name = "stache"

    # -- read requests --------------------------------------------------------

    @transition(DirState.IDLE, MK.GET_RO)
    @transition(DirState.SHARED, MK.GET_RO)
    def read_from_home(self, entry: DirEntry, msg: Message, t: float) -> None:
        """Home memory is current: satisfy the read directly."""
        self.grant_ro(entry, msg.src, t)

    @transition(DirState.EXCLUSIVE, MK.GET_RO)
    def read_recalls_writer(self, entry: DirEntry, msg: Message, t: float) -> None:
        """A remote writer holds the block: recall it, then satisfy the read.

        Stache invalidates the producer's copy (paper §3.2 steps 2-3) rather
        than downgrading it.
        """
        if entry.owner == msg.src:
            raise ProtocolError(f"owner {msg.src} read-faulted on its own block")
        entry.state = DirState.BUSY_RECALL_RO
        entry.in_service = msg.src
        self.send(
            Message(MK.RECALL_RO, src=entry.home, dst=entry.owner, block=entry.block), t
        )

    # -- write requests --------------------------------------------------------

    @transition(DirState.IDLE, MK.GET_RW)
    def write_from_home(self, entry: DirEntry, msg: Message, t: float) -> None:
        self.grant_rw(entry, msg.src, t)

    @transition(DirState.SHARED, MK.GET_RW)
    def write_invalidates_readers(self, entry: DirEntry, msg: Message, t: float) -> None:
        """Invalidate all read-only copies, then grant the writable copy."""
        others = entry.sharers - {msg.src}
        if not others:
            # The requester is the only sharer: upgrade immediately.
            self.grant_rw(entry, msg.src, t)
            return
        entry.state = DirState.BUSY_INV
        entry.in_service = msg.src
        entry.acks_needed = len(others)
        for sharer in sorted(others):
            self.send(
                Message(MK.INV, src=entry.home, dst=sharer, block=entry.block), t
            )
        # The requester's own stale RO copy (if any) is superseded by the
        # RW grant; drop it from the sharer list now.
        entry.sharers.discard(msg.src)

    @transition(DirState.EXCLUSIVE, MK.GET_RW)
    def write_recalls_writer(self, entry: DirEntry, msg: Message, t: float) -> None:
        if entry.owner == msg.src:
            raise ProtocolError(f"owner {msg.src} write-faulted on its own block")
        entry.state = DirState.BUSY_RECALL_RW
        entry.in_service = msg.src
        self.send(
            Message(MK.RECALL_INV, src=entry.home, dst=entry.owner, block=entry.block), t
        )

    # -- responses ----------------------------------------------------------------

    @transition(DirState.BUSY_RECALL_RO, MK.WB_DATA)
    def writeback_then_read(self, entry: DirEntry, msg: Message, t: float) -> None:
        """The recalled data arrived; home memory is current again."""
        if msg.src != entry.owner:
            raise ProtocolError(f"writeback from non-owner {msg.src}: {entry}")
        requester = entry.in_service
        entry.owner = None
        entry.in_service = None
        entry.state = DirState.IDLE
        # Home memory holds the data again; home may read it.
        self.machine.node(entry.home).tags.set(entry.block, AccessTag.READ_WRITE)
        self.grant_ro(entry, requester, t)

    @transition(DirState.BUSY_RECALL_RW, MK.WB_DATA)
    def writeback_then_write(self, entry: DirEntry, msg: Message, t: float) -> None:
        if msg.src != entry.owner:
            raise ProtocolError(f"writeback from non-owner {msg.src}: {entry}")
        requester = entry.in_service
        entry.owner = None
        entry.in_service = None
        entry.state = DirState.IDLE
        self.grant_rw(entry, requester, t)

    @transition(DirState.BUSY_INV, MK.ACK)
    def collect_ack(self, entry: DirEntry, msg: Message, t: float) -> None:
        entry.sharers.discard(msg.src)
        entry.acks_needed -= 1
        if entry.acks_needed < 0:
            raise ProtocolError(f"unexpected ACK from {msg.src}: {entry}")
        if entry.acks_needed == 0:
            requester = entry.in_service
            entry.in_service = None
            entry.state = DirState.IDLE
            self.grant_rw(entry, requester, t)

    # -- requests arriving while busy queue up ---------------------------------------

    @transition(DirState.BUSY, MK.GET_RO)
    @transition(DirState.BUSY, MK.GET_RW)
    def busy_queues_request(self, entry: DirEntry, msg: Message, t: float) -> None:
        self.queue_pending(entry, msg)
