"""Coherence protocols, written in a Teapot-style state-machine framework.

* :mod:`repro.protocols.teapot` — the framework (states, transition tables,
  dispatch), standing in for the Teapot protocol language [Chandra et al.,
  PLDI'96] the paper used to develop its protocols.
* :mod:`repro.protocols.stache` — Blizzard's default sequentially-consistent
  directory-based write-invalidate protocol (paper §3.1).
* :mod:`repro.protocols.writeupdate` — a write-update protocol standing in
  for the hand-written application-specific protocols of Falsafi et al.
  [SC'94], used by the SPMD Barnes baseline (paper §5.2).

The paper's own contribution — the predictive protocol — is a delta over
Stache and lives in :mod:`repro.core.predictive`.
"""

from repro.protocols.messages import MessageKind
from repro.protocols.teapot import ProtocolStateMachine, transition
from repro.protocols.directory import DirState, DirEntry, Directory
from repro.protocols.base import BaseProtocol
from repro.protocols.stache import StacheProtocol
from repro.protocols.writeupdate import WriteUpdateProtocol

__all__ = [
    "MessageKind",
    "ProtocolStateMachine",
    "transition",
    "DirState",
    "DirEntry",
    "Directory",
    "BaseProtocol",
    "StacheProtocol",
    "WriteUpdateProtocol",
]
