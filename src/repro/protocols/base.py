"""Infrastructure shared by all coherence protocols.

:class:`BaseProtocol` implements the Tempest-side mechanics every protocol
needs — fault vectoring, message delivery with handler occupancy, the
cache-side handlers (invalidate / recall / data-install), and processor
resumption — leaving subclasses to declare home-side directory transitions
in teapot style.

Timing discipline: a message delivered at time *t* first occupies the
destination's handler resource (FIFO), and all of its *effects* (tag changes,
directory updates, outgoing messages) take place at the handler-completion
time, scheduled through the event engine so effects interleave correctly
with other nodes' activity.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.protocols.directory import Directory, DirEntry, DirState, PendingRequest
from repro.protocols.messages import MessageKind as MK
from repro.protocols.teapot import ProtocolStateMachine
from repro.tempest.network import Message
from repro.tempest.tags import AccessTag
from repro.util.errors import ProtocolError

if TYPE_CHECKING:  # pragma: no cover
    from repro.tempest.machine import Machine, ReplayProcessor


class BaseProtocol(ProtocolStateMachine):
    """Common protocol plumbing over a :class:`~repro.tempest.machine.Machine`."""

    name = "base"

    def __init__(self, machine: "Machine") -> None:
        self.machine = machine
        self.config = machine.config
        self.directory = Directory(machine.home)
        #: node -> (processor, block, access kind) for the one outstanding fault
        self.outstanding: dict[int, tuple["ReplayProcessor", int, str]] = {}
        #: invalidations/recalls that overtook the data message they chase;
        #: serviced right after the data installs (see cache_install)
        self._deferred: dict[tuple[int, int], list[Message]] = {}

    # -- fault vectoring ---------------------------------------------------------

    def fault(self, proc: "ReplayProcessor", block: int, kind: str, t: float) -> None:
        """An access the local tag does not permit, vectored to the protocol."""
        node = proc.node.id
        if node in self.outstanding:
            raise ProtocolError(
                f"node {node} faulted with a fault outstanding",
                node=node, block=block, time=t,
            )
        self.outstanding[node] = (proc, block, kind)
        self.machine.stats.total_remote_requests += 1
        req = MK.GET_RO if kind == "r" else MK.GET_RW
        t_req = t + self.config.fault_cost
        home = self.machine.home(block)
        if home == node:
            # Local fault at the home node: no network, but the request still
            # runs through the home's protocol handler.
            self._deliver_local(node, block, req, t_req)
        else:
            self.send(Message(req, src=node, dst=home, block=block), t_req)

    def _deliver_local(self, node: int, block: int, kind: str, t: float) -> None:
        cost = self.config.handler_cost + self.config.directory_lookup_cost
        done = self.machine.node(node).service_handler(t, cost)
        msg = Message(kind, src=node, dst=node, block=block)
        self.machine.engine.schedule(done, lambda: self._handle(msg, done))

    # -- message plumbing -----------------------------------------------------------

    def send(self, msg: Message, at: float) -> float:
        return self.machine.send(msg, at)

    def handler_cost_for(self, msg: Message) -> float:
        cost = self.config.handler_cost
        if msg.kind in MK.REQUESTS or msg.kind in MK.HOLDER_TO_HOME:
            cost += self.config.directory_lookup_cost
        if msg.bulk:
            # per-block install cost for coalesced transfers
            cost += self.config.presend_entry_cost * len(msg.info.get("blocks", ()))
        return cost

    def on_message(self, msg: Message, t: float) -> None:
        done = self.machine.node(msg.dst).service_handler(t, self.handler_cost_for(msg))
        self.machine.engine.schedule(done, lambda: self._handle(msg, done))

    def _handle(self, msg: Message, t: float) -> None:
        """Route a serviced message; ``t`` is the effect time."""
        kind = msg.kind
        if kind in MK.REQUESTS or kind in MK.HOLDER_TO_HOME:
            entry = self.directory.entry(msg.block)
            if entry.home != msg.dst:
                raise ProtocolError(
                    f"{msg} arrived at non-home node {msg.dst}",
                    node=msg.dst, block=msg.block, time=t,
                    message_repr=repr(msg),
                )
            self.dispatch(entry, kind, msg, t)
            self._drain_pending(entry, t)
        elif kind == MK.INV:
            self.cache_invalidate(msg, t)
        elif kind in (MK.RECALL_RO, MK.RECALL_INV):
            self.cache_recall(msg, t)
        elif kind in (MK.DATA_RO, MK.DATA_RW):
            self.cache_install(msg, t)
        else:
            self.handle_extra(msg, t)

    def handle_extra(self, msg: Message, t: float) -> None:
        """Hook for protocol-specific message kinds."""
        raise ProtocolError(
            f"{type(self).__name__} cannot handle {msg}",
            node=msg.dst, block=msg.block, time=t, message_repr=repr(msg),
        )

    # -- cache-side handlers -----------------------------------------------------------

    def _defer(self, msg: Message) -> None:
        self._deferred.setdefault((msg.dst, msg.block), []).append(msg)

    def _chasing_data(self, msg: Message) -> bool:
        out = self.outstanding.get(msg.dst)
        return out is not None and out[1] == msg.block

    def cache_invalidate(self, msg: Message, t: float) -> None:
        tags = self.machine.node(msg.dst).tags
        if tags.get(msg.block) is AccessTag.INVALID and self._chasing_data(msg):
            # The INV overtook the DATA message that makes this node a
            # sharer (control messages are lighter than payload messages).
            # Defer until the data installs.  NOTE the tag check: a node
            # that still holds a readable copy but has an outstanding
            # *upgrade* fault queued at the busy home must ACK immediately,
            # or home-waits-for-ACK / ACK-waits-for-grant deadlocks.
            self._defer(msg)
            return
        tags.invalidate(msg.block)
        self.send(Message(MK.ACK, src=msg.dst, dst=msg.src, block=msg.block), t)

    def cache_recall(self, msg: Message, t: float) -> None:
        tags = self.machine.node(msg.dst).tags
        if tags.get(msg.block) is not AccessTag.READ_WRITE:
            if self._chasing_data(msg):
                self._defer(msg)  # recall overtook the DATA_RW grant
                return
            raise ProtocolError(
                f"recall {msg} at non-owner {msg.dst}",
                node=msg.dst, block=msg.block, time=t, message_repr=repr(msg),
            )
        tags.invalidate(msg.block)
        self.send(
            Message(
                MK.WB_DATA,
                src=msg.dst,
                dst=msg.src,
                block=msg.block,
                payload_bytes=self.config.block_size,
            ),
            t,
        )

    def cache_install(self, msg: Message, t: float) -> None:
        tags = self.machine.node(msg.dst).tags
        tag = AccessTag.READ_ONLY if msg.kind == MK.DATA_RO else AccessTag.READ_WRITE
        tags.set(msg.block, tag)
        self.complete_fault(msg.dst, msg.block, t)
        # Service invalidations/recalls that arrived ahead of this data:
        # the faulting access has completed; the copy is now surrendered.
        for deferred in self._deferred.pop((msg.dst, msg.block), []):
            self._handle_deferred(deferred, t)

    def _handle_deferred(self, msg: Message, t: float) -> None:
        if msg.kind == MK.INV:
            self.cache_invalidate(msg, t)
        elif msg.kind in (MK.RECALL_RO, MK.RECALL_INV):
            # The freshly-installed copy may be RO (the recall chased a
            # DATA_RO upgrade race); surrender whatever we hold.
            tags = self.machine.node(msg.dst).tags
            tags.invalidate(msg.block)
            self.send(
                Message(
                    MK.WB_DATA,
                    src=msg.dst,
                    dst=msg.src,
                    block=msg.block,
                    payload_bytes=self.config.block_size,
                ),
                t,
            )
        else:  # pragma: no cover - defensive
            raise ProtocolError(
                f"cannot defer {msg}",
                node=msg.dst, block=msg.block, time=t, message_repr=repr(msg),
            )

    # -- processor resumption -------------------------------------------------------------

    def complete_fault(self, node: int, block: int, t: float) -> None:
        out = self.outstanding.pop(node, None)
        if out is None:
            raise ProtocolError(
                f"data for node {node} with no outstanding fault",
                node=node, block=block, time=t,
            )
        proc, fault_block, _kind = out
        if fault_block != block:
            raise ProtocolError(
                f"node {node} received block {block} while waiting on {fault_block}",
                node=node, block=block, time=t,
            )
        proc.resume(t)

    # -- grant helpers (used by home-side transitions) ---------------------------------------

    def grant_ro(self, entry: DirEntry, requester: int, t: float) -> None:
        """Give ``requester`` a read-only copy from home memory."""
        home_tags = self.machine.node(entry.home).tags
        if requester == entry.home:
            # Local read grant: home regains (at least) read permission.
            if home_tags.get(entry.block) is AccessTag.INVALID:
                raise ProtocolError(
                    f"home read grant without data: {entry}",
                    node=entry.home, block=entry.block, time=t,
                )
            self.complete_fault(requester, entry.block, t)
        else:
            home_tags.downgrade(entry.block)
            entry.sharers.add(requester)
            entry.state = DirState.SHARED
            self.send(
                Message(
                    MK.DATA_RO,
                    src=entry.home,
                    dst=requester,
                    block=entry.block,
                    payload_bytes=self.config.block_size,
                ),
                t,
            )

    def grant_rw(self, entry: DirEntry, requester: int, t: float) -> None:
        """Give ``requester`` the writable copy (all other copies are gone)."""
        home_tags = self.machine.node(entry.home).tags
        entry.sharers.clear()
        if requester == entry.home:
            entry.owner = None
            entry.state = DirState.IDLE
            home_tags.set(entry.block, AccessTag.READ_WRITE)
            self.complete_fault(requester, entry.block, t)
        else:
            entry.owner = requester
            entry.state = DirState.EXCLUSIVE
            home_tags.invalidate(entry.block)
            self.send(
                Message(
                    MK.DATA_RW,
                    src=entry.home,
                    dst=requester,
                    block=entry.block,
                    payload_bytes=self.config.block_size,
                ),
                t,
            )

    # -- pending-queue management ------------------------------------------------------------

    def queue_pending(self, entry: DirEntry, msg: Message) -> None:
        entry.pending.append(PendingRequest(kind=msg.kind, requester=msg.src))

    def _drain_pending(self, entry: DirEntry, t: float) -> None:
        """Re-dispatch queued requests once the entry is stable again."""
        while entry.pending and entry.state in DirState.STABLE:
            req = entry.pending.popleft()
            synthetic = Message(req.kind, src=req.requester, dst=entry.home, block=entry.block)
            self.dispatch(entry, req.kind, synthetic, t)

    # -- phase-group hooks (overridden by the predictive protocol) ------------------------------

    def begin_group(self, directive_id: int, t: float) -> list[float] | None:
        return None

    def end_group(self, directive_id: int, t: float) -> None:
        return None

    def adjust_barrier(self, arrivals: dict[int, float]) -> dict[int, float]:
        return arrivals
