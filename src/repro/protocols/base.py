"""Infrastructure shared by all coherence protocols.

:class:`BaseProtocol` implements the Tempest-side mechanics every protocol
needs — fault vectoring, message delivery with handler occupancy, the
cache-side handlers (invalidate / recall / data-install), and processor
resumption — leaving subclasses to declare home-side directory transitions
in teapot style.

Timing discipline: a message delivered at time *t* first occupies the
destination's handler resource (FIFO), and all of its *effects* (tag changes,
directory updates, outgoing messages) take place at the handler-completion
time, scheduled through the event engine so effects interleave correctly
with other nodes' activity.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.obs.events import EventKind
from repro.fastpath.packed import NodeSet
from repro.protocols.directory import (
    DISCARDED,
    Directory,
    DirEntry,
    DirState,
    PendingRequest,
)
from repro.protocols.messages import MessageKind as MK
from repro.protocols.teapot import ProtocolStateMachine
from repro.tempest.network import Message
from repro.tempest.tags import AccessTag
from repro.util.errors import ProtocolError

if TYPE_CHECKING:  # pragma: no cover
    from repro.tempest.machine import Machine, ReplayProcessor


class BaseProtocol(ProtocolStateMachine):
    """Common protocol plumbing over a :class:`~repro.tempest.machine.Machine`."""

    name = "base"

    # crash-recovery shape of this protocol's directory states: which states
    # mean "remote read-only copies exist", and what state/home-tag pair a
    # restarted home rebuilds when survivors hold such copies.  The
    # write-update protocol overrides all three (its shared state keeps the
    # home writable).
    crash_shared_states: tuple = (DirState.SHARED,)
    crash_rebuild_shared_state: str = DirState.SHARED
    crash_rebuild_home_tag = AccessTag.READ_ONLY

    def __init__(self, machine: "Machine") -> None:
        self.machine = machine
        self.config = machine.config
        self.directory = Directory(machine.home)
        #: node -> (processor, block, access kind) for the one outstanding fault
        self.outstanding: dict[int, tuple["ReplayProcessor", int, str]] = {}
        #: invalidations/recalls that overtook the data message they chase;
        #: serviced right after the data installs (see cache_install)
        self._deferred: dict[tuple[int, int], list[Message]] = {}

    # -- fault vectoring ---------------------------------------------------------

    def fault(self, proc: "ReplayProcessor", block: int, kind: str, t: float) -> None:
        """An access the local tag does not permit, vectored to the protocol."""
        node = proc.node.id
        if node in self.outstanding:
            raise ProtocolError(
                f"node {node} faulted with a fault outstanding",
                node=node, block=block, time=t,
            )
        self.outstanding[node] = (proc, block, kind)
        self.machine.stats.total_remote_requests += 1
        req = MK.GET_RO if kind == "r" else MK.GET_RW
        t_req = t + self.config.fault_cost
        home = self.machine.home(block)
        if home == node:
            # Local fault at the home node: no network, but the request still
            # runs through the home's protocol handler.
            self._deliver_local(node, block, req, t_req)
        else:
            self.send(Message(req, src=node, dst=home, block=block), t_req)

    def _deliver_local(self, node: int, block: int, kind: str, t: float) -> None:
        cost = self.config.handler_cost + self.config.directory_lookup_cost
        done = self.machine.node(node).service_handler(t, cost)
        msg = Message(kind, src=node, dst=node, block=block)
        self.machine.schedule_node_event(node, done, lambda: self._handle(msg, done))

    # -- message plumbing -----------------------------------------------------------

    def send(self, msg: Message, at: float) -> float:
        return self.machine.send(msg, at)

    def handler_cost_for(self, msg: Message) -> float:
        cost = self.config.handler_cost
        if msg.kind in MK.REQUESTS or msg.kind in MK.HOLDER_TO_HOME:
            cost += self.config.directory_lookup_cost
        if msg.bulk:
            # per-block install cost for coalesced transfers
            cost += self.config.presend_entry_cost * len(msg.info.get("blocks", ()))
        return cost

    def on_message(self, msg: Message, t: float) -> None:
        done = self.machine.node(msg.dst).service_handler(t, self.handler_cost_for(msg))
        # Handler effects are node-local state changes: under a crash plan
        # they must not fire if the node dies before the completion time.
        self.machine.schedule_node_event(msg.dst, done, lambda: self._handle(msg, done))

    def _handle(self, msg: Message, t: float) -> None:
        """Route a serviced message; ``t`` is the effect time."""
        kind = msg.kind
        if kind in MK.REQUESTS or kind in MK.HOLDER_TO_HOME:
            entry = self.directory.entry(msg.block)
            if entry.home != msg.dst:
                raise ProtocolError(
                    f"{msg} arrived at non-home node {msg.dst}",
                    node=msg.dst, block=msg.block, time=t,
                    message_repr=repr(msg),
                )
            self.dispatch(entry, kind, msg, t)
            self._drain_pending(entry, t)
        elif kind == MK.INV:
            self.cache_invalidate(msg, t)
        elif kind in (MK.RECALL_RO, MK.RECALL_INV):
            self.cache_recall(msg, t)
        elif kind in (MK.DATA_RO, MK.DATA_RW):
            self.cache_install(msg, t)
        else:
            self.handle_extra(msg, t)

    def handle_extra(self, msg: Message, t: float) -> None:
        """Hook for protocol-specific message kinds."""
        raise ProtocolError(
            f"{type(self).__name__} cannot handle {msg}",
            node=msg.dst, block=msg.block, time=t, message_repr=repr(msg),
        )

    # -- cache-side handlers -----------------------------------------------------------

    def _defer(self, msg: Message) -> None:
        self._deferred.setdefault((msg.dst, msg.block), []).append(msg)

    def _chasing_data(self, msg: Message) -> bool:
        out = self.outstanding.get(msg.dst)
        return out is not None and out[1] == msg.block

    def cache_invalidate(self, msg: Message, t: float) -> None:
        tags = self.machine.node(msg.dst).tags
        if tags.get(msg.block) is AccessTag.INVALID and self._chasing_data(msg):
            # The INV overtook the DATA message that makes this node a
            # sharer (control messages are lighter than payload messages).
            # Defer until the data installs.  NOTE the tag check: a node
            # that still holds a readable copy but has an outstanding
            # *upgrade* fault queued at the busy home must ACK immediately,
            # or home-waits-for-ACK / ACK-waits-for-grant deadlocks.
            self._defer(msg)
            return
        tags.invalidate(msg.block)
        obs = self.machine.obs
        if obs.enabled:
            obs.emit(EventKind.INVALIDATE, t, node=msg.dst, block=msg.block)
        self.send(Message(MK.ACK, src=msg.dst, dst=msg.src, block=msg.block), t)

    def cache_recall(self, msg: Message, t: float) -> None:
        tags = self.machine.node(msg.dst).tags
        if tags.get(msg.block) is not AccessTag.READ_WRITE:
            if self._chasing_data(msg):
                self._defer(msg)  # recall overtook the DATA_RW grant
                return
            raise ProtocolError(
                f"recall {msg} at non-owner {msg.dst}",
                node=msg.dst, block=msg.block, time=t, message_repr=repr(msg),
            )
        tags.invalidate(msg.block)
        obs = self.machine.obs
        if obs.enabled:
            obs.emit(EventKind.RECALL, t, node=msg.dst, block=msg.block)
        self.send(
            Message(
                MK.WB_DATA,
                src=msg.dst,
                dst=msg.src,
                block=msg.block,
                payload_bytes=self.config.block_size,
            ),
            t,
        )

    def cache_install(self, msg: Message, t: float) -> None:
        tags = self.machine.node(msg.dst).tags
        tag = AccessTag.READ_ONLY if msg.kind == MK.DATA_RO else AccessTag.READ_WRITE
        tags.set(msg.block, tag)
        self.complete_fault(msg.dst, msg.block, t)
        # Service invalidations/recalls that arrived ahead of this data:
        # the faulting access has completed; the copy is now surrendered.
        for deferred in self._deferred.pop((msg.dst, msg.block), []):
            self._handle_deferred(deferred, t)

    def _handle_deferred(self, msg: Message, t: float) -> None:
        if msg.kind == MK.INV:
            self.cache_invalidate(msg, t)
        elif msg.kind in (MK.RECALL_RO, MK.RECALL_INV):
            # The freshly-installed copy may be RO (the recall chased a
            # DATA_RO upgrade race); surrender whatever we hold.
            tags = self.machine.node(msg.dst).tags
            tags.invalidate(msg.block)
            self.send(
                Message(
                    MK.WB_DATA,
                    src=msg.dst,
                    dst=msg.src,
                    block=msg.block,
                    payload_bytes=self.config.block_size,
                ),
                t,
            )
        else:  # pragma: no cover - defensive
            raise ProtocolError(
                f"cannot defer {msg}",
                node=msg.dst, block=msg.block, time=t, message_repr=repr(msg),
            )

    # -- processor resumption -------------------------------------------------------------

    def complete_fault(self, node: int, block: int, t: float) -> None:
        out = self.outstanding.pop(node, None)
        if out is None:
            raise ProtocolError(
                f"data for node {node} with no outstanding fault",
                node=node, block=block, time=t,
            )
        proc, fault_block, _kind = out
        if fault_block != block:
            raise ProtocolError(
                f"node {node} received block {block} while waiting on {fault_block}",
                node=node, block=block, time=t,
            )
        proc.resume(t)

    # -- grant helpers (used by home-side transitions) ---------------------------------------

    def grant_ro(self, entry: DirEntry, requester: int, t: float) -> None:
        """Give ``requester`` a read-only copy from home memory."""
        if requester == DISCARDED or self.machine.is_down(requester):
            # Crash recovery discarded the request (or the requester died
            # while it was in flight); the entry is already stable.
            return
        home_tags = self.machine.node(entry.home).tags
        if requester == entry.home:
            # Local read grant: home regains (at least) read permission.
            if home_tags.get(entry.block) is AccessTag.INVALID:
                raise ProtocolError(
                    f"home read grant without data: {entry}",
                    node=entry.home, block=entry.block, time=t,
                )
            self.complete_fault(requester, entry.block, t)
        else:
            home_tags.downgrade(entry.block)
            entry.sharers.add(requester)
            entry.state = DirState.SHARED
            self.send(
                Message(
                    MK.DATA_RO,
                    src=entry.home,
                    dst=requester,
                    block=entry.block,
                    payload_bytes=self.config.block_size,
                ),
                t,
            )

    def grant_rw(self, entry: DirEntry, requester: int, t: float) -> None:
        """Give ``requester`` the writable copy (all other copies are gone)."""
        home_tags = self.machine.node(entry.home).tags
        if requester == DISCARDED or self.machine.is_down(requester):
            # All other copies are already invalidated; with the requester
            # gone too, home memory is the sole — hence current — copy.
            entry.sharers.clear()
            entry.owner = None
            entry.state = DirState.IDLE
            home_tags.set(entry.block, AccessTag.READ_WRITE)
            return
        entry.sharers.clear()
        if requester == entry.home:
            entry.owner = None
            entry.state = DirState.IDLE
            home_tags.set(entry.block, AccessTag.READ_WRITE)
            self.complete_fault(requester, entry.block, t)
        else:
            entry.owner = requester
            entry.state = DirState.EXCLUSIVE
            home_tags.invalidate(entry.block)
            self.send(
                Message(
                    MK.DATA_RW,
                    src=entry.home,
                    dst=requester,
                    block=entry.block,
                    payload_bytes=self.config.block_size,
                ),
                t,
            )

    # -- pending-queue management ------------------------------------------------------------

    def queue_pending(self, entry: DirEntry, msg: Message) -> None:
        entry.pending.append(PendingRequest(kind=msg.kind, requester=msg.src))

    def _drain_pending(self, entry: DirEntry, t: float) -> None:
        """Re-dispatch queued requests once the entry is stable again."""
        while entry.pending and entry.state in DirState.STABLE:
            req = entry.pending.popleft()
            synthetic = Message(req.kind, src=req.requester, dst=entry.home, block=entry.block)
            self.dispatch(entry, req.kind, synthetic, t)

    # -- crash recovery (driven by repro.recovery.crash.CrashController) ------------------------

    def on_node_crashed(self, node: int, t: float) -> None:
        """Immediate crash effects: the node's volatile protocol state dies.

        Called at the crash instant, before survivors have detected anything;
        directory repair waits for :meth:`on_node_detected_down`.
        """
        self.outstanding.pop(node, None)
        for key in [k for k in self._deferred if k[0] == node]:
            del self._deferred[key]

    def on_node_detected_down(self, node: int, t: float) -> None:
        """Survivors detected the failure: rebuild what referenced the dead node.

        Entries homed at the dead node are purged (its directory memory died
        with it); every surviving entry is repaired so no request stays stuck
        waiting on a writeback or acknowledgement the dead node can no longer
        send.
        """
        self.directory.purge_home(node)
        for entry in self.directory.known():
            self.repair_entry_for_crash(entry, node, t)
        # Deferred invalidations/recalls *from* the dead node will never be
        # followed by the data they chased; left queued, they would fire as
        # unsolicited ACKs/writebacks against the rebuilt directory.
        for key, msgs in list(self._deferred.items()):
            kept = [m for m in msgs if m.src != node]
            if kept:
                self._deferred[key] = kept
            else:
                del self._deferred[key]

    def repair_entry_for_crash(self, entry: DirEntry, dead: int, t: float) -> None:
        """Remove every reference to ``dead`` from one surviving entry.

        Busy entries complete through their normal transitions by
        synthesizing the message the dead node owed (a writeback or an
        invalidation ACK); the grant guards suppress any grant addressed to
        the dead requester.  Note the simulator tracks permissions, not
        values: a dirty copy lost with its holder is modelled by declaring
        home memory current again.
        """
        if entry.pending:
            kept = [p for p in entry.pending if p.requester != dead]
            if len(kept) != len(entry.pending):
                entry.pending.clear()
                entry.pending.extend(kept)
        if entry.in_service == dead:
            entry.in_service = DISCARDED
        if entry.state == DirState.BUSY_INV and dead in entry.sharers:
            # The dead sharer's ACK will never come; account for it so the
            # waiting writer is granted (or the entry settles, if the writer
            # died too).
            self.dispatch(
                entry, MK.ACK,
                Message(MK.ACK, src=dead, dst=entry.home, block=entry.block), t,
            )
        elif (entry.state in (DirState.BUSY_RECALL_RO, DirState.BUSY_RECALL_RW)
                and entry.owner == dead):
            # The recalled writeback died with its owner: home reclaims the
            # block through the normal writeback transition.
            self.dispatch(
                entry, MK.WB_DATA,
                Message(MK.WB_DATA, src=dead, dst=entry.home, block=entry.block,
                        payload_bytes=self.config.block_size), t,
            )
        elif entry.state not in DirState.BUSY:
            home_tags = self.machine.node(entry.home).tags
            if entry.owner == dead:
                entry.owner = None
                entry.state = DirState.IDLE
                home_tags.set(entry.block, AccessTag.READ_WRITE)
            if dead in entry.sharers:
                entry.sharers.discard(dead)
                if (entry.state in self.crash_shared_states
                        and not entry.sharers):
                    entry.state = DirState.IDLE
                    home_tags.set(entry.block, AccessTag.READ_WRITE)
        self._drain_pending(entry, t)

    def rebuild_home_state(self, node: int, t: float) -> int:
        """A restarted home re-derives its directory from survivors' tags.

        For every block homed at ``node``: a surviving writable copy makes
        its holder the exclusive owner; surviving read-only copies rebuild
        the protocol's shared state (``crash_rebuild_shared_state``); with no
        surviving copy, home memory is the sole copy and the home tag returns
        to READ_WRITE.  Returns how many entries were rebuilt.
        """
        machine = self.machine
        home_tags = machine.node(node).tags
        rw_holder: dict[int, int] = {}
        ro_holders: dict[int, set[int]] = {}
        for other in machine.nodes:
            if other.id == node or machine.is_down(other.id):
                continue
            for block in other.tags.blocks_with_tag(AccessTag.READ_WRITE):
                if machine.home(block) == node:
                    rw_holder[block] = other.id
            for block in other.tags.blocks_with_tag(AccessTag.READ_ONLY):
                if machine.home(block) == node:
                    ro_holders.setdefault(block, set()).add(other.id)
        rebuilt = 0
        for region in machine.addr_space.regions:
            for block in machine.addr_space.blocks_of_range(region.base, region.size):
                if machine.home(block) != node:
                    continue
                owner = rw_holder.get(block)
                if owner is not None:
                    entry = self.directory.entry(block)
                    entry.state = DirState.EXCLUSIVE
                    entry.owner = owner
                    entry.sharers.clear()
                    entry.in_service = None
                    entry.acks_needed = 0
                    entry.pending.clear()
                    rebuilt += 1
                elif block in ro_holders:
                    entry = self.directory.entry(block)
                    entry.state = self.crash_rebuild_shared_state
                    entry.owner = None
                    entry.sharers = NodeSet(ro_holders[block])
                    entry.in_service = None
                    entry.acks_needed = 0
                    entry.pending.clear()
                    home_tags.set(block, self.crash_rebuild_home_tag)
                    rebuilt += 1
                else:
                    home_tags.set(block, AccessTag.READ_WRITE)
        return rebuilt

    def reissue_faults_for_home(self, node: int, t: float) -> int:
        """Re-send outstanding requests the crash of home ``node`` orphaned.

        A request in flight to (or queued at) the dead home was lost with
        it; once the home restarts, each survivor still faulted on one of
        its blocks sends a fresh request.  With the reliable transport
        installed, a channel that still has unacked sends is skipped — its
        own retransmission will reach the restarted home.
        """
        transport = self.machine._transport
        reissued = 0
        for requester in sorted(self.outstanding):
            proc, block, kind = self.outstanding[requester]
            if self.machine.home(block) != node:
                continue
            if transport is not None and transport.has_unacked(requester, node):
                continue
            req = MK.GET_RO if kind == "r" else MK.GET_RW
            self.send(Message(req, src=requester, dst=node, block=block), t)
            self.machine.node(requester).stats.reissued_requests += 1
            reissued += 1
            obs = self.machine.obs
            if obs.enabled:
                obs.emit(EventKind.REISSUE, t, node=requester, block=block,
                         home=node)
        return reissued

    # -- phase-group hooks (overridden by the predictive protocol) ------------------------------

    def begin_group(self, directive_id: int, t: float) -> list[float] | None:
        return None

    def end_group(self, directive_id: int, t: float) -> None:
        return None

    def adjust_barrier(self, arrivals: dict[int, float]) -> dict[int, float]:
        return arrivals
