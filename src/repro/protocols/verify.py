"""Static protocol audit: transition-table completeness checking.

Teapot's purpose was making coherence protocols tractable to *verify*; this
module provides the static half of that for our teapot-style protocols:
given a specification of which message kinds can legally arrive in which
directory states, it audits a protocol class's transition table for

* **holes** — a legal (state, event) pair with no declared handler (the
  dispatcher would raise :class:`ProtocolError` at runtime), and
* **dead transitions** — declared handlers for pairs the specification says
  cannot occur (usually a refactoring leftover), and
* **unknown states** — declared handlers for states the specification does
  not mention at all (a renamed or removed state; the handler can never
  fire against a spec-conforming directory).

The Stache/predictive home-side specification is provided as
:data:`STACHE_HOME_SPEC`; tests assert the shipped protocols are
hole-free against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.protocols.directory import DirState
from repro.protocols.messages import MessageKind as MK
from repro.protocols.teapot import ProtocolStateMachine

#: Which message kinds may arrive at the home node in each directory state,
#: for a Stache-like write-invalidate protocol.
STACHE_HOME_SPEC: dict[str, set[str]] = {
    DirState.IDLE: {MK.GET_RO, MK.GET_RW},
    DirState.SHARED: {MK.GET_RO, MK.GET_RW},
    DirState.EXCLUSIVE: {MK.GET_RO, MK.GET_RW},
    # while busy, new requests queue and the awaited response arrives
    DirState.BUSY_RECALL_RO: {MK.GET_RO, MK.GET_RW, MK.WB_DATA},
    DirState.BUSY_RECALL_RW: {MK.GET_RO, MK.GET_RW, MK.WB_DATA},
    DirState.BUSY_INV: {MK.GET_RO, MK.GET_RW, MK.ACK},
}


@dataclass
class AuditResult:
    protocol: str
    holes: list[tuple[str, str]] = field(default_factory=list)
    dead: list[tuple[str, str]] = field(default_factory=list)
    covered: list[tuple[str, str]] = field(default_factory=list)
    #: transitions declared for states the spec does not know about
    unknown_states: list[tuple[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.holes

    @property
    def clean(self) -> bool:
        """Hole-free AND free of dead/unknown-state leftovers."""
        return not (self.holes or self.dead or self.unknown_states)

    def report(self) -> str:
        lines = [f"protocol audit: {self.protocol}"]
        lines.append(f"  covered transitions: {len(self.covered)}")
        if self.holes:
            lines.append("  HOLES (legal events with no handler):")
            for state, event in self.holes:
                lines.append(f"    ({state}, {event})")
        else:
            lines.append("  no holes: every legal (state, event) has a handler")
        if self.dead:
            lines.append("  dead transitions (handler for impossible event):")
            for state, event in self.dead:
                lines.append(f"    ({state}, {event})")
        if self.unknown_states:
            lines.append("  unknown states (handler for state absent from the spec):")
            for state, event in self.unknown_states:
                lines.append(f"    ({state}, {event})")
        return "\n".join(lines)


def audit_protocol(
    protocol_cls: type[ProtocolStateMachine],
    spec: dict[str, set[str]],
    extra_states: dict[str, set[str]] | None = None,
) -> AuditResult:
    """Audit ``protocol_cls``'s transition table against ``spec``."""
    table = protocol_cls.transitions()
    full_spec = dict(spec)
    if extra_states:
        for state, events in extra_states.items():
            full_spec.setdefault(state, set()).update(events)

    result = AuditResult(protocol=protocol_cls.__name__)
    for state, events in full_spec.items():
        for event in sorted(events):
            if (state, event) in table:
                result.covered.append((state, event))
            else:
                result.holes.append((state, event))
    for (state, event) in table:
        if state not in full_spec:
            result.unknown_states.append((state, event))
        elif event not in full_spec[state]:
            result.dead.append((state, event))
    return result
