"""A Teapot-style protocol-specification framework.

The paper's predictive protocol "was developed using Teapot, a domain-specific
language that reduces the complexity of specifying and developing
cache-coherence protocols" (§3).  This module gives our protocols the same
structure: a protocol is a set of ``(state, event) -> handler`` transitions
declared with the :func:`transition` decorator; dispatching an event for
which the current state declares no transition raises
:class:`~repro.util.errors.ProtocolError` — the framework, not each protocol,
polices the state machine.

Example::

    class HomeSide(ProtocolStateMachine):
        @transition("IDLE", "GET_RO")
        def idle_get_ro(self, entry, msg, t): ...

        @transition(("SHARED", "IDLE"), "GET_RW")
        def give_exclusive(self, entry, msg, t): ...

Transitions may be declared for several states at once by passing a tuple.
``entry`` is any object with a ``state`` attribute (typically a directory
entry); handlers are responsible for assigning ``entry.state`` themselves,
which keeps multi-step (transient-state) protocols explicit.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.util.errors import ProtocolError

#: Attribute attached to decorated methods: list of (state, event) keys.
_TRANSITION_ATTR = "_teapot_transitions"


def transition(states: str | Iterable[str], event: str):
    """Declare the decorated method as the handler for (state, event)."""
    if isinstance(states, str):
        states = (states,)
    else:
        states = tuple(states)

    def decorate(fn: Callable) -> Callable:
        keys = getattr(fn, _TRANSITION_ATTR, [])
        keys.extend((s, event) for s in states)
        setattr(fn, _TRANSITION_ATTR, keys)
        return fn

    return decorate


class ProtocolStateMachine:
    """Base class that collects :func:`transition`-decorated methods.

    Subclasses inherit their parents' transition tables and may override
    individual (state, event) pairs — exactly how the predictive protocol
    "augments Stache handlers" in the paper.
    """

    _table: dict[tuple[str, str], str]

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        table: dict[tuple[str, str], str] = {}
        # Walk the MRO from base to derived so derived declarations win.
        for klass in reversed(cls.__mro__):
            for name, member in vars(klass).items():
                for key in getattr(member, _TRANSITION_ATTR, ()):
                    table[key] = name
        cls._table = table

    @classmethod
    def transitions(cls) -> dict[tuple[str, str], str]:
        """The (state, event) -> method-name table (for tests and docs)."""
        return dict(cls._table)

    def dispatch(self, entry: Any, event: str, *args: Any, **kwargs: Any) -> Any:
        """Invoke the handler for (entry.state, event).

        Raises :class:`ProtocolError` if the protocol defines no transition —
        in a correct protocol this indicates a designed-out race actually
        occurred.
        """
        key = (entry.state, event)
        name = self._table.get(key)
        if name is None:
            raise ProtocolError(
                f"{type(self).__name__}: no transition for event {event!r} "
                f"in state {entry.state!r} (entry={entry!r})"
            )
        return getattr(self, name)(entry, *args, **kwargs)

    def has_transition(self, state: str, event: str) -> bool:
        return (state, event) in self._table
