"""The simulated DSM machine and the trace-replay execution model.

Applications execute in two passes (DESIGN.md §5.1): a *value pass* computes
real numerics and records, per processor, an ordered trace of block-level
shared accesses and compute charges; this module replays those traces through
a coherence protocol on a discrete-event simulation of the machine.

A phase trace is replayed as follows.  All processors start simultaneously
(phases are barrier-separated).  Each processor consumes its ops: compute
charges advance its local clock; accesses its tag table permits cost
``cache_hit_cost``; anything else faults into the protocol, which exchanges
messages (with network latency and per-node handler occupancy) and resumes
the processor when the access is granted.  A processor that finishes its ops
arrives at the phase barrier; the barrier releases ``barrier_latency`` after
the last arrival, and each node's wait is accounted as synchronization time.

Processors may run *ahead* of the event clock while executing only local
work, but never past the next scheduled event (which could invalidate a tag
they are about to consult) — the classic conservative-time-window rule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Protocol as TypingProtocol, Sequence

from repro.obs.events import EventKind, NULL_TRACER, Tracer
from repro.sim.engine import Engine
from repro.sim.stats import PhaseBreakdown, RunStats, TimeCategory
from repro.tempest.addrspace import AddressSpace
from repro.tempest.network import Message, Network
from repro.tempest.node import Node
from repro.util.config import MachineConfig
from repro.util.errors import SimulationError

#: Trace operations: ("r", block), ("w", block), ("c", cycles)
TraceOp = tuple


@dataclass
class PhaseTrace:
    """The recorded shared-access trace of one parallel phase.

    ``ops[p]`` is processor *p*'s ordered list of operations.
    """

    name: str
    ops: list[list[TraceOp]]

    def op_count(self) -> int:
        return sum(len(o) for o in self.ops)


class CoherenceProtocolAPI(TypingProtocol):
    """What the machine requires of a protocol (see repro.protocols.base)."""

    name: str

    def fault(self, proc: "ReplayProcessor", block: int, kind: str, t: float) -> None: ...

    def on_message(self, msg: Message, t: float) -> None: ...

    def begin_group(self, directive_id: int, t: float) -> list[float] | None:
        """Start a compiler-directed phase group at time ``t``.

        May schedule pre-send traffic on the engine; returns per-node
        *send-side* completion times, or None if this protocol has no
        pre-send phase.
        """
        ...

    def end_group(self, directive_id: int, t: float) -> None: ...

    def adjust_barrier(self, arrivals: dict[int, float]) -> dict[int, float]:
        """Hook run at each phase barrier; may delay arrivals (e.g. a
        write-update protocol pushing this phase's writes to consumers)."""
        ...


class ReplayProcessor:
    """Replays one node's per-phase op list against the protocol."""

    __slots__ = (
        "machine",
        "node",
        "ops",
        "index",
        "t",
        "waiting",
        "miss_start",
        "pending_op",
        "done",
        "crash_at",
        "restart_delay",
    )

    def __init__(self, machine: "Machine", node: Node, ops: list[TraceOp], start: float):
        self.machine = machine
        self.node = node
        self.ops = ops
        self.index = 0
        self.t = start
        self.waiting = False
        self.miss_start = 0.0
        self.pending_op: TraceOp | None = None
        self.done = False
        #: armed by the crash controller: crash-stop before executing this op
        self.crash_at: int | None = None
        self.restart_delay = 0.0

    # -- execution -------------------------------------------------------------

    def start(self) -> None:
        self._schedule_run(self.t)

    def _schedule_run(self, t: float) -> None:
        """Schedule the next dispatch, incarnation-guarded under crash plans.

        The closure captures the node's incarnation *at schedule time*: a
        continuation scheduled before a crash must not fire into the node's
        next life, and one scheduled while down must not fire at all.
        """
        ctl = self.machine.crash_controller
        if ctl is None:
            self.machine.engine.schedule(t, self._run)
        else:
            inc = ctl.incarnations[self.node.id]
            self.machine.engine.schedule(t, lambda: self._run_alive(inc))

    def _run_alive(self, inc: int) -> None:
        ctl = self.machine.crash_controller
        if ctl is not None and (self.node.id in ctl.down
                                or ctl.incarnations[self.node.id] != inc):
            return
        self._run()

    def _run(self) -> None:
        """Process ops inline up to the conservative horizon, then yield."""
        if self.done:
            raise SimulationError(f"processor {self.node.id} ran after completion")
        eng = self.machine.engine
        cfg = self.machine.config
        tags = self.node.tags
        stats = self.node.stats
        horizon = eng.peek_time()
        if horizon is None:
            horizon = math.inf
        ops = self.ops
        n = len(ops)
        progressed = False  # always make progress on >=1 op per dispatch,
        # otherwise same-timestamp processors livelock re-yielding to each
        # other; a tie with a pending event is semantically unordered anyway
        while self.index < n:
            if self.crash_at is not None and self.index >= self.crash_at:
                self.machine.crash_controller.crash_now(self)
                return
            if progressed and self.t >= horizon:
                self._schedule_run(self.t)
                return
            progressed = True
            op = ops[self.index]
            kind = op[0]
            if kind == "c":
                cycles = op[1]
                self.t += cycles
                stats.add(TimeCategory.COMPUTE, cycles)
                self.index += 1
            elif kind == "r" or kind == "w":
                block = op[1]
                if tags.permits(block, kind):
                    self.t += cfg.cache_hit_cost
                    stats.add(TimeCategory.COMPUTE, cfg.cache_hit_cost)
                    stats.local_hits += 1
                    self.index += 1
                    self.machine.note_access(self.node.id, block, kind)
                else:
                    self.waiting = True
                    self.miss_start = self.t
                    self.pending_op = op
                    if kind == "r":
                        stats.read_misses += 1
                    else:
                        stats.write_misses += 1
                    obs = self.machine.obs
                    if obs.enabled:
                        obs.emit(EventKind.MISS_BEGIN, self.t,
                                 node=self.node.id, block=block, access=kind)
                    self.machine.protocol.fault(self, block, kind, self.t)
                    return
            else:
                raise SimulationError(f"unknown trace op {op!r}")
        self.done = True
        self.machine._arrive_barrier(self, self.t)

    def resume(self, t: float) -> None:
        """Called by the protocol when the faulting access has been granted.

        The stall (fault detection, request/response messages, handler
        queueing, invalidation rounds) is charged as remote-data-wait time.
        """
        if not self.waiting:
            raise SimulationError(f"resume of non-waiting processor {self.node.id}")
        if t < self.miss_start:
            raise SimulationError("protocol resumed processor in its past")
        op = self.pending_op
        assert op is not None
        if not self.node.tags.permits(op[1], op[0]):
            raise SimulationError(
                f"protocol resumed node {self.node.id} without granting "
                f"{op[0]!r} on block {op[1]}"
            )
        self.node.stats.add(TimeCategory.REMOTE_WAIT, t - self.miss_start)
        obs = self.machine.obs
        if obs.enabled:
            obs.emit(EventKind.MISS_END, t, node=self.node.id, block=op[1],
                     access=op[0], wait=t - self.miss_start)
        self.machine.note_access(self.node.id, op[1], op[0])
        self.waiting = False
        self.pending_op = None
        # The access completes now: consume the op (it is not a second,
        # separately-counted hit) and continue.
        self.t = t + self.machine.config.cache_hit_cost
        self.node.stats.add(TimeCategory.COMPUTE, self.machine.config.cache_hit_cost)
        self.index += 1
        self._schedule_run(self.t)


class Machine:
    """A simulated N-node DSM machine running one coherence protocol.

    The protocol is supplied as a factory ``protocol_factory(machine)`` so
    protocols can hold a back-reference without an import cycle.
    """

    def __init__(self, config: MachineConfig, protocol_factory,
                 engine: Engine | None = None) -> None:
        self.config = config
        self.engine = engine if engine is not None else Engine()
        self.addr_space = AddressSpace(config)
        self.network = Network(self.engine, config)
        self.stats = RunStats(config.n_nodes)
        self.nodes = [Node(i, stats=self.stats.nodes[i]) for i in range(config.n_nodes)]
        self.clock: float = 0.0  # barrier-release time of the last phase
        #: per-category across-node cycle totals at the end of the last phase;
        #: run_phase stores the deltas on each PhaseBreakdown so the phase
        #: breakdowns telescope exactly to the node accumulators
        self._phase_cycle_marks: dict[TimeCategory, float] = {
            c: 0.0 for c in TimeCategory
        }
        self.current_directive: int | None = None
        #: (node, block) pairs touched since the current group began
        self.group_accessed: set[tuple[int, int]] = set()
        #: (node, block) written during the current phase (for write-update)
        self.phase_writes: set[tuple[int, int]] = set()
        self._barrier_arrivals: dict[int, float] = {}
        self._phase_running = False
        #: optional event sink: when set, every begin_group/run_phase/
        #: end_group appends ("begin_group", id) / ("phase", trace) /
        #: ("end_group",) — a complete session recording that
        #: repro.tempest.tracefile can save and replay on other machines
        self.recorder: list | None = None
        #: observers called as ``hook(node, block, kind)`` on every completed
        #: shared access (hits and granted faults alike) — the differential
        #: oracle in repro.verify records per-block reader/writer sets here
        self.access_hooks: list = []
        #: observers called as ``hook(machine, trace)`` after each phase's
        #: barrier releases — the invariant monitor checks quiescence here
        self.phase_hooks: list = []
        #: fault-injection state (None on the fault-free fast path)
        self.fault_injector = None
        self._transport = None
        #: crash-recovery state (None unless the plan can crash nodes)
        self.crash_controller = None
        self.watchdog = None
        #: phases run so far; keys the per-(node, phase) crash decisions
        self.phase_index = 0
        #: observability sink (repro.obs); the default null tracer makes
        #: every instrumented site a single ``if obs.enabled`` check
        self.obs: Tracer = NULL_TRACER
        #: compiled-simulation pipeline (repro.fastpath); None on the
        #: reference path — see :meth:`use_fastpath`
        self._fastpath = None
        self.protocol: CoherenceProtocolAPI = protocol_factory(self)
        self.network.attach(self._deliver)

    # -- plumbing ---------------------------------------------------------------

    def home(self, block: int) -> int:
        return self.addr_space.home_of_block(block)

    def node(self, i: int) -> Node:
        return self.nodes[i]

    def is_down(self, node: int) -> bool:
        ctl = self.crash_controller
        return ctl is not None and node in ctl.down

    def incarnation(self, node: int) -> int:
        ctl = self.crash_controller
        return 0 if ctl is None else ctl.incarnations[node]

    def schedule_node_event(self, node: int, time: float, fn) -> None:
        """Schedule a node-local effect, skipped if the node dies first.

        Handler effects (tag changes, directory updates, replies) scheduled
        before a crash must not fire while the node is down or after it
        restarts with a fresh incarnation; without a crash controller this is
        a plain engine schedule.
        """
        ctl = self.crash_controller
        if ctl is None:
            self.engine.schedule(time, fn)
            return
        inc = ctl.incarnations[node]

        def _fire() -> None:
            if node in ctl.down or ctl.incarnations[node] != inc:
                return
            fn()

        self.engine.schedule(time, _fire)

    def _deliver(self, msg: Message, t: float) -> None:
        ctl = self.crash_controller
        if ctl is not None and not ctl.deliverable(msg):
            self.network.messages_fenced += 1
            return
        if self._transport is not None:
            for accepted in self._transport.on_arrival(msg, t):
                self._dispatch(accepted, t)
        else:
            self._dispatch(msg, t)

    def _dispatch(self, msg: Message, t: float) -> None:
        self.nodes[msg.src].stats.messages_sent += 1
        self.nodes[msg.src].stats.bytes_sent += msg.payload_bytes
        self.protocol.on_message(msg, t)

    def send(self, msg: Message, at: float) -> float:
        if self._transport is not None:
            return self._transport.send(msg, at)
        return self.network.send(msg, at)

    def install_fault_plan(self, plan) -> None:
        """Arm a :class:`repro.faults.plan.FaultPlan` on this machine.

        An inactive (all-zero) plan is a no-op: the injector, stall hooks,
        and reliable transport are only installed when the plan can actually
        perturb something, so fault-free runs take the unchanged fast path.
        """
        if plan is None or not plan.is_active():
            return
        # Imported lazily: repro.faults reuses the verify subsystem, which
        # builds machines via core.factory — importing it at module scope
        # would create a cycle.
        from repro.faults.inject import FaultInjector
        from repro.faults.transport import ReliableTransport

        injector = FaultInjector(plan)
        self.fault_injector = injector
        if plan.affects_messages():
            self.network.injector = injector
            self._transport = ReliableTransport(self, injector)
        if plan.stall_rate > 0.0 or injector.has_scripted("stall"):
            for node in self.nodes:
                node.stall_hook = injector.stall_hook_for(node.id)
        if plan.affects_nodes():
            from repro.recovery.crash import CrashController

            self.crash_controller = CrashController(self, injector, plan)
            self.watchdog = Watchdog(self, plan.detect_cycles)
            self.network.incarnation_of = self.crash_controller.incarnation

    def use_fastpath(self) -> None:
        """Switch this machine to the compiled fast path (repro.fastpath).

        Replays then run through the calendar-queue engine's batched
        dispatch, packed tag tables, and the analyze/specialize/schedule
        pass pipeline — with bit-identical observable behaviour (enforced
        by the differential suite in ``tests/fastpath``).  Requires the
        engine to be a :class:`~repro.fastpath.calqueue.FastEngine`;
        normally reached via ``make_machine(..., fast=True)``.
        """
        # Imported lazily; repro.fastpath subclasses this module's types.
        from repro.fastpath.calqueue import FastEngine
        from repro.fastpath.packed import PackedTagTable
        from repro.fastpath.passes import FastPathPipeline

        if not isinstance(self.engine, FastEngine):
            raise SimulationError(
                "the fast path requires the machine to run on a FastEngine"
            )
        for node in self.nodes:
            packed = PackedTagTable(node.id)
            for block, tag in node.tags.items():
                packed.set(block, tag)
            node.tags = packed
        self._fastpath = FastPathPipeline(self)

    def attach_tracer(self, tracer: Tracer) -> None:
        """Route this machine's (and its network's and engine's) events to
        ``tracer``; pass :data:`NULL_TRACER` to detach."""
        self.obs = tracer
        self.network.obs = tracer
        self.engine.obs = tracer if tracer.enabled else None

    def note_access(self, node: int, block: int, kind: str) -> None:
        """Record that ``node`` touched ``block`` (pre-send usefulness and
        write-update bookkeeping)."""
        self.group_accessed.add((node, block))
        if kind == "w":
            self.phase_writes.add((node, block))
        for hook in self.access_hooks:
            hook(node, block, kind)

    def was_accessed(self, node: int, block: int) -> bool:
        return (node, block) in self.group_accessed

    # -- phase groups (compiler directives) ---------------------------------------

    def begin_group(self, directive_id: int) -> None:
        """Enter a compiler-directed phase group: pre-send per the schedule.

        For protocols without a pre-send phase this only sets the recording
        context.  The pre-send work plus its closing barrier are charged to
        the PREDICTIVE category.
        """
        if self._phase_running:
            raise SimulationError("begin_group during a running phase")
        if self.recorder is not None:
            self.recorder.append(("begin_group", directive_id))
        self.current_directive = directive_id
        self.group_accessed.clear()
        start = self.clock
        obs = self.obs
        if obs.enabled:
            obs.set_directive(directive_id)
            obs.emit(EventKind.GROUP_BEGIN, start)
        send_done = self.protocol.begin_group(directive_id, start)
        self.engine.run()
        if send_done is not None:
            # A node is done with pre-send when it has finished walking its
            # own schedule AND installed everything pre-sent to it.
            completions = [
                max(send_done[i], self.nodes[i].handler_busy_until, start)
                for i in range(self.config.n_nodes)
            ]
            release = max(completions) + self.config.barrier_latency
            release = max(release, self.engine.now)
            for node in self.nodes:
                # The whole node is occupied by the pre-send phase from its
                # start until the closing barrier releases.
                node.stats.add(TimeCategory.PREDICTIVE, release - start)
            self.clock = release
            if obs.enabled:
                obs.emit(EventKind.PRESEND_PHASE, start,
                         cycles=release - start)

    def end_group(self) -> None:
        if self.recorder is not None and self.current_directive is not None:
            self.recorder.append(("end_group",))
        if self.current_directive is not None:
            self.protocol.end_group(self.current_directive, self.clock)
            obs = self.obs
            if obs.enabled:
                obs.emit(EventKind.GROUP_END, self.clock)
                obs.set_directive(None)
        self.current_directive = None

    # -- phase execution -----------------------------------------------------------

    def run_phase(self, trace: PhaseTrace) -> PhaseBreakdown:
        """Replay one barrier-terminated parallel phase."""
        if len(trace.ops) != self.config.n_nodes:
            raise SimulationError(
                f"trace has {len(trace.ops)} processor streams, machine has "
                f"{self.config.n_nodes} nodes"
            )
        if self._phase_running:
            raise SimulationError("run_phase is not reentrant")
        if self.recorder is not None:
            self.recorder.append(("phase", trace))
        self._phase_running = True
        start = self.clock
        self.phase_writes.clear()
        self._barrier_arrivals = {}
        misses_before = self.stats.misses
        hits_before = self.stats.local_hits
        msgs_before = self.stats.messages
        phase_index = self.phase_index
        self.phase_index += 1
        obs = self.obs
        if obs.enabled:
            obs.begin_phase(trace.name, self.current_directive, start)
        if self._fastpath is not None:
            prog = self._fastpath.compile(trace, start)
            procs = prog.procs
        else:
            prog = None
            procs = [
                ReplayProcessor(self, self.nodes[i], trace.ops[i], start)
                for i in range(self.config.n_nodes)
            ]
        self._procs = procs
        if self.crash_controller is not None:
            self.crash_controller.arm_phase(procs, phase_index)
        if prog is not None:
            self._fastpath.launch(prog)
        else:
            for p in procs:
                p.start()
        self.engine.run()
        if len(self._barrier_arrivals) != self.config.n_nodes:
            missing = [p.node.id for p in procs if not p.done]
            crashed = ""
            if self.crash_controller is not None and self.crash_controller.log:
                crashed = ("; crash history: "
                           + "; ".join(str(r) for r in self.crash_controller.log))
            raise SimulationError(
                f"phase {trace.name!r}: deadlock — processors {missing} never "
                f"reached the barrier (protocol dropped a resume?){crashed}"
            )
        arrivals = self.protocol.adjust_barrier(dict(self._barrier_arrivals))
        release = max(arrivals.values()) + self.config.barrier_latency
        # Protocol traffic may outlast the barrier (e.g. unsolicited pushes
        # still in flight); the next phase cannot start before the engine
        # has caught up with it.
        release = max(release, self.engine.now)
        for node_id, arrived in arrivals.items():
            self.nodes[node_id].stats.add(TimeCategory.SYNCH, release - arrived)
        self.clock = release
        self._phase_running = False
        if obs.enabled:
            obs.emit(EventKind.BARRIER_RELEASE, release)
            obs.end_phase(
                release,
                misses=self.stats.misses - misses_before,
                hits=self.stats.local_hits - hits_before,
                messages=self.stats.messages - msgs_before,
            )
        breakdown = PhaseBreakdown(
            trace.name,
            self.current_directive,
            start,
            release,
            misses=self.stats.misses - misses_before,
            hits=self.stats.local_hits - hits_before,
            messages=self.stats.messages - msgs_before,
            cycles=self._phase_cycle_delta(),
        )
        self.stats.phases.append(breakdown)
        for hook in self.phase_hooks:
            hook(self, trace)
        return breakdown

    def _phase_cycle_delta(self) -> dict[str, float]:
        """Advance the per-category marks; return this phase's nonzero deltas.

        Pre-send charges from an intervening ``begin_group`` are included in
        the next phase's delta, so the breakdowns always telescope to the
        node accumulators.
        """
        delta: dict[str, float] = {}
        for c in TimeCategory:
            total = sum(node.stats.cycles[c] for node in self.nodes)
            if total != self._phase_cycle_marks[c]:
                delta[c.value] = total - self._phase_cycle_marks[c]
                self._phase_cycle_marks[c] = total
        return delta

    def _arrive_barrier(self, proc: ReplayProcessor, t: float) -> None:
        if proc.node.id in self._barrier_arrivals:
            raise SimulationError(f"node {proc.node.id} arrived at barrier twice")
        self._barrier_arrivals[proc.node.id] = t
        obs = self.obs
        if obs.enabled:
            obs.emit(EventKind.BARRIER_ARRIVE, t, node=proc.node.id)

    # -- finishing --------------------------------------------------------------------

    def finish(self) -> RunStats:
        """Close out the run and return its statistics."""
        self.stats.wall_time = self.clock
        self.stats.check_conservation()
        return self.stats


class Watchdog:
    """Liveness layer: bounds how long a dead node can stall the machine.

    A crash-stop failure is detected exactly ``detect_cycles`` simulated
    cycles after the crash (survivors miss the node's heartbeats); detection
    fires the recovery controller, which repairs directory state and unblocks
    requests stuck on the dead node.  Because detection is an engine event,
    a barrier stall caused by a dead node is bounded by construction: either
    recovery lets the phase complete, or the drained engine fails fast with a
    deadlock :class:`SimulationError` — the run can never hang.
    """

    def __init__(self, machine: "Machine", detect_cycles: float) -> None:
        self.machine = machine
        self.detect_cycles = detect_cycles
        self.detections = 0

    def arm(self, node: int, t_crash: float) -> float:
        """Schedule failure detection for ``node``; returns the detect time."""
        t_detect = t_crash + self.detect_cycles

        def _fire() -> None:
            self.detections += 1
            self.machine.crash_controller.detect(node, t_detect)

        self.machine.engine.schedule(t_detect, _fire)
        return t_detect
