"""Session recordings: save an application's phase traces, replay anywhere.

The two-pass execution model makes traces first-class: a *session* —
the ordered sequence of ``begin_group`` / ``phase`` / ``end_group`` events
the runtime issued — fully determines the protocol-level behaviour of a run.
This module persists sessions as JSON-lines and replays them on fresh
machines, so one (possibly expensive) value pass can be compared across
many protocols and machine configurations:

    machine.recorder = session = []
    program.run(machine, optimized=True)

    save_session(session, "run.trace")
    for protocol in ("stache", "predictive"):
        m = make_machine(cfg, protocol)
        stats = replay_session(load_session("run.trace"), m)

Note: a recorded session bakes in its directive structure and the *n_nodes*
of the recording machine; replaying needs an equal node count and an
address-space layout with the same block numbering (replay_session can
recreate the regions if they were recorded with the session — see
``record_regions``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.sim.stats import RunStats
from repro.tempest.machine import Machine, PhaseTrace
from repro.tempest.tags import AccessTag
from repro.util.errors import SimulationError

#: session event types
Event = tuple

FORMAT_VERSION = 1


def record_regions(machine: Machine) -> list[dict]:
    """Capture the machine's region layout so replay can recreate homes."""
    regions = []
    for r in machine.addr_space.regions:
        pages = r.size // r.page_size
        regions.append({
            "name": r.name,
            "size": r.size,
            "homes": [r.home_policy(p) for p in range(pages)],
        })
    return regions


def save_session(events: Iterable[Event], path, regions: list[dict] | None = None) -> None:
    """Write a recorded session to ``path`` as JSON-lines."""
    path = Path(path)
    with path.open("w") as fh:
        fh.write(json.dumps({"version": FORMAT_VERSION,
                             "regions": regions or []}) + "\n")
        for ev in events:
            kind = ev[0]
            if kind == "phase":
                trace: PhaseTrace = ev[1]
                fh.write(json.dumps({
                    "event": "phase",
                    "name": trace.name,
                    "ops": trace.ops,
                }) + "\n")
            elif kind == "begin_group":
                fh.write(json.dumps({"event": "begin_group", "id": ev[1]}) + "\n")
            elif kind == "end_group":
                fh.write(json.dumps({"event": "end_group"}) + "\n")
            else:
                raise SimulationError(f"unknown session event {ev!r}")


def load_session(path) -> tuple[list[Event], list[dict]]:
    """Read a session file; returns (events, regions)."""
    path = Path(path)
    events: list[Event] = []
    regions: list[dict] = []
    with path.open() as fh:
        header = json.loads(fh.readline())
        if header.get("version") != FORMAT_VERSION:
            raise SimulationError(
                f"unsupported trace format {header.get('version')!r}"
            )
        regions = header.get("regions", [])
        for line in fh:
            rec = json.loads(line)
            if rec["event"] == "phase":
                ops = [[tuple(op) for op in node_ops] for node_ops in rec["ops"]]
                events.append(("phase", PhaseTrace(rec["name"], ops)))
            elif rec["event"] == "begin_group":
                events.append(("begin_group", rec["id"]))
            elif rec["event"] == "end_group":
                events.append(("end_group",))
            else:
                raise SimulationError(f"unknown record {rec!r}")
    return events, regions


def restore_regions(machine: Machine, regions: list[dict]) -> None:
    """Recreate recorded regions (and initial home ownership) on a machine."""
    for spec in regions:
        homes = spec["homes"]
        region = machine.addr_space.allocate(
            spec["name"], spec["size"],
            home_policy=lambda p, homes=homes: homes[min(p, len(homes) - 1)],
        )
        first = machine.addr_space.block_of(region.base)
        nblocks = region.size // machine.config.block_size
        for b in range(first, first + nblocks):
            machine.nodes[machine.home(b)].tags.set(b, AccessTag.READ_WRITE)


def replay_session(
    session: tuple[list[Event], list[dict]] | list[Event],
    machine: Machine,
    regions: list[dict] | None = None,
    finish: bool = True,
) -> RunStats:
    """Replay a recorded session on ``machine`` and return its statistics.

    ``finish=False`` skips the end-of-run close-out so the machine can be
    checkpointed (:mod:`repro.recovery.checkpoint`) or continued with more
    events; resuming a restored machine should also pass ``regions=[]`` —
    the checkpoint already restored the region layout and tag state, and
    re-running ``restore_regions`` would clobber it.
    """
    if isinstance(session, tuple):
        events, rec_regions = session
        regions = regions if regions is not None else rec_regions
    else:
        events = session
    if regions:
        restore_regions(machine, regions)
    for ev in events:
        kind = ev[0]
        if kind == "begin_group":
            machine.begin_group(ev[1])
        elif kind == "phase":
            trace: PhaseTrace = ev[1]
            if len(trace.ops) != machine.config.n_nodes:
                raise SimulationError(
                    f"session was recorded on {len(trace.ops)} nodes; this "
                    f"machine has {machine.config.n_nodes}"
                )
            machine.run_phase(trace)
        elif kind == "end_group":
            machine.end_group()
        else:
            raise SimulationError(f"unknown session event {ev!r}")
    if not finish:
        return machine.stats
    return machine.finish()
