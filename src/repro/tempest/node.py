"""A processing node: tags, statistics, and protocol-handler occupancy.

Blizzard runs protocol handlers in software; each message a node receives
occupies it for ``handler_cost`` cycles.  We model the handler as a dedicated
serial resource per node (a network-interface / protocol co-processor in the
style of Typhoon): messages to the same node are serviced FIFO, so a home node
swamped by requests — e.g. Water's n/2 readers of one molecule — becomes a
real bottleneck, which is one of the effects pre-sending removes.
"""

from __future__ import annotations

from repro.sim.stats import NodeStats
from repro.tempest.tags import TagTable


class Node:
    """State owned by one node of the simulated machine."""

    def __init__(self, node_id: int, stats: NodeStats | None = None):
        self.id = node_id
        self.tags = TagTable(node_id)
        self.stats = stats if stats is not None else NodeStats(node_id)
        #: time until which the protocol-handler resource is busy
        self.handler_busy_until: float = 0.0
        #: optional fault hook: () -> extra cycles for the next handler service
        self.stall_hook = None

    def service_handler(self, arrival: float, cost: float) -> float:
        """Occupy the handler resource for ``cost`` cycles; FIFO service.

        Returns the completion time (when the handler's effects take place).
        A fault-injection ``stall_hook``, when attached, may lengthen any
        individual service to model a slow or wedged protocol processor.
        """
        if self.stall_hook is not None:
            cost += self.stall_hook()
        start = max(arrival, self.handler_busy_until)
        done = start + cost
        self.handler_busy_until = done
        return done

    def reset_timing(self) -> None:
        self.handler_busy_until = 0.0

    def reset_for_restart(self) -> None:
        """Cold-start after a crash: caches empty, handler idle.

        Statistics survive (they describe the whole run, crashes included);
        home-memory contents are rebuilt by the recovery protocol.
        """
        self.tags.clear()
        self.handler_busy_until = 0.0

    def __repr__(self) -> str:
        return f"<Node {self.id} tags={len(self.tags)}>"
