"""The interconnection network model.

A message costs ``msg_latency + per_byte_cost * payload`` cycles of flight
time; coalesced bulk transfers add ``bulk_msg_overhead`` once but amortize it
over many blocks (paper §3.4: "the predictive protocol coalesces neighboring
blocks and transfers them using bulk messages to amortize message startup
costs").  Delivery invokes the destination node's protocol dispatcher through
the discrete-event engine; per-node handler occupancy is modelled by
:class:`repro.tempest.node.Node`.

Fault injection: an optional injector (see :mod:`repro.faults.inject`) may be
attached as ``network.injector``.  Each physical transmission then consults it
and may be dropped, duplicated, or delayed.  With no injector attached (the
default) the send path is byte-for-byte the fault-free one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.obs.events import EventKind, NULL_TRACER
from repro.sim.engine import Engine
from repro.util.config import MachineConfig
from repro.util.errors import SimulationError


@dataclass
class Message:
    """One protocol message in flight."""

    kind: str
    src: int
    dst: int
    block: int | None = None
    payload_bytes: int = 0
    #: free-form protocol fields (requester id, block lists, phase ids ...)
    info: dict[str, Any] = field(default_factory=dict)
    bulk: bool = False
    #: per-network id, assigned on first (validated) send; -1 before that
    msg_id: int = -1
    send_time: float = 0.0
    #: reliable-transport channel sequence number (None outside fault runs)
    seq: int | None = None
    #: retransmission count (0 for the first transmission attempt)
    resends: int = 0
    #: sender/receiver incarnation numbers stamped at (re)transmission time;
    #: the crash-recovery delivery fence drops messages whose stamps no
    #: longer match (pre-crash traffic must not reach a restarted node)
    src_inc: int = 0
    dst_inc: int = 0

    def __repr__(self) -> str:  # compact for trace dumps
        blk = f" blk={self.block}" if self.block is not None else ""
        sq = f" seq={self.seq}" if self.seq is not None else ""
        return f"<{self.kind} {self.src}->{self.dst}{blk}{sq} {self.payload_bytes}B>"


class Network:
    """Delivers messages with configurable latency and bandwidth costs.

    Message ids are allocated per :class:`Network` instance (not from a
    process-global counter), so two machines built in one process produce
    identical traces — the same bug class as the directive-id counter fixed
    in the C** placement pass.
    """

    def __init__(self, engine: Engine, config: MachineConfig):
        self.engine = engine
        self.config = config
        self._deliver: Callable[[Message, float], None] | None = None
        # plain int rather than itertools.count so checkpoints can capture it
        self._next_msg_id = 0
        self.messages_delivered = 0
        self.bytes_delivered = 0
        #: optional fault injector (repro.faults.inject.FaultInjector)
        self.injector = None
        #: optional node -> incarnation map (crash-recovery controller)
        self.incarnation_of: Callable[[int], int] | None = None
        self.messages_dropped = 0
        self.messages_duplicated = 0
        self.messages_fenced = 0
        #: observability sink; Machine.attach_tracer points this at its tracer
        self.obs = NULL_TRACER

    def attach(self, deliver: Callable[[Message, float], None]) -> None:
        """Set the machine-level dispatcher invoked on each delivery."""
        self._deliver = deliver

    def flight_time(self, msg: Message) -> float:
        base = self.config.msg_latency + self.config.per_byte_cost * msg.payload_bytes
        if msg.bulk:
            base += self.config.bulk_msg_overhead
        return base

    def send(self, msg: Message, at: float) -> float:
        """Inject ``msg`` at absolute time ``at``; returns arrival time.

        ``at`` may be in the engine's future (replay processors run ahead of
        the event clock between interactions), but never in its past.

        With a fault injector attached the message may be dropped (no
        delivery is scheduled), duplicated (several deliveries), or delayed;
        the returned time is then the *nominal* fault-free arrival.
        """
        if self._deliver is None:
            raise SimulationError("network not attached to a machine")
        if msg.src == msg.dst:
            raise SimulationError(f"self-send of {msg}",
                                  node=msg.src, message_repr=repr(msg))
        n = self.config.n_nodes
        if not (0 <= msg.src < n and 0 <= msg.dst < n):
            raise SimulationError(f"bad endpoints in {msg}",
                                  message_repr=repr(msg))
        msg.msg_id = self._next_msg_id
        self._next_msg_id += 1
        msg.send_time = at
        if self.incarnation_of is not None:
            # Stamp at every physical (re)transmission: a retry after the
            # peer restarted carries the new incarnation and passes the fence.
            msg.src_inc = self.incarnation_of(msg.src)
            msg.dst_inc = self.incarnation_of(msg.dst)
        nominal = at + self.flight_time(msg)
        obs = self.obs
        if obs.enabled:
            obs.emit(EventKind.MSG_SEND, at, node=msg.src, msg_id=msg.msg_id,
                     msg_kind=msg.kind, dst=msg.dst, block=msg.block,
                     bytes=msg.payload_bytes)

        if self.injector is not None:
            deliveries = self.injector.message_deliveries(msg)
            if not deliveries:
                self.messages_dropped += 1
                if obs.enabled:
                    obs.emit(EventKind.MSG_DROP, at, node=msg.src,
                             msg_id=msg.msg_id, msg_kind=msg.kind, dst=msg.dst)
                return nominal
            if len(deliveries) > 1:
                self.messages_duplicated += len(deliveries) - 1
                if obs.enabled:
                    obs.emit(EventKind.MSG_DUP, at, node=msg.src,
                             msg_id=msg.msg_id, msg_kind=msg.kind,
                             copies=len(deliveries))
            for extra in deliveries:
                self._schedule_delivery(msg, nominal + extra)
            return nominal

        self._schedule_delivery(msg, nominal)
        return nominal

    def _schedule_delivery(self, msg: Message, arrival: float) -> None:
        self.messages_delivered += 1
        self.bytes_delivered += msg.payload_bytes

        def _arrive() -> None:
            obs = self.obs
            if obs.enabled:
                obs.emit(EventKind.MSG_RECV, arrival, node=msg.dst,
                         msg_id=msg.msg_id, msg_kind=msg.kind, src=msg.src)
            self._deliver(msg, arrival)

        self.engine.schedule(arrival, _arrive)
