"""The interconnection network model.

A message costs ``msg_latency + per_byte_cost * payload`` cycles of flight
time; coalesced bulk transfers add ``bulk_msg_overhead`` once but amortize it
over many blocks (paper §3.4: "the predictive protocol coalesces neighboring
blocks and transfers them using bulk messages to amortize message startup
costs").  Delivery invokes the destination node's protocol dispatcher through
the discrete-event engine; per-node handler occupancy is modelled by
:class:`repro.tempest.node.Node`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.sim.engine import Engine
from repro.util.config import MachineConfig
from repro.util.errors import SimulationError

_msg_ids = itertools.count()


@dataclass
class Message:
    """One protocol message in flight."""

    kind: str
    src: int
    dst: int
    block: int | None = None
    payload_bytes: int = 0
    #: free-form protocol fields (requester id, block lists, phase ids ...)
    info: dict[str, Any] = field(default_factory=dict)
    bulk: bool = False
    msg_id: int = field(default_factory=lambda: next(_msg_ids))
    send_time: float = 0.0

    def __repr__(self) -> str:  # compact for trace dumps
        blk = f" blk={self.block}" if self.block is not None else ""
        return f"<{self.kind} {self.src}->{self.dst}{blk} {self.payload_bytes}B>"


class Network:
    """Delivers messages with configurable latency and bandwidth costs."""

    def __init__(self, engine: Engine, config: MachineConfig):
        self.engine = engine
        self.config = config
        self._deliver: Callable[[Message, float], None] | None = None
        self.messages_delivered = 0
        self.bytes_delivered = 0

    def attach(self, deliver: Callable[[Message, float], None]) -> None:
        """Set the machine-level dispatcher invoked on each delivery."""
        self._deliver = deliver

    def flight_time(self, msg: Message) -> float:
        base = self.config.msg_latency + self.config.per_byte_cost * msg.payload_bytes
        if msg.bulk:
            base += self.config.bulk_msg_overhead
        return base

    def send(self, msg: Message, at: float) -> float:
        """Inject ``msg`` at absolute time ``at``; returns arrival time.

        ``at`` may be in the engine's future (replay processors run ahead of
        the event clock between interactions), but never in its past.
        """
        if self._deliver is None:
            raise SimulationError("network not attached to a machine")
        if msg.src == msg.dst:
            raise SimulationError(f"self-send of {msg}")
        n = self.config.n_nodes
        if not (0 <= msg.src < n and 0 <= msg.dst < n):
            raise SimulationError(f"bad endpoints in {msg}")
        msg.send_time = at
        arrival = at + self.flight_time(msg)
        self.messages_delivered += 1
        self.bytes_delivered += msg.payload_bytes

        def _arrive() -> None:
            self._deliver(msg, arrival)

        self.engine.schedule(arrival, _arrive)
        return arrival
