"""Statistics over recorded phase traces.

Useful for understanding an application's communication pattern before ever
touching a protocol: which blocks are shared, by how many nodes, how much of
a phase is compute versus access ops.  The CLI's ``run --trace-stats`` and
several tests use it.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.tempest.machine import PhaseTrace
from repro.util.tables import format_table


@dataclass
class TraceStats:
    """Aggregate statistics of one (or a merged sequence of) phase traces."""

    phases: int = 0
    reads: int = 0
    writes: int = 0
    compute_cycles: float = 0.0
    #: block -> set of nodes that touched it
    block_nodes: dict[int, set[int]] = field(default_factory=dict)
    #: block -> set of nodes that wrote it
    block_writers: dict[int, set[int]] = field(default_factory=dict)

    @classmethod
    def of(cls, traces: PhaseTrace | list[PhaseTrace]) -> "TraceStats":
        if isinstance(traces, PhaseTrace):
            traces = [traces]
        stats = cls()
        for trace in traces:
            stats.phases += 1
            for node, ops in enumerate(trace.ops):
                for op in ops:
                    if op[0] == "c":
                        stats.compute_cycles += op[1]
                        continue
                    block = op[1]
                    stats.block_nodes.setdefault(block, set()).add(node)
                    if op[0] == "r":
                        stats.reads += 1
                    else:
                        stats.writes += 1
                        stats.block_writers.setdefault(block, set()).add(node)
        return stats

    # -- derived ---------------------------------------------------------------

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def unique_blocks(self) -> int:
        return len(self.block_nodes)

    def shared_blocks(self) -> list[int]:
        """Blocks touched by more than one node."""
        return sorted(b for b, nodes in self.block_nodes.items() if len(nodes) > 1)

    def multi_writer_blocks(self) -> list[int]:
        """Blocks written by more than one node (false-sharing suspects)."""
        return sorted(b for b, ws in self.block_writers.items() if len(ws) > 1)

    def sharing_histogram(self) -> dict[int, int]:
        """sharers-count -> number of blocks."""
        hist = Counter(len(nodes) for nodes in self.block_nodes.values())
        return dict(sorted(hist.items()))

    def report(self) -> str:
        rows = [
            ["phases", float(self.phases)],
            ["accesses (r/w)", f"{self.reads}/{self.writes}"],
            ["compute cycles", self.compute_cycles],
            ["unique blocks", float(self.unique_blocks)],
            ["shared blocks", float(len(self.shared_blocks()))],
            ["multi-writer blocks", float(len(self.multi_writer_blocks()))],
        ]
        out = format_table(["metric", "value"], rows, title="trace statistics",
                           floatfmt=".6g")
        hist = self.sharing_histogram()
        if hist:
            out += "\nsharing degree histogram (nodes -> blocks): " + ", ".join(
                f"{k}->{v}" for k, v in hist.items()
            )
        return out
