"""Fine-grain access-control tags.

Each node tags every cache block it may touch as **Invalid**, **ReadOnly**,
or **ReadWrite** (paper §3.1).  An access that the tag permits proceeds "at
full hardware speed"; one it does not permit faults into the protocol.  The
tag table is the *only* authority the replay processor consults for
hit/miss decisions, so protocols communicate exclusively by mutating tags.
"""

from __future__ import annotations

import enum

from repro.util.errors import SimulationError


class AccessTag(enum.IntEnum):
    INVALID = 0
    READ_ONLY = 1
    READ_WRITE = 2

    def permits(self, kind: str) -> bool:
        if kind == "r":
            return self is not AccessTag.INVALID
        if kind == "w":
            return self is AccessTag.READ_WRITE
        raise SimulationError(f"unknown access kind {kind!r}")


class TagTable:
    """Per-node block -> tag map.  Missing entries are INVALID.

    ``home_default`` lists blocks this node is home for; they start
    READ_WRITE (the home initially holds its data exclusively).
    """

    __slots__ = ("node", "_tags")

    def __init__(self, node: int):
        self.node = node
        self._tags: dict[int, AccessTag] = {}

    def get(self, block: int) -> AccessTag:
        return self._tags.get(block, AccessTag.INVALID)

    def set(self, block: int, tag: AccessTag) -> None:
        if tag is AccessTag.INVALID:
            self._tags.pop(block, None)
        else:
            self._tags[block] = tag

    def permits(self, block: int, kind: str) -> bool:
        return self.get(block).permits(kind)

    def downgrade(self, block: int) -> None:
        """READ_WRITE -> READ_ONLY (keep data, lose write permission)."""
        if self.get(block) is AccessTag.READ_WRITE:
            self._tags[block] = AccessTag.READ_ONLY

    def invalidate(self, block: int) -> None:
        self._tags.pop(block, None)

    def blocks_with_tag(self, tag: AccessTag) -> list[int]:
        """Blocks holding ``tag``, in ascending block order.

        Sorted (not insertion) order so consumers that *walk* the result —
        crash recovery rebuilding home state, the invariant monitor — are
        deterministic and representation-independent (the packed fast-path
        table is naturally block-ordered).
        """
        return sorted(b for b, t in self._tags.items() if t is tag)

    def items(self):
        """Yield ``(block, tag)`` for non-INVALID blocks, ascending.

        The public form of the underlying map: checkpointing and the fast
        path's table swap use it instead of reaching into ``_tags``.
        """
        return iter(sorted(self._tags.items()))

    def reserve(self, n_blocks: int) -> None:
        """Capacity hint; the dict-backed table has nothing to presize."""

    def __len__(self) -> int:
        return len(self._tags)

    def clear(self) -> None:
        self._tags.clear()
