"""The simulated global address space.

Allocations ("regions") are page-aligned so a cache block never spans two
regions.  Every block has a **home node**; Stache distributes shared data at
page granularity (paper §4.1), so home assignment is a per-page function
attached to each region.  The C** runtime aligns homes with the computation
distribution (each element's home is the node that owns it), which is what
makes "own-element" accesses local.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.util.config import MachineConfig
from repro.util.errors import ConfigError, SimulationError

#: Maps a page index (within a region) to its home node.
HomePolicy = Callable[[int], int]


def round_robin_pages(n_nodes: int) -> HomePolicy:
    """The default Stache policy: pages dealt round-robin across nodes."""
    return lambda page: page % n_nodes


def block_partition(n_pages: int, n_nodes: int) -> HomePolicy:
    """Contiguous page ranges per node (block distribution of pages)."""
    per = max(1, -(-n_pages // n_nodes))  # ceil
    return lambda page: min(page // per, n_nodes - 1)


@dataclass(frozen=True)
class Region:
    """One allocation in the global address space."""

    name: str
    base: int
    size: int
    home_policy: HomePolicy
    page_size: int

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end

    def home_of(self, addr: int) -> int:
        page = (addr - self.base) // self.page_size
        return self.home_policy(page)


class AddressSpace:
    """Allocator plus addr -> block -> home arithmetic."""

    def __init__(self, config: MachineConfig):
        self.config = config
        self._next = config.page_size  # address 0 reserved (null)
        self._regions: list[Region] = []
        self._by_name: dict[str, Region] = {}
        # Cache of block -> home; regions are immutable once created.
        self._home_cache: dict[int, int] = {}

    # -- allocation ------------------------------------------------------------

    def allocate(
        self,
        name: str,
        nbytes: int,
        home_policy: HomePolicy | None = None,
    ) -> Region:
        """Allocate a page-aligned region of at least ``nbytes`` bytes."""
        if nbytes <= 0:
            raise ConfigError(f"allocation size must be positive, got {nbytes}")
        if name in self._by_name:
            raise ConfigError(f"region named {name!r} already allocated")
        ps = self.config.page_size
        size = -(-nbytes // ps) * ps  # round up to page
        if home_policy is None:
            home_policy = round_robin_pages(self.config.n_nodes)
        region = Region(name, self._next, size, home_policy, ps)
        self._next += size
        self._regions.append(region)
        self._by_name[name] = region
        return region

    def region(self, name: str) -> Region:
        return self._by_name[name]

    @property
    def regions(self) -> Sequence[Region]:
        return tuple(self._regions)

    # -- address arithmetic -----------------------------------------------------

    def block_of(self, addr: int) -> int:
        """The global block index containing byte ``addr``."""
        return addr // self.config.block_size

    def block_addr(self, block: int) -> int:
        return block * self.config.block_size

    def blocks_of_range(self, addr: int, nbytes: int) -> range:
        """All block indices touched by ``[addr, addr+nbytes)``."""
        if nbytes <= 0:
            raise SimulationError(f"empty access at {addr}")
        first = addr // self.config.block_size
        last = (addr + nbytes - 1) // self.config.block_size
        return range(first, last + 1)

    def find_region(self, addr: int) -> Region:
        for r in self._regions:
            if r.contains(addr):
                return r
        raise SimulationError(f"address {addr:#x} not in any region")

    def home_of_block(self, block: int) -> int:
        """Home node of a block (cached; regions are append-only)."""
        home = self._home_cache.get(block)
        if home is None:
            addr = self.block_addr(block)
            home = self.find_region(addr).home_of(addr)
            n = self.config.n_nodes
            if not (0 <= home < n):
                raise ConfigError(f"home policy returned node {home} (n_nodes={n})")
            self._home_cache[block] = home
        return home
