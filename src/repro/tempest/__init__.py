"""Tempest-style fine-grain distributed shared memory substrate.

This package models the mechanisms Blizzard provides on the CM-5 (paper §3.1):

* a global address space carved into **regions** (allocations) and fixed-size
  **cache blocks** (32-1024 bytes),
* per-node, per-block **access-control tags** (Invalid / ReadOnly /
  ReadWrite); an access that the local tag does not permit *faults* and is
  vectored to a user-level protocol handler,
* a **home node** per block that holds directory state,
* a message-passing **network** with latency/bandwidth costs and per-node
  protocol-handler occupancy.

Policies (what to do on a fault) live in :mod:`repro.protocols`; this package
is mechanism only, mirroring the Tempest interface split.
"""

from repro.tempest.addrspace import AddressSpace, Region, HomePolicy
from repro.tempest.tags import AccessTag, TagTable
from repro.tempest.network import Network, Message
from repro.tempest.node import Node
from repro.tempest.machine import Machine, PhaseTrace
from repro.tempest.tracestats import TraceStats
from repro.tempest.tracefile import (
    save_session,
    load_session,
    replay_session,
    record_regions,
)

__all__ = [
    "TraceStats",
    "save_session",
    "load_session",
    "replay_session",
    "record_regions",
    "AddressSpace",
    "Region",
    "HomePolicy",
    "AccessTag",
    "TagTable",
    "Network",
    "Message",
    "Node",
    "Machine",
    "PhaseTrace",
]
