"""repro — a reproduction of "Compiler-directed Shared-Memory Communication
for Iterative Parallel Applications" (Viswanathan & Larus, SC 1996).

The package provides, from the bottom up:

* :mod:`repro.sim` — a deterministic discrete-event simulator;
* :mod:`repro.tempest` — a Tempest/Blizzard-style fine-grain DSM substrate
  (access-control tags, home nodes, a message-passing network model);
* :mod:`repro.protocols` — coherence protocols written in a Teapot-style
  state-machine framework: Stache (write-invalidate) and a write-update
  baseline;
* :mod:`repro.core` — the paper's contribution: incremental communication
  schedules and the predictive protocol that pre-sends data;
* :mod:`repro.cstar` — a mini C** compiler: parsing, access-pattern
  analysis, the reaching-unstructured-accesses dataflow, directive
  placement, and a runtime that executes data-parallel programs on the
  simulated machine;
* :mod:`repro.apps` — the paper's three applications (Adaptive, Barnes,
  Water) plus the SPMD-Barnes and Splash-Water baselines;
* :mod:`repro.bench` — the harness that regenerates every table and figure.
"""

from repro.util.config import MachineConfig, CM5_DEFAULTS
from repro.util.errors import (
    ReproError,
    ConfigError,
    ProtocolError,
    SimulationError,
    CompileError,
)

__version__ = "1.0.0"

__all__ = [
    "MachineConfig",
    "CM5_DEFAULTS",
    "ReproError",
    "ConfigError",
    "ProtocolError",
    "SimulationError",
    "CompileError",
    "__version__",
]
