"""The fault injector: turns a :class:`~repro.faults.plan.FaultPlan` into
per-event decisions.

Decision points are consulted in deterministic engine order (message sends,
handler services, pre-send group starts), so one seeded RNG makes the whole
stochastic injection history a pure function of (plan, workload, protocol).
Every fault actually injected is recorded as a content-keyed
:class:`~repro.faults.plan.FaultEvent`; replaying those records through a
*scripted* plan reproduces the run exactly, which is the basis for shrinking
failures to minimal reproducers (:func:`repro.faults.campaign.shrink_events`).
"""

from __future__ import annotations

import random
from collections import defaultdict

from repro.faults.plan import FaultEvent, FaultPlan
from repro.faults.transport import TACK


class FaultInjector:
    """Stateful decision source attached to one machine for one run."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.scripted = plan.scripted
        self.rng = random.Random(plan.seed)
        #: every fault injected so far, in injection order
        self.injected: list[FaultEvent] = []
        # content-key bookkeeping (see FaultEvent docstring)
        self._msg_occurrence: defaultdict[tuple, int] = defaultdict(int)
        self._service_index: defaultdict[int, int] = defaultdict(int)
        self._group_index: defaultdict[int, int] = defaultdict(int)
        #: last message fault per channel seq, for TransportTimeout context
        self._last_msg_fault: dict[tuple, FaultEvent] = {}
        self._script: dict[tuple, FaultEvent] = {ev.key: ev for ev in plan.events}
        self._crash_count = 0

    # -- bookkeeping -----------------------------------------------------------

    def _record(self, event: FaultEvent) -> FaultEvent:
        self.injected.append(event)
        if event.key[0] == "msg":
            _, _kind, src, dst, seq, _resends, _nth = event.key
            self._last_msg_fault[(src, dst, seq)] = event
        return event

    def has_scripted(self, action: str) -> bool:
        return any(ev.action == action for ev in self.plan.events)

    def last_fault_for(self, src: int, dst: int, seq: int | None):
        """The most recent fault that hit channel (src, dst) seq ``seq``."""
        return self._last_msg_fault.get((src, dst, seq))

    # -- message sends ---------------------------------------------------------

    def message_deliveries(self, msg) -> list[float]:
        """Extra-delay per physical copy to deliver; ``[]`` means dropped.

        ``[0.0]`` is the unperturbed single delivery; a duplicate adds a
        second, slightly-late copy.  Called by :meth:`Network.send` once per
        physical transmission (retransmissions consult it again, so a lossy
        link stays lossy for retries).
        """
        base = ("msg", msg.kind, msg.src, msg.dst, msg.seq, msg.resends)
        nth = self._msg_occurrence[base]
        self._msg_occurrence[base] += 1
        key = base + (nth,)
        plan = self.plan
        if msg.kind == TACK and not plan.ack_faults:
            return [0.0]
        if self.scripted:
            ev = self._script.get(key)
            if ev is None or ev.action not in ("drop", "dup", "delay"):
                return [0.0]
            self._record(ev)
            if ev.action == "drop":
                return []
            if ev.action == "dup":
                return [0.0, ev.amount]
            return [ev.amount]
        # stochastic: one roll decides at most one fault per transmission
        roll = self.rng.random()
        if roll < plan.drop_rate:
            self._record(FaultEvent("drop", key))
            return []
        roll -= plan.drop_rate
        if roll < plan.dup_rate:
            self._record(FaultEvent("dup", key, amount=plan.delay_cycles))
            return [0.0, plan.delay_cycles]
        roll -= plan.dup_rate
        if roll < plan.delay_rate:
            self._record(FaultEvent("delay", key, amount=plan.delay_cycles))
            return [plan.delay_cycles]
        return [0.0]

    # -- handler stalls --------------------------------------------------------

    def stall_hook_for(self, node: int):
        """A per-node closure for :attr:`repro.tempest.node.Node.stall_hook`."""

        def stall() -> float:
            idx = self._service_index[node]
            self._service_index[node] += 1
            key = ("stall", node, idx)
            if self.scripted:
                ev = self._script.get(key)
                if ev is not None and ev.action == "stall":
                    self._record(ev)
                    return ev.amount
                return 0.0
            if self.rng.random() < self.plan.stall_rate:
                self._record(FaultEvent("stall", key,
                                        amount=self.plan.stall_cycles))
                return self.plan.stall_cycles
            return 0.0

        return stall

    # -- node crashes ----------------------------------------------------------

    def crash_point(self, node: int, phase_index: int,
                    n_ops: int) -> tuple[int, float] | None:
        """Whether ``node`` crash-stops this phase: ``(op_index, restart_delay)``.

        Consulted once per (node, phase) at phase start, in node order — but
        only when a crash-capable plan installed the recovery controller, so
        plans without crashes keep their PR 3 RNG histories bit-identical.
        """
        plan = self.plan
        if self.scripted:
            for ev in plan.events:
                if (ev.action == "crash" and ev.key[1] == node
                        and ev.key[2] == phase_index):
                    self._record(ev)
                    return (ev.key[3], ev.amount)
            return None
        if plan.crash_rate <= 0:
            return None
        if self._crash_count >= plan.max_crashes:
            return None
        if n_ops <= 0:
            return None
        if self.rng.random() >= plan.crash_rate:
            return None
        op = self.rng.randrange(n_ops)
        self._crash_count += 1
        self._record(FaultEvent("crash", ("crash", node, phase_index, op),
                                amount=plan.restart_cycles))
        return (op, plan.restart_cycles)

    # -- predictive-schedule faults --------------------------------------------

    def schedule_fault(self, directive_id: int) -> str | None:
        """Consulted once per pre-send group start; returns an action or None.

        ``"corrupt"`` perturbs the schedule's predictions before the walk;
        ``"stale"`` freezes it (no incremental updates this instance).  Both
        only mis-*predict* — the protocol stays coherent regardless.
        """
        idx = self._group_index[directive_id]
        self._group_index[directive_id] += 1
        key = ("sched", directive_id, idx)
        if self.scripted:
            ev = self._script.get(key)
            if ev is not None and ev.action in ("corrupt", "stale"):
                self._record(ev)
                return ev.action
            return None
        plan = self.plan
        if plan.corrupt_rate == 0.0 and plan.stale_rate == 0.0:
            return None
        roll = self.rng.random()
        if roll < plan.corrupt_rate:
            self._record(FaultEvent("corrupt", key))
            return "corrupt"
        if roll < plan.corrupt_rate + plan.stale_rate:
            self._record(FaultEvent("stale", key))
            return "stale"
        return None
