"""Fault injection and resilience testing.

This package stresses the simulator's "repetitive but possibly dynamic"
regime beyond what the paper's lossless CM-5 model assumes: messages may be
dropped, duplicated, or delayed; protocol processors may stall; and
predictive schedules may go stale or be corrupted outright.  The resilience
machinery it exercises lives in the main tree — a reliable transport in
:mod:`repro.faults.transport` wired into :mod:`repro.tempest.machine`, and
graceful schedule degradation in :mod:`repro.core.predictive` — and the
campaign driver here checks, via :mod:`repro.verify`, that coherence and the
memory image survive every bundled fault plan.

Everything is pay-for-what-you-use: an inactive :class:`FaultPlan` installs
nothing, and the fault-free fast path is byte-for-byte unchanged.
"""

from repro.faults.plan import (
    BUNDLED_PLANS,
    CRASH_PLANS,
    UNRECOVERABLE_PLAN,
    FaultEvent,
    FaultPlan,
    load_plan,
    save_plan,
)
from repro.faults.inject import FaultInjector
from repro.faults.transport import TACK, ReliableTransport
from repro.faults.campaign import (
    FaultCampaignReport,
    FaultFailure,
    run_campaign,
    shrink_events,
)

__all__ = [
    "FaultPlan",
    "FaultEvent",
    "BUNDLED_PLANS",
    "CRASH_PLANS",
    "UNRECOVERABLE_PLAN",
    "load_plan",
    "save_plan",
    "FaultInjector",
    "ReliableTransport",
    "TACK",
    "FaultCampaignReport",
    "FaultFailure",
    "run_campaign",
    "shrink_events",
]
