"""Fault campaigns: verify coherence survives every fault plan, and shrink
the plans that break it.

A campaign is the robustness mirror of :func:`repro.verify.fuzz.fuzz`: it
runs workloads (generated fuzz sessions plus the bundled ``examples/traces``
sessions) under each fault plan and protocol with the invariant monitor
attached, cross-checks survivors against the trace-determined ground truth
(the *fault-free* memory image — faults may slow a run down, never change
what it computes), and expects the deliberately unrecoverable plan to fail
fast with a structured :class:`~repro.util.errors.TransportTimeout`.

A failing stochastic run is replayed through a **scripted** plan built from
its recorded injection history, then minimized by :func:`shrink_events` —
the fault-domain analogue of the tie-break schedule bisection in
:func:`repro.verify.fuzz.shrink_schedule`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.faults.plan import (
    BUNDLED_PLANS,
    CRASH_PLANS,
    UNRECOVERABLE_PLAN,
    FaultPlan,
    save_plan,
)
from repro.tempest.tracefile import load_session
from repro.util.config import MachineConfig
from repro.util.errors import TransportTimeout
from repro.verify.monitor import CoherenceViolation
from repro.verify.oracle import Observables, differential_check, run_workload
from repro.verify.workload import ALL_PROTOCOLS, Workload, generate_workload

#: default location of the bundled sessions, relative to the repo root
DEFAULT_TRACES_DIR = Path("examples/traces")


@dataclass
class FaultFailure:
    """One workload x plan x protocol combination that broke."""

    plan: str
    protocol: str
    workload: str
    violation: CoherenceViolation
    injected: int = 0
    minimized_events: list | None = None
    shrink_runs: int = 0
    #: ready-to-replay scripted plan (the minimal script when shrinking
    #: succeeded, else the full recorded history); save_plan-able
    scripted_plan: FaultPlan | None = None

    def report(self) -> str:
        lines = [
            f"[{self.plan} / {self.protocol} / {self.workload}] "
            f"{self.injected} fault(s) injected:",
            self.violation.report(),
        ]
        if self.minimized_events is not None:
            lines.append(
                f"  minimal reproducer: {len(self.minimized_events)} fault "
                f"event(s) (shrunk in {self.shrink_runs} reruns):"
            )
            for ev in self.minimized_events:
                lines.append(f"    - {ev.describe()}")
        return "\n".join(lines)


@dataclass
class FaultCampaignReport:
    """Aggregate outcome of one fault campaign."""

    plans: int = 0
    workloads: int = 0
    runs: int = 0
    failures: list[FaultFailure] = field(default_factory=list)
    #: None = not checked; True = failed fast with full context as required
    unrecoverable_ok: bool | None = None
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures and self.unrecoverable_ok is not False

    def summary(self) -> str:
        lines = [
            f"fault campaign: {self.plans} plan(s) x {self.workloads} "
            f"workload(s), {self.runs} run(s) in {self.elapsed:.1f}s"
        ]
        if self.unrecoverable_ok is not None:
            lines.append(
                "unrecoverable plan: "
                + ("failed fast with structured context (as required)"
                   if self.unrecoverable_ok
                   else "DID NOT fail as required")
            )
        if not self.failures:
            lines.append("no coherence violations under any fault plan")
        else:
            lines.append(f"{len(self.failures)} FAILURE(S):")
            for fail in self.failures:
                lines.append(fail.report())
        return "\n".join(lines)


def shrink_events(
    fails: Callable[[list], bool], events: Sequence, max_runs: int = 64
) -> tuple[list | None, int]:
    """Minimize a failing injection history (greedy delta debugging).

    ``fails(subset)`` reruns the workload under a scripted plan containing
    exactly ``subset`` and reports whether a violation reproduces.  Returns
    ``(minimal_events, reruns)`` — or ``(None, reruns)`` when even the full
    scripted history does not reproduce (a run the script cannot capture,
    e.g. genuinely policy-dependent), in which case minimization is skipped.
    """
    events = list(events)
    runs = 0

    def check(subset: list) -> bool:
        nonlocal runs
        runs += 1
        return fails(subset)

    if not events or not check(events):
        # empty history, or the scripted replay does not reproduce —
        # nothing trustworthy to minimize
        return None, runs
    chunk = max(1, len(events) // 2)
    while runs < max_runs:
        i = 0
        reduced = False
        while i < len(events) and runs < max_runs:
            candidate = events[:i] + events[i + chunk:]
            if len(candidate) < len(events) and check(candidate):
                events = candidate
                reduced = True
            else:
                i += chunk
        if not reduced and chunk == 1:
            break
        if not reduced:
            chunk = max(1, chunk // 2)
    return events, runs


def _trace_workloads(traces_dir: Path) -> list[tuple[str, Workload]]:
    out = []
    for path in sorted(traces_dir.glob("*.trace")):
        events, regions = load_session(path)
        n_nodes = next(len(ev[1].ops) for ev in events if ev[0] == "phase")
        cfg = MachineConfig(n_nodes=n_nodes, block_size=32, page_size=128)
        out.append((path.name, Workload(
            seed=-1, config=cfg, events=events, regions=regions,
            protocols=tuple(ALL_PROTOCOLS),
        )))
    return out


def _dump_script(directory: str | Path, fail: FaultFailure) -> Path:
    """Archive one failure's scripted reproducer as JSON."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stem = f"{fail.plan}_{fail.protocol}_{fail.workload}".replace(".", "-")
    path = directory / f"{stem}.json"
    save_plan(fail.scripted_plan, path)
    return path


def _check_unrecoverable(workload: Workload, protocol: str,
                         fast: bool = False) -> bool:
    """The hopeless plan must fail fast with full structured context."""
    try:
        run_workload(workload, protocol, fault_plan=UNRECOVERABLE_PLAN,
                     fast=fast)
    except CoherenceViolation as violation:
        cause = violation.__cause__
        return (
            violation.invariant == "transport-timeout"
            and isinstance(cause, TransportTimeout)
            and cause.node is not None
            and cause.block is not None
            and cause.event is not None
        )
    return False


def run_campaign(
    plans: dict[str, FaultPlan] | None = None,
    seeds: int = 2,
    protocols: Sequence[str] | None = None,
    variants: int = 1,
    traces_dir: str | Path | None = DEFAULT_TRACES_DIR,
    shrink: bool = True,
    check_unrecoverable: bool = True,
    progress: Callable[[str], None] | None = None,
    dump_scripts: str | Path | None = None,
    fast: bool = False,
) -> FaultCampaignReport:
    """Run every (plan x workload x protocol) combination under the monitor.

    ``variants`` reseeds each plan that many times per workload, multiplying
    the distinct injection histories explored.  Survivors of each
    (plan, workload) pair are cross-checked against the fault-free ground
    truth via the differential oracle.  ``dump_scripts`` names a directory
    into which each failure's scripted reproducer (shrunk when possible) is
    written as JSON for offline replay (:func:`repro.faults.plan.load_plan`).
    ``fast`` runs every FIFO-ordered replay (including scripted shrinking
    reruns) on the compiled fast path; results are bit-identical.
    """
    plans = plans if plans is not None else dict(BUNDLED_PLANS)
    report = FaultCampaignReport(plans=len(plans))
    t0 = time.perf_counter()

    workloads: list[tuple[str, Workload]] = [
        (f"seed{s}", generate_workload(s)) for s in range(seeds)
    ]
    if traces_dir is not None:
        traces_dir = Path(traces_dir)
        if traces_dir.is_dir():
            workloads.extend(_trace_workloads(traces_dir))
    report.workloads = len(workloads)

    for w_index, (w_name, workload) in enumerate(workloads):
        run_protocols = [
            p for p in workload.protocols
            if protocols is None or p in protocols
        ]
        for plan_name, base_plan in plans.items():
            for variant in range(variants):
                observed: dict[str, Observables] = {}
                for p_index, protocol in enumerate(run_protocols):
                    plan = base_plan.with_(
                        seed=base_plan.seed + 7919 * w_index
                        + 101 * variant + p_index
                    )
                    report.runs += 1
                    try:
                        observed[protocol] = run_workload(
                            workload, protocol, fault_plan=plan, fast=fast
                        )
                    except CoherenceViolation as violation:
                        fail = FaultFailure(
                            plan=plan_name, protocol=protocol, workload=w_name,
                            violation=violation,
                            injected=len(getattr(violation, "fault_events", [])),
                        )
                        if shrink and getattr(violation, "fault_events", None):
                            scripted = plan.as_scripted(violation.fault_events)
                            fail.scripted_plan = scripted

                            def fails(subset, _w=workload, _p=protocol,
                                      _s=scripted) -> bool:
                                try:
                                    run_workload(
                                        _w, _p,
                                        fault_plan=_s.with_(events=tuple(subset)),
                                        fast=fast,
                                    )
                                except CoherenceViolation:
                                    return True
                                return False

                            fail.minimized_events, fail.shrink_runs = (
                                shrink_events(fails, violation.fault_events)
                            )
                            if fail.minimized_events is not None:
                                fail.scripted_plan = scripted.with_(
                                    events=tuple(fail.minimized_events)
                                )
                        report.failures.append(fail)
                        if dump_scripts is not None and fail.scripted_plan:
                            _dump_script(dump_scripts, fail)
                        if progress:
                            progress(
                                f"{plan_name}/{protocol}/{w_name}: FAILURE "
                                f"({violation.invariant})"
                            )
                if observed:
                    try:
                        differential_check(workload, observed)
                    except CoherenceViolation as violation:
                        report.failures.append(FaultFailure(
                            plan=plan_name, protocol=violation.protocol,
                            workload=w_name, violation=violation,
                        ))
                        if progress:
                            progress(f"{plan_name}/{w_name}: DIFFERENTIAL mismatch")
        if progress:
            progress(f"... workload {w_index + 1}/{len(workloads)} done")

    if check_unrecoverable and workloads:
        report.unrecoverable_ok = _check_unrecoverable(
            workloads[0][1], "stache", fast=fast
        )
        report.runs += 1

    report.elapsed = time.perf_counter() - t0
    return report
