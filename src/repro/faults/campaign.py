"""Fault campaigns: verify coherence survives every fault plan, and shrink
the plans that break it.

A campaign is the robustness mirror of :func:`repro.verify.fuzz.fuzz`: it
runs workloads (generated fuzz sessions plus the bundled ``examples/traces``
sessions) under each fault plan and protocol with the invariant monitor
attached, cross-checks survivors against the trace-determined ground truth
(the *fault-free* memory image — faults may slow a run down, never change
what it computes), and expects the deliberately unrecoverable plan to fail
fast with a structured :class:`~repro.util.errors.TransportTimeout`.

A failing stochastic run is replayed through a **scripted** plan built from
its recorded injection history, then minimized by :func:`shrink_events` —
the fault-domain analogue of the tie-break schedule bisection in
:func:`repro.verify.fuzz.shrink_schedule`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.farm.jobs import derive_seed
from repro.farm.preempt import deserialize_observables, serialize_observables
from repro.faults.plan import (
    BUNDLED_PLANS,
    CRASH_PLANS,
    UNRECOVERABLE_PLAN,
    FaultEvent,
    FaultPlan,
    save_plan,
)
from repro.obs.metrics import MetricsRegistry, registry_from_run
from repro.tempest.tracefile import load_session
from repro.util.config import MachineConfig
from repro.util.errors import TransportTimeout
from repro.verify.monitor import CoherenceViolation
from repro.verify.oracle import Observables, differential_check, run_workload
from repro.verify.workload import ALL_PROTOCOLS, Workload, generate_workload

#: default location of the bundled sessions, relative to the repo root
DEFAULT_TRACES_DIR = Path("examples/traces")

FAULTS_SCHEMA = "repro.faultcampaign/v1"


@dataclass
class FaultFailure:
    """One workload x plan x protocol combination that broke."""

    plan: str
    protocol: str
    workload: str
    violation: CoherenceViolation
    injected: int = 0
    minimized_events: list | None = None
    shrink_runs: int = 0
    #: ready-to-replay scripted plan (the minimal script when shrinking
    #: succeeded, else the full recorded history); save_plan-able
    scripted_plan: FaultPlan | None = None

    def report(self) -> str:
        lines = [
            f"[{self.plan} / {self.protocol} / {self.workload}] "
            f"{self.injected} fault(s) injected:",
            self.violation.report(),
        ]
        if self.minimized_events is not None:
            lines.append(
                f"  minimal reproducer: {len(self.minimized_events)} fault "
                f"event(s) (shrunk in {self.shrink_runs} reruns):"
            )
            for ev in self.minimized_events:
                lines.append(f"    - {ev.describe()}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "plan": self.plan,
            "protocol": self.protocol,
            "workload": self.workload,
            "violation": self.violation.to_dict(),
            "injected": self.injected,
            "minimized_events": (
                [ev.to_dict() for ev in self.minimized_events]
                if self.minimized_events is not None else None
            ),
            "shrink_runs": self.shrink_runs,
            "scripted_plan": (self.scripted_plan.to_dict()
                              if self.scripted_plan is not None else None),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultFailure":
        return cls(
            plan=data["plan"], protocol=data["protocol"],
            workload=data["workload"],
            violation=CoherenceViolation.from_dict(data["violation"]),
            injected=data["injected"],
            minimized_events=(
                [FaultEvent.from_dict(ev) for ev in data["minimized_events"]]
                if data["minimized_events"] is not None else None
            ),
            shrink_runs=data["shrink_runs"],
            scripted_plan=(FaultPlan.from_dict(data["scripted_plan"])
                           if data["scripted_plan"] is not None else None),
        )


@dataclass
class FaultCampaignReport:
    """Aggregate outcome of one fault campaign."""

    plans: int = 0
    workloads: int = 0
    runs: int = 0
    failures: list[FaultFailure] = field(default_factory=list)
    #: None = not checked; True = failed fast with full context as required
    unrecoverable_ok: bool | None = None
    #: per-run simulator metrics labelled by (plan, protocol), merged
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures and self.unrecoverable_ok is not False

    def to_dict(self) -> dict:
        """Canonical JSON-safe report, excluding wall-clock ``elapsed``.

        The determinism surface for the campaign farm: a ``--jobs N`` run's
        ``to_dict`` must equal the sequential run's byte for byte.
        """
        return {
            "schema": FAULTS_SCHEMA,
            "plans": self.plans,
            "workloads": self.workloads,
            "runs": self.runs,
            "ok": self.ok,
            "unrecoverable_ok": self.unrecoverable_ok,
            "failures": [fail.to_dict() for fail in self.failures],
            "metrics": self.metrics.to_dict(),
        }

    def summary(self) -> str:
        lines = [
            f"fault campaign: {self.plans} plan(s) x {self.workloads} "
            f"workload(s), {self.runs} run(s) in {self.elapsed:.1f}s"
        ]
        if self.unrecoverable_ok is not None:
            lines.append(
                "unrecoverable plan: "
                + ("failed fast with structured context (as required)"
                   if self.unrecoverable_ok
                   else "DID NOT fail as required")
            )
        if not self.failures:
            lines.append("no coherence violations under any fault plan")
        else:
            lines.append(f"{len(self.failures)} FAILURE(S):")
            for fail in self.failures:
                lines.append(fail.report())
        return "\n".join(lines)


def shrink_events(
    fails: Callable[[list], bool], events: Sequence, max_runs: int = 64
) -> tuple[list | None, int]:
    """Minimize a failing injection history (greedy delta debugging).

    ``fails(subset)`` reruns the workload under a scripted plan containing
    exactly ``subset`` and reports whether a violation reproduces.  Returns
    ``(minimal_events, reruns)`` — or ``(None, reruns)`` when even the full
    scripted history does not reproduce (a run the script cannot capture,
    e.g. genuinely policy-dependent), in which case minimization is skipped.
    """
    events = list(events)
    runs = 0

    def check(subset: list) -> bool:
        nonlocal runs
        runs += 1
        return fails(subset)

    if not events or not check(events):
        # empty history, or the scripted replay does not reproduce —
        # nothing trustworthy to minimize
        return None, runs
    chunk = max(1, len(events) // 2)
    while runs < max_runs:
        i = 0
        reduced = False
        while i < len(events) and runs < max_runs:
            candidate = events[:i] + events[i + chunk:]
            if len(candidate) < len(events) and check(candidate):
                events = candidate
                reduced = True
            else:
                i += chunk
        if not reduced and chunk == 1:
            break
        if not reduced:
            chunk = max(1, chunk // 2)
    return events, runs


def _load_trace_workload(path: Path) -> Workload:
    events, regions = load_session(path)
    n_nodes = next(len(ev[1].ops) for ev in events if ev[0] == "phase")
    cfg = MachineConfig(n_nodes=n_nodes, block_size=32, page_size=128)
    return Workload(seed=-1, config=cfg, events=events, regions=regions,
                    protocols=tuple(ALL_PROTOCOLS))


def _resolve_workload(wspec: dict) -> Workload:
    """Rebuild a cell's workload from its transport-safe description."""
    if wspec["type"] == "seed":
        return generate_workload(wspec["seed"])
    return _load_trace_workload(Path(wspec["path"]))


def _dump_script(directory: str | Path, fail: FaultFailure) -> Path:
    """Archive one failure's scripted reproducer as JSON."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stem = f"{fail.plan}_{fail.protocol}_{fail.workload}".replace(".", "-")
    path = directory / f"{stem}.json"
    save_plan(fail.scripted_plan, path)
    return path


def _check_unrecoverable(workload: Workload, protocol: str,
                         fast: bool = False) -> bool:
    """The hopeless plan must fail fast with full structured context."""
    try:
        run_workload(workload, protocol, fault_plan=UNRECOVERABLE_PLAN,
                     fast=fast)
    except CoherenceViolation as violation:
        cause = violation.__cause__
        return (
            violation.invariant == "transport-timeout"
            and isinstance(cause, TransportTimeout)
            and cause.node is not None
            and cause.block is not None
            and cause.event is not None
        )
    return False


def _build_failure(workload: Workload, w_name: str, plan_name: str,
                   protocol: str, plan: FaultPlan,
                   violation: CoherenceViolation, shrink: bool,
                   fast: bool, warm=None) -> FaultFailure:
    """Capture one failing run: script its injection history and shrink it.

    ``warm`` must be whatever the failing run was seeded with — shrinking
    replays have to reproduce the original machine exactly, corpus
    warm-start included.
    """
    fail = FaultFailure(
        plan=plan_name, protocol=protocol, workload=w_name,
        violation=violation,
        injected=len(getattr(violation, "fault_events", [])),
    )
    if shrink and getattr(violation, "fault_events", None):
        scripted = plan.as_scripted(violation.fault_events)
        fail.scripted_plan = scripted

        def fails(subset) -> bool:
            try:
                run_workload(workload, protocol,
                             fault_plan=scripted.with_(events=tuple(subset)),
                             fast=fast, warm=warm)
            except CoherenceViolation:
                return True
            return False

        fail.minimized_events, fail.shrink_runs = shrink_events(
            fails, violation.fault_events
        )
        if fail.minimized_events is not None:
            fail.scripted_plan = scripted.with_(
                events=tuple(fail.minimized_events)
            )
    return fail


def run_fault_cell(spec: dict, control=None):
    """Run one campaign cell — (workload x plan x variant) across protocols.

    A pure function of the transport-safe ``spec``; both the sequential
    path and farm workers execute cells through here, so a farmed
    campaign's folded report is byte-identical to the sequential one.
    Returns a JSON-safe result dict (``runs``/``failures``/``metrics``).

    ``control`` (farm workers only) enables checkpoint preemption: the run
    executes through :func:`repro.farm.preempt.sliced_run`, and a
    preemption returns ``("preempted", envelope)`` where the envelope holds
    the completed per-protocol results plus the in-flight run's machine
    checkpoint; retrying the cell with ``spec["resume"] = envelope``
    finishes it with identical output.
    """
    workload = _resolve_workload(spec["workload"])
    w_name = spec["workload"]["name"]
    base_plan = FaultPlan.from_dict(spec["plan"])
    plan_name, variant = spec["plan_name"], spec["variant"]
    shrink, fast = spec["shrink"], spec["fast"]
    warm_by_protocol = spec.get("warm") or {}
    resume = spec.get("resume") or {}
    done: list[dict] = list(resume.get("done", []))
    current = resume.get("current")

    for p_index, protocol in enumerate(spec["protocols"]):
        if p_index < len(done):
            continue  # finished before a preemption/crash; result carried over
        plan = base_plan.with_(seed=derive_seed(
            base_plan.seed, w_name, plan_name, variant, protocol
        ))
        warm = warm_by_protocol.get(protocol)
        resume_env = (current if current is not None
                      and current.get("p_index") == p_index else None)
        obs = failure = None
        try:
            if control is not None:
                from repro.farm.preempt import sliced_run

                status, payload = sliced_run(
                    workload, protocol, fault_plan=plan, fast=fast,
                    should_preempt=control.should_preempt, resume=resume_env,
                    warm=warm,
                )
                if status == "preempted":
                    return "preempted", {
                        "done": done,
                        "current": {"p_index": p_index, **payload},
                    }
                obs = payload
            else:
                obs = run_workload(workload, protocol, fault_plan=plan,
                                   fast=fast, warm=warm)
        except CoherenceViolation as violation:
            failure = _build_failure(workload, w_name, plan_name, protocol,
                                     plan, violation, shrink, fast,
                                     warm=warm)
        if failure is not None:
            done.append({"failure": failure.to_dict()})
        else:
            registry = registry_from_run(obs.stats, plan=plan_name,
                                         protocol=protocol)
            done.append({"failure": None,
                         "obs": serialize_observables(obs),
                         "metrics": registry.to_dict()})
        current = None
    return _finish_cell(workload, w_name, plan_name, done)


def _finish_cell(workload: Workload, w_name: str, plan_name: str,
                 done: list[dict]) -> dict:
    """Differential-check a cell's survivors and package the cell result."""
    result: dict = {"runs": len(done), "failures": [], "metrics": None}
    registry = MetricsRegistry()
    observed: dict[str, Observables] = {}
    for run_res in done:
        if run_res["failure"] is not None:
            result["failures"].append(run_res["failure"])
        else:
            obs = deserialize_observables(run_res["obs"])
            observed[obs.protocol] = obs
            registry.update(MetricsRegistry.from_dict(run_res["metrics"]))
    if observed:
        try:
            differential_check(workload, observed)
        except CoherenceViolation as violation:
            result["failures"].append(FaultFailure(
                plan=plan_name, protocol=violation.protocol,
                workload=w_name, violation=violation,
            ).to_dict())
    result["metrics"] = registry.to_dict()
    return result


def run_fault_probe(spec: dict, control=None) -> dict:
    """The unrecoverable fail-fast probe as a farmable job."""
    workload = _resolve_workload(spec["workload"])
    return {"unrecoverable_ok": _check_unrecoverable(workload, "stache",
                                                     fast=spec["fast"])}


def _fold_cell_result(report: FaultCampaignReport, result: dict,
                      progress: Callable[[str], None] | None,
                      dump_scripts: str | Path | None) -> None:
    """Fold one cell result into the report, in canonical cell order."""
    report.runs += result["runs"]
    for fdict in result["failures"]:
        fail = FaultFailure.from_dict(fdict)
        report.failures.append(fail)
        if dump_scripts is not None and fail.scripted_plan:
            _dump_script(dump_scripts, fail)
        if progress:
            if fail.violation.invariant == "differential":
                progress(f"{fail.plan}/{fail.workload}: DIFFERENTIAL mismatch")
            else:
                progress(f"{fail.plan}/{fail.protocol}/{fail.workload}: "
                         f"FAILURE ({fail.violation.invariant})")
    report.metrics.update(MetricsRegistry.from_dict(result["metrics"]))


def _workload_warm(corpus, workload: Workload, wspec: dict,
                   run_protocols: Sequence[str]) -> dict:
    """Coordinator-side corpus lookups for one workload's warm envelope.

    Derives the same identity (``fuzz/seed<N>`` / ``trace/<name>``) as the
    verify harness, so campaigns warm from exactly what fault-free verify
    runs harvested.
    """
    from repro.corpus import supports_warm, workload_key

    warm: dict = {}
    for protocol in run_protocols:
        if not supports_warm(protocol):
            continue
        entry = corpus.lookup(
            workload_key(workload, protocol, name=wspec.get("name")),
            workload.config.n_nodes,
        )
        if entry is not None:
            warm[protocol] = entry["records"]
    return warm


def run_campaign(
    plans: dict[str, FaultPlan] | None = None,
    seeds: int = 2,
    protocols: Sequence[str] | None = None,
    variants: int = 1,
    traces_dir: str | Path | None = DEFAULT_TRACES_DIR,
    shrink: bool = True,
    check_unrecoverable: bool = True,
    progress: Callable[[str], None] | None = None,
    dump_scripts: str | Path | None = None,
    fast: bool = False,
    jobs: int = 1,
    tracer=None,
    farm_transport=None,
    farm_controller=None,
    corpus=None,
) -> FaultCampaignReport:
    """Run every (plan x workload x protocol) combination under the monitor.

    ``variants`` reseeds each plan that many times per workload, multiplying
    the distinct injection histories explored; every run's injection seed is
    a stable :func:`repro.farm.jobs.derive_seed` hash of the run's identity
    (plan seed, workload, plan name, variant, protocol), so any subset or
    sharding of the campaign injects exactly what the full sequential
    campaign would.  Survivors of each (plan, workload) pair are
    cross-checked against the fault-free ground truth via the differential
    oracle.  ``dump_scripts`` names a directory into which each failure's
    scripted reproducer (shrunk when possible) is written as JSON for
    offline replay (:func:`repro.faults.plan.load_plan`).  ``fast`` runs
    every FIFO-ordered replay (including scripted shrinking reruns) on the
    compiled fast path; results are bit-identical.  ``jobs > 1`` shards the
    campaign cells across a local worker farm
    (:func:`repro.farm.coordinator.run_farm`) with a byte-identical folded
    report; ``tracer`` then receives the farm's lifecycle events.
    ``corpus`` warm-starts every cell's schedule-learning protocols from
    the durable corpus (lookups happen coordinator-side, embedded in the
    transport-safe specs, so farmed and sequential campaigns warm
    identically).  Campaigns are **read-only** corpus consumers: what a
    run learns under injected faults is poisoned by them, so nothing is
    harvested back.
    """
    plans = plans if plans is not None else dict(BUNDLED_PLANS)
    report = FaultCampaignReport(plans=len(plans))
    t0 = time.perf_counter()

    workloads: list[tuple[str, Workload, dict]] = [
        (f"seed{s}", generate_workload(s),
         {"type": "seed", "seed": s, "name": f"seed{s}"})
        for s in range(seeds)
    ]
    if traces_dir is not None:
        traces_dir = Path(traces_dir)
        if traces_dir.is_dir():
            for path in sorted(traces_dir.glob("*.trace")):
                workloads.append((path.name, _load_trace_workload(path),
                                  {"type": "trace", "path": str(path),
                                   "name": path.name}))
    report.workloads = len(workloads)

    cells: list[dict] = []
    for w_index, (w_name, workload, wspec) in enumerate(workloads):
        run_protocols = [
            p for p in workload.protocols
            if protocols is None or p in protocols
        ]
        warm = (_workload_warm(corpus, workload, wspec, run_protocols)
                if corpus is not None else {})
        for plan_name, base_plan in plans.items():
            for variant in range(variants):
                cell = {
                    "workload": wspec, "w_index": w_index,
                    "plan_name": plan_name, "plan": base_plan.to_dict(),
                    "variant": variant, "protocols": run_protocols,
                    "shrink": shrink, "fast": fast,
                }
                if warm:
                    cell["warm"] = warm
                cells.append(cell)
    probe = ({"workload": workloads[0][2], "fast": fast}
             if check_unrecoverable and workloads else None)

    if farm_transport is not None or (
            jobs > 1 and len(cells) + (1 if probe else 0) > 1):
        from repro.farm.coordinator import run_farm
        from repro.farm.jobs import FarmJob

        farm_jobs = [
            FarmJob(index=i, kind="fault-cell", params=spec, preemptible=True)
            for i, spec in enumerate(cells)
        ]
        if probe is not None:
            farm_jobs.append(FarmJob(index=len(cells), kind="fault-probe",
                                     params=probe))
        farm = run_farm(farm_jobs, n_workers=jobs, tracer=tracer,
                        progress=progress, transport=farm_transport,
                        controller=farm_controller)
        results = [farm.results[i] for i in range(len(farm_jobs))]
    else:
        def _sequential():
            for spec in cells:
                yield run_fault_cell(spec)
            if probe is not None:
                yield run_fault_probe(probe)

        results = _sequential()

    last_w = -1
    for i, result in enumerate(results):
        if "unrecoverable_ok" in result:
            report.unrecoverable_ok = result["unrecoverable_ok"]
            report.runs += 1
            continue
        w_index = cells[i]["w_index"]
        if progress and last_w >= 0 and w_index != last_w:
            progress(f"... workload {last_w + 1}/{len(workloads)} done")
        last_w = w_index
        _fold_cell_result(report, result, progress, dump_scripts)
    if progress and last_w >= 0:
        progress(f"... workload {last_w + 1}/{len(workloads)} done")

    report.elapsed = time.perf_counter() - t0
    return report
