"""Fault plans: declarative, seeded descriptions of what to break.

A :class:`FaultPlan` is immutable and fully describes a fault environment in
one of two modes:

* **stochastic** — per-event probabilities drawn from one seeded RNG in
  deterministic engine order, so a (plan, workload, protocol) triple always
  injects the same faults;
* **scripted** — an explicit tuple of :class:`FaultEvent` records (and no
  randomness at all).  Every stochastic run records exactly such a tuple,
  which is what lets the campaign driver replay a failure and shrink it to
  a minimal reproducer.

The all-zero default plan is inert: :meth:`FaultPlan.is_active` is False and
:meth:`repro.tempest.machine.Machine.install_fault_plan` installs nothing.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass

from repro.util.errors import ConfigError

#: event actions that perturb message delivery (need the reliable transport)
MESSAGE_ACTIONS = frozenset({"drop", "dup", "delay"})
#: event actions that perturb predictive schedules
SCHEDULE_ACTIONS = frozenset({"corrupt", "stale"})
#: event actions that kill whole nodes (need the crash-recovery controller)
NODE_ACTIONS = frozenset({"crash"})
ALL_ACTIONS = MESSAGE_ACTIONS | SCHEDULE_ACTIONS | NODE_ACTIONS | {"stall"}

#: serialized fault-plan format; bump only for incompatible changes.  Loading
#: is backward-compatible within a version: fields absent from an old record
#: (e.g. the crash fields added after PR 3) take their dataclass defaults.
PLAN_FORMAT_VERSION = 1


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, keyed to where it struck.

    Keys are *content-based* so scripted replays stay meaningful when other
    events are removed during shrinking:

    * message actions — ``("msg", kind, src, dst, seq, resends, occurrence)``
    * ``stall`` — ``("stall", node, service_index)``
    * ``corrupt`` / ``stale`` — ``("sched", directive_id, instance_index)``
    * ``crash`` — ``("crash", node, phase_index, op_index)``; ``amount`` is
      the restart delay in cycles (crash-stop with mandatory restart)
    """

    action: str
    key: tuple
    amount: float = 0.0

    def __post_init__(self) -> None:
        if self.action not in ALL_ACTIONS:
            raise ConfigError(f"unknown fault action {self.action!r}")
        object.__setattr__(self, "key", tuple(self.key))

    def describe(self) -> str:
        if self.key and self.key[0] == "msg":
            _, kind, src, dst, seq, resends, nth = self.key
            where = f"{kind} {src}->{dst} seq={seq} try={resends}"
            if nth:
                where += f" #{nth}"
        elif self.key and self.key[0] == "stall":
            where = f"node {self.key[1]} service #{self.key[2]}"
        elif self.key and self.key[0] == "crash":
            return (f"crash(node {self.key[1]} phase {self.key[2]} "
                    f"op {self.key[3]}) restart +{self.amount:g}cy")
        else:
            where = f"directive {self.key[1]} instance {self.key[2]}"
        amt = f" +{self.amount:g}cy" if self.amount else ""
        return f"{self.action}({where}){amt}"

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> dict:
        return {"action": self.action, "key": list(self.key),
                "amount": self.amount}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultEvent":
        try:
            return cls(action=data["action"], key=tuple(data["key"]),
                       amount=data.get("amount", 0.0))
        except KeyError as missing:
            raise ConfigError(f"fault event record missing {missing}") from None


@dataclass(frozen=True)
class FaultPlan:
    """An immutable fault environment; see the module docstring for modes."""

    name: str = "custom"
    seed: int = 0
    # stochastic per-event probabilities (ignored when ``events`` is set)
    drop_rate: float = 0.0
    dup_rate: float = 0.0
    delay_rate: float = 0.0
    stall_rate: float = 0.0
    corrupt_rate: float = 0.0
    stale_rate: float = 0.0
    crash_rate: float = 0.0
    # fault magnitudes
    delay_cycles: float = 256.0
    stall_cycles: float = 512.0
    # crash-stop model: a crashed node is detected by survivors after
    # ``detect_cycles`` and restarts (fresh incarnation, cold caches) after
    # ``restart_cycles``; at most ``max_crashes`` stochastic crashes per run.
    restart_cycles: float = 30_000.0
    detect_cycles: float = 4_000.0
    max_crashes: int = 1
    # resilience budget
    ack_faults: bool = True          # transport acks are themselves faultable
    retry_timeout: float | None = None  # base RTO; None derives per message
    timeout_budget: float = 400_000.0   # cycles before a send is declared dead
    max_retries: int = 10
    #: scripted mode: exactly these events fire, nothing else
    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        for field in ("drop_rate", "dup_rate", "delay_rate", "stall_rate",
                      "corrupt_rate", "stale_rate", "crash_rate"):
            v = getattr(self, field)
            if not 0.0 <= v <= 1.0:
                raise ConfigError(f"{field}={v} outside [0, 1]")
        for field in ("delay_cycles", "stall_cycles", "timeout_budget"):
            if getattr(self, field) < 0:
                raise ConfigError(f"{field} must be non-negative")
        for field in ("restart_cycles", "detect_cycles"):
            if getattr(self, field) <= 0:
                raise ConfigError(f"{field} must be positive")
        if self.detect_cycles >= self.restart_cycles:
            raise ConfigError(
                f"detect_cycles={self.detect_cycles:g} must be below "
                f"restart_cycles={self.restart_cycles:g}: survivors must "
                f"detect and repair before the node rejoins"
            )
        if self.max_crashes < 0:
            raise ConfigError("max_crashes must be non-negative")
        if self.max_retries < 0:
            raise ConfigError("max_retries must be non-negative")
        if self.retry_timeout is not None and self.retry_timeout <= 0:
            raise ConfigError("retry_timeout must be positive")
        object.__setattr__(self, "events", tuple(self.events))

    # -- modes and scope -------------------------------------------------------

    @property
    def scripted(self) -> bool:
        return bool(self.events)

    def is_active(self) -> bool:
        """Whether installing this plan can perturb anything at all."""
        if self.scripted:
            return True
        return any(
            getattr(self, r) > 0.0
            for r in ("drop_rate", "dup_rate", "delay_rate", "stall_rate",
                      "corrupt_rate", "stale_rate", "crash_rate")
        )

    def affects_messages(self) -> bool:
        """Whether the reliable transport is needed under this plan."""
        if self.scripted:
            return any(ev.action in MESSAGE_ACTIONS for ev in self.events)
        return self.drop_rate > 0 or self.dup_rate > 0 or self.delay_rate > 0

    def affects_nodes(self) -> bool:
        """Whether the crash-recovery controller is needed under this plan."""
        if self.scripted:
            return any(ev.action in NODE_ACTIONS for ev in self.events)
        return self.crash_rate > 0

    # -- derivation ------------------------------------------------------------

    def with_(self, **overrides) -> "FaultPlan":
        return dataclasses.replace(self, **overrides)

    def as_scripted(self, events) -> "FaultPlan":
        """The deterministic replay of one recorded injection history."""
        return self.with_(
            name=f"{self.name}[scripted]",
            drop_rate=0.0, dup_rate=0.0, delay_rate=0.0,
            stall_rate=0.0, corrupt_rate=0.0, stale_rate=0.0,
            crash_rate=0.0,
            events=tuple(events),
        )

    def describe(self) -> str:
        if self.scripted:
            return (f"{self.name}: scripted, {len(self.events)} event(s): "
                    + ", ".join(ev.describe() for ev in self.events[:6])
                    + ("..." if len(self.events) > 6 else ""))
        parts = []
        for label, rate in [
            ("drop", self.drop_rate), ("dup", self.dup_rate),
            ("delay", self.delay_rate), ("stall", self.stall_rate),
            ("corrupt", self.corrupt_rate), ("stale", self.stale_rate),
            ("crash", self.crash_rate),
        ]:
            if rate > 0:
                parts.append(f"{label}={rate:g}")
        return f"{self.name}: seed={self.seed} " + (" ".join(parts) or "inert")

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-ready record; see :data:`PLAN_FORMAT_VERSION`."""
        record = dataclasses.asdict(self)
        record["events"] = [ev.to_dict() for ev in self.events]
        record["format"] = PLAN_FORMAT_VERSION
        return record

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Load a record; missing fields take defaults (old plans load)."""
        record = dict(data)
        version = record.pop("format", PLAN_FORMAT_VERSION)
        if version != PLAN_FORMAT_VERSION:
            raise ConfigError(
                f"fault-plan format {version} is not supported "
                f"(this build reads format {PLAN_FORMAT_VERSION})"
            )
        events = tuple(
            FaultEvent.from_dict(ev) for ev in record.pop("events", ())
        )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(record) - known
        if unknown:
            raise ConfigError(
                f"fault-plan record has unknown field(s): {sorted(unknown)}"
            )
        return cls(events=events, **record)


#: the plans every release must survive (acceptance criteria in ISSUE 3):
#: all examples/traces/ workloads complete under all three protocols with a
#: clean invariant monitor and a fault-free memory image.
BUNDLED_PLANS: dict[str, FaultPlan] = {
    "drop": FaultPlan(name="drop", drop_rate=0.05),
    "duplicate": FaultPlan(name="duplicate", dup_rate=0.10),
    "delay": FaultPlan(name="delay", delay_rate=0.20, delay_cycles=400.0),
    "stall": FaultPlan(name="stall", stall_rate=0.05, stall_cycles=600.0),
    "stale-schedule": FaultPlan(name="stale-schedule", stale_rate=0.30,
                                corrupt_rate=0.20),
    "chaos": FaultPlan(name="chaos", drop_rate=0.02, dup_rate=0.03,
                       delay_rate=0.05, delay_cycles=200.0,
                       stall_rate=0.02, stall_cycles=300.0,
                       stale_rate=0.10, corrupt_rate=0.05),
}

#: crash-stop plans (ISSUE 4): every run must either complete differentially
#: identical to the fault-free ground truth, or fail fast with a shrunk
#: minimal crash script — never hang past the watchdog bound.
CRASH_PLANS: dict[str, FaultPlan] = {
    "crash": FaultPlan(name="crash", crash_rate=0.15, max_crashes=1),
    "crash-storm": FaultPlan(name="crash-storm", crash_rate=0.30,
                             max_crashes=3, restart_cycles=20_000.0,
                             detect_cycles=3_000.0),
    "crash-lossy": FaultPlan(name="crash-lossy", crash_rate=0.15,
                             max_crashes=1, drop_rate=0.02),
}

#: deliberately hopeless: every transmission is dropped and the budget is
#: tiny, so the transport must fail *fast* with a structured TransportTimeout
#: naming the node, block, and fault event — never hang.
UNRECOVERABLE_PLAN = FaultPlan(
    name="unrecoverable", drop_rate=1.0, timeout_budget=20_000.0, max_retries=3,
)


def save_plan(plan: FaultPlan, path) -> None:
    """Write ``plan`` as JSON, e.g. to archive a shrunk crash script.

    Atomic (write-temp + fsync + rename): a reproducer archive interrupted
    mid-write must not leave a torn script that replays differently."""
    from repro.util.atomicio import atomic_write_json

    atomic_write_json(path, plan.to_dict())


def load_plan(path) -> FaultPlan:
    """Load a plan previously written by :func:`save_plan`."""
    with open(path, "r", encoding="utf-8") as fh:
        return FaultPlan.from_dict(json.load(fh))
