"""Fault plans: declarative, seeded descriptions of what to break.

A :class:`FaultPlan` is immutable and fully describes a fault environment in
one of two modes:

* **stochastic** — per-event probabilities drawn from one seeded RNG in
  deterministic engine order, so a (plan, workload, protocol) triple always
  injects the same faults;
* **scripted** — an explicit tuple of :class:`FaultEvent` records (and no
  randomness at all).  Every stochastic run records exactly such a tuple,
  which is what lets the campaign driver replay a failure and shrink it to
  a minimal reproducer.

The all-zero default plan is inert: :meth:`FaultPlan.is_active` is False and
:meth:`repro.tempest.machine.Machine.install_fault_plan` installs nothing.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.util.errors import ConfigError

#: event actions that perturb message delivery (need the reliable transport)
MESSAGE_ACTIONS = frozenset({"drop", "dup", "delay"})
#: event actions that perturb predictive schedules
SCHEDULE_ACTIONS = frozenset({"corrupt", "stale"})
ALL_ACTIONS = MESSAGE_ACTIONS | SCHEDULE_ACTIONS | {"stall"}


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, keyed to where it struck.

    Keys are *content-based* so scripted replays stay meaningful when other
    events are removed during shrinking:

    * message actions — ``("msg", kind, src, dst, seq, resends, occurrence)``
    * ``stall`` — ``("stall", node, service_index)``
    * ``corrupt`` / ``stale`` — ``("sched", directive_id, instance_index)``
    """

    action: str
    key: tuple
    amount: float = 0.0

    def __post_init__(self) -> None:
        if self.action not in ALL_ACTIONS:
            raise ConfigError(f"unknown fault action {self.action!r}")

    def describe(self) -> str:
        if self.key and self.key[0] == "msg":
            _, kind, src, dst, seq, resends, nth = self.key
            where = f"{kind} {src}->{dst} seq={seq} try={resends}"
            if nth:
                where += f" #{nth}"
        elif self.key and self.key[0] == "stall":
            where = f"node {self.key[1]} service #{self.key[2]}"
        else:
            where = f"directive {self.key[1]} instance {self.key[2]}"
        amt = f" +{self.amount:g}cy" if self.amount else ""
        return f"{self.action}({where}){amt}"


@dataclass(frozen=True)
class FaultPlan:
    """An immutable fault environment; see the module docstring for modes."""

    name: str = "custom"
    seed: int = 0
    # stochastic per-event probabilities (ignored when ``events`` is set)
    drop_rate: float = 0.0
    dup_rate: float = 0.0
    delay_rate: float = 0.0
    stall_rate: float = 0.0
    corrupt_rate: float = 0.0
    stale_rate: float = 0.0
    # fault magnitudes
    delay_cycles: float = 256.0
    stall_cycles: float = 512.0
    # resilience budget
    ack_faults: bool = True          # transport acks are themselves faultable
    retry_timeout: float | None = None  # base RTO; None derives per message
    timeout_budget: float = 400_000.0   # cycles before a send is declared dead
    max_retries: int = 10
    #: scripted mode: exactly these events fire, nothing else
    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        for field in ("drop_rate", "dup_rate", "delay_rate", "stall_rate",
                      "corrupt_rate", "stale_rate"):
            v = getattr(self, field)
            if not 0.0 <= v <= 1.0:
                raise ConfigError(f"{field}={v} outside [0, 1]")
        for field in ("delay_cycles", "stall_cycles", "timeout_budget"):
            if getattr(self, field) < 0:
                raise ConfigError(f"{field} must be non-negative")
        if self.max_retries < 0:
            raise ConfigError("max_retries must be non-negative")
        if self.retry_timeout is not None and self.retry_timeout <= 0:
            raise ConfigError("retry_timeout must be positive")
        object.__setattr__(self, "events", tuple(self.events))

    # -- modes and scope -------------------------------------------------------

    @property
    def scripted(self) -> bool:
        return bool(self.events)

    def is_active(self) -> bool:
        """Whether installing this plan can perturb anything at all."""
        if self.scripted:
            return True
        return any(
            getattr(self, r) > 0.0
            for r in ("drop_rate", "dup_rate", "delay_rate", "stall_rate",
                      "corrupt_rate", "stale_rate")
        )

    def affects_messages(self) -> bool:
        """Whether the reliable transport is needed under this plan."""
        if self.scripted:
            return any(ev.action in MESSAGE_ACTIONS for ev in self.events)
        return self.drop_rate > 0 or self.dup_rate > 0 or self.delay_rate > 0

    # -- derivation ------------------------------------------------------------

    def with_(self, **overrides) -> "FaultPlan":
        return dataclasses.replace(self, **overrides)

    def as_scripted(self, events) -> "FaultPlan":
        """The deterministic replay of one recorded injection history."""
        return self.with_(
            name=f"{self.name}[scripted]",
            drop_rate=0.0, dup_rate=0.0, delay_rate=0.0,
            stall_rate=0.0, corrupt_rate=0.0, stale_rate=0.0,
            events=tuple(events),
        )

    def describe(self) -> str:
        if self.scripted:
            return (f"{self.name}: scripted, {len(self.events)} event(s): "
                    + ", ".join(ev.describe() for ev in self.events[:6])
                    + ("..." if len(self.events) > 6 else ""))
        parts = []
        for label, rate in [
            ("drop", self.drop_rate), ("dup", self.dup_rate),
            ("delay", self.delay_rate), ("stall", self.stall_rate),
            ("corrupt", self.corrupt_rate), ("stale", self.stale_rate),
        ]:
            if rate > 0:
                parts.append(f"{label}={rate:g}")
        return f"{self.name}: seed={self.seed} " + (" ".join(parts) or "inert")


#: the plans every release must survive (acceptance criteria in ISSUE 3):
#: all examples/traces/ workloads complete under all three protocols with a
#: clean invariant monitor and a fault-free memory image.
BUNDLED_PLANS: dict[str, FaultPlan] = {
    "drop": FaultPlan(name="drop", drop_rate=0.05),
    "duplicate": FaultPlan(name="duplicate", dup_rate=0.10),
    "delay": FaultPlan(name="delay", delay_rate=0.20, delay_cycles=400.0),
    "stall": FaultPlan(name="stall", stall_rate=0.05, stall_cycles=600.0),
    "stale-schedule": FaultPlan(name="stale-schedule", stale_rate=0.30,
                                corrupt_rate=0.20),
    "chaos": FaultPlan(name="chaos", drop_rate=0.02, dup_rate=0.03,
                       delay_rate=0.05, delay_cycles=200.0,
                       stall_rate=0.02, stall_cycles=300.0,
                       stale_rate=0.10, corrupt_rate=0.05),
}

#: deliberately hopeless: every transmission is dropped and the budget is
#: tiny, so the transport must fail *fast* with a structured TransportTimeout
#: naming the node, block, and fault event — never hang.
UNRECOVERABLE_PLAN = FaultPlan(
    name="unrecoverable", drop_rate=1.0, timeout_budget=20_000.0, max_retries=3,
)
