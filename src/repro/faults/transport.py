"""A reliable transport over the (now possibly lossy) network.

Installed by :meth:`repro.tempest.machine.Machine.install_fault_plan` only
when the plan can perturb message delivery; the fault-free fast path never
sees it.  The design is a classic per-channel reliable link:

* every protocol message gets a per-(src, dst)-channel **sequence number**;
* the receiver **acks every physical arrival** immediately (selective ack,
  kind :data:`TACK`; acks bypass handler occupancy and are never themselves
  tracked), suppresses **duplicates**, and **holds back** out-of-order
  arrivals so the protocol observes each channel in FIFO order — the
  ordering assumption the coherence protocols were built on;
* the sender keeps an unacked-send record with a cancellable **retry timer**;
  timeouts retransmit with exponential backoff until acked, and exhaust into
  a structured :class:`~repro.util.errors.TransportTimeout` naming the node,
  block, and the fault event that doomed the message — an unrecoverable
  plan fails fast instead of hanging.

Retries/timeouts/suppressed duplicates are counted in
:class:`repro.sim.stats.NodeStats`; physical drop/duplicate counts live on
the :class:`~repro.tempest.network.Network`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.obs.events import EventKind
from repro.tempest.network import Message
from repro.util.errors import TransportTimeout

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.inject import FaultInjector
    from repro.tempest.machine import Machine

#: transport-level acknowledgement; consumed by the transport, never
#: delivered to a coherence protocol (distinct from the protocol's MK.ACK)
TACK = "TACK"


class _Pending:
    """One unacked send and its live retry timer."""

    __slots__ = ("msg", "first_sent", "retries", "timer", "rto")

    def __init__(self, msg: Message, first_sent: float, rto: float):
        self.msg = msg
        self.first_sent = first_sent
        self.retries = 0
        self.timer = None
        self.rto = rto


class _Channel:
    """Per-(src, dst) ordered-delivery state."""

    __slots__ = ("next_out", "next_expected", "held", "pending")

    def __init__(self) -> None:
        self.next_out = 0        # sender side: next seq to assign
        self.next_expected = 0   # receiver side: next seq to deliver
        self.held: dict[int, Message] = {}      # out-of-order arrivals
        self.pending: dict[int, _Pending] = {}  # unacked sends


class ReliableTransport:
    """Sequencing, ack/retry, dedup, and in-order hold-back for one machine."""

    def __init__(self, machine: "Machine", injector: "FaultInjector"):
        self.machine = machine
        self.injector = injector
        self.plan = injector.plan
        self._channels: dict[tuple[int, int], _Channel] = {}

    def _channel(self, src: int, dst: int) -> _Channel:
        ch = self._channels.get((src, dst))
        if ch is None:
            ch = self._channels[(src, dst)] = _Channel()
        return ch

    def _base_rto(self, msg: Message) -> float:
        """Base retransmission timeout for one message.

        Acks are sent on physical arrival (no handler queueing), so the
        true round trip is flight(msg) + flight(ack); the slack absorbs
        injected delivery delays before a spurious — though harmless,
        duplicates are suppressed — retransmission fires.
        """
        if self.plan.retry_timeout is not None:
            return self.plan.retry_timeout
        cfg = self.machine.config
        rtt = self.machine.network.flight_time(msg) + cfg.msg_latency
        return 2.0 * rtt + self.plan.delay_cycles + 4.0 * cfg.handler_cost

    # -- sender side ------------------------------------------------------------

    def send(self, msg: Message, at: float) -> float:
        ch = self._channel(msg.src, msg.dst)
        msg.seq = ch.next_out
        ch.next_out += 1
        pend = _Pending(msg, at, self._base_rto(msg))
        ch.pending[msg.seq] = pend
        nominal = self.machine.network.send(msg, at)
        self._arm_timer(ch, pend, at)
        return nominal

    def _arm_timer(self, ch: _Channel, pend: _Pending, now: float) -> None:
        backoff = pend.rto * (2 ** pend.retries)
        pend.timer = self.machine.engine.schedule(
            now + backoff, lambda: self._on_timeout(ch, pend)
        )

    def _on_timeout(self, ch: _Channel, pend: _Pending) -> None:
        msg = pend.msg
        if ch.pending.get(msg.seq) is not pend:
            return  # acked after the timer became uncancellable; stale fire
        now = self.machine.engine.now
        stats = self.machine.node(msg.src).stats
        plan = self.plan
        obs = self.machine.obs
        if (pend.retries >= plan.max_retries
                or now - pend.first_sent >= plan.timeout_budget):
            stats.transport_timeouts += 1
            if obs.enabled:
                obs.emit(EventKind.TIMEOUT, now, node=msg.src, dst=msg.dst,
                         block=msg.block, retries=pend.retries)
            doomed = self.injector.last_fault_for(msg.src, msg.dst, msg.seq)
            raise TransportTimeout(
                f"gave up on {msg} after {pend.retries} retries "
                f"({now - pend.first_sent:g} cycles)",
                node=msg.dst, time=now, block=msg.block,
                message_repr=repr(msg), event=doomed,
            )
        pend.retries += 1
        stats.transport_retries += 1
        if obs.enabled:
            obs.emit(EventKind.RETRY, now, node=msg.src, dst=msg.dst,
                     block=msg.block, attempt=pend.retries)
        msg.resends = pend.retries
        self.machine.network.send(msg, now)
        self._arm_timer(ch, pend, now)

    # -- receiver side ----------------------------------------------------------

    def on_arrival(self, msg: Message, t: float) -> list[Message]:
        """Filter one physical arrival; returns protocol-visible messages.

        Acks and duplicates return ``[]``; an in-order arrival returns
        itself plus any consecutively-held successors.
        """
        if msg.kind == TACK:
            self._on_ack(msg)
            return []
        self._send_ack(msg, t)
        ch = self._channel(msg.src, msg.dst)
        seq = msg.seq
        if seq is None:
            return [msg]  # untracked message (not sent through transport)
        if seq < ch.next_expected or seq in ch.held:
            self.machine.node(msg.dst).stats.duplicates_suppressed += 1
            obs = self.machine.obs
            if obs.enabled:
                obs.emit(EventKind.DUP_SUPPRESSED, t, node=msg.dst,
                         src=msg.src, seq=seq)
            return []
        if seq > ch.next_expected:
            ch.held[seq] = msg
            return []
        out = [msg]
        ch.next_expected += 1
        while ch.next_expected in ch.held:
            out.append(ch.held.pop(ch.next_expected))
            ch.next_expected += 1
        return out

    def _send_ack(self, msg: Message, t: float) -> None:
        ack = Message(TACK, src=msg.dst, dst=msg.src, block=msg.block,
                      info={"ack": msg.seq}, seq=msg.seq)
        # straight to the wire: acks are not themselves tracked or retried,
        # but they do cross the faulty network (a lost ack costs a
        # retransmission, which dedup then absorbs)
        self.machine.network.send(ack, t)

    def _on_ack(self, ack: Message) -> None:
        # the acked channel is the reverse of the ack's own direction
        ch = self._channel(ack.dst, ack.src)
        pend = ch.pending.pop(ack.info["ack"], None)
        if pend is not None and pend.timer is not None:
            pend.timer.cancel()

    # -- crash recovery ----------------------------------------------------------

    def forget_node(self, node: int) -> None:
        """Drop both directions of every channel involving ``node``.

        Called when survivors detect a crash: retry timers to the dead node
        are cancelled (their sends are handled by crash recovery, not
        retransmission) and sequence state is discarded on both sides, so
        after the restart each peer pair opens a fresh channel from seq 0 —
        a held-back out-of-order backlog from the previous incarnation could
        otherwise wedge the channel forever.
        """
        for key in [k for k in self._channels if node in k]:
            ch = self._channels.pop(key)
            for pend in ch.pending.values():
                if pend.timer is not None:
                    pend.timer.cancel()

    def has_unacked(self, src: int, dst: int) -> bool:
        """Whether channel (src, dst) still has sends awaiting acknowledgement."""
        ch = self._channels.get((src, dst))
        return ch is not None and bool(ch.pending)

    # -- quiescence -------------------------------------------------------------

    @property
    def unacked(self) -> int:
        return sum(len(ch.pending) for ch in self._channels.values())

    @property
    def held_back(self) -> int:
        return sum(len(ch.held) for ch in self._channels.values())
