"""The discrete-event engine.

A minimal, deterministic event-queue simulator: events are ``(time, seq,
callback)`` triples ordered by time with FIFO tie-breaking via the sequence
number, so runs are exactly reproducible.  Callbacks may schedule further
events; :meth:`Engine.run` drains the queue.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

from repro.util.errors import SimulationError


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordering is (time, seq); the callback itself
    never participates in comparisons."""

    time: float
    seq: int
    fn: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        self.cancelled = True


class Engine:
    """A deterministic discrete-event simulator.

    Usage::

        eng = Engine()
        eng.schedule(10.0, lambda: ...)
        eng.run()

    ``eng.now`` is the timestamp of the event currently being dispatched
    (0.0 before the first event).  Scheduling into the past raises
    :class:`SimulationError` — that always indicates a modelling bug.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[Event] = []
        self._seq: int = 0
        self._dispatched: int = 0
        self._running = False
        #: optional observability sink (repro.obs tracer); None keeps the
        #: drain loop's epilogue to a single identity check
        self.obs = None

    # -- scheduling ----------------------------------------------------------

    def schedule(self, time: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` to run at absolute ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self.now}"
            )
        ev = Event(time, self._seq, fn)
        self._seq += 1
        heapq.heappush(self._queue, ev)
        return ev

    def schedule_after(self, delay: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule(self.now + delay, fn)

    # -- execution -----------------------------------------------------------

    def _prune_cancelled_front(self) -> None:
        """Drop cancelled events from the head of the queue.

        The cancel contract: :meth:`Event.cancel` only flags the event —
        it stays queued until a queue operation walks past it.  Every
        entry point that reads the queue head (:meth:`peek_time`,
        :meth:`_next_event`) must prune flagged events first, or a
        cancelled frontier would make ``peek_time`` report a stale time
        that no live event will ever dispatch at.  (The calendar queue in
        :mod:`repro.fastpath.calqueue` has the same obligation per slot:
        an all-cancelled slot must be deleted, not just skipped —
        regression-tested against both engines in ``tests/fastpath``.)
        """
        q = self._queue
        while q and q[0].cancelled:
            heapq.heappop(q)

    def _next_event(self) -> Event | None:
        """Select and remove the next event to dispatch.

        The base engine is strictly FIFO among same-timestamp events (heap
        order is ``(time, seq)``).  :class:`repro.verify.interleave.ExplorerEngine`
        overrides this hook to explore alternative legal tie-break orders.
        """
        self._prune_cancelled_front()
        if not self._queue:
            return None
        return heapq.heappop(self._queue)

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Dispatch events in order until the queue empties.

        ``until`` stops the run once the next event is strictly later than
        that time (the event stays queued).  ``max_events`` guards against
        runaway models.  Returns the number of events dispatched by this call.
        """
        if self._running:
            raise SimulationError("Engine.run is not reentrant")
        self._running = True
        dispatched = 0
        try:
            while True:
                t = self.peek_time()
                if t is None:
                    break
                if until is not None and t > until:
                    break
                ev = self._next_event()
                if ev is None:
                    break
                self.now = ev.time
                ev.fn()
                dispatched += 1
                self._dispatched += 1
                if max_events is not None and dispatched >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; likely a livelocked model"
                    )
            if until is not None and self.now < until and not self._queue:
                self.now = until
        finally:
            self._running = False
        if self.obs is not None and self.obs.enabled and dispatched:
            self.obs.emit("engine.run", self.now, dispatched=dispatched)
        return dispatched

    @property
    def pending(self) -> int:
        """Number of not-yet-dispatched (and not cancelled) events.

        Cancelled events are pruned from the queue here rather than merely
        skipped: quiescence checks call this at every phase barrier, so a
        long fault run with many cancelled retry timers would otherwise both
        re-scan an ever-growing heap and report a "drained" queue that still
        holds garbage (checkpointing requires the queue to be truly empty).
        """
        if any(ev.cancelled for ev in self._queue):
            self._queue = [ev for ev in self._queue if not ev.cancelled]
            heapq.heapify(self._queue)
        return len(self._queue)

    @property
    def total_dispatched(self) -> int:
        return self._dispatched

    def peek_time(self) -> float | None:
        """Timestamp of the next live event, or None if the queue is empty."""
        self._prune_cancelled_front()
        return self._queue[0].time if self._queue else None
