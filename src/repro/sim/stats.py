"""Execution-time accounting.

The paper's figures decompose each run into three stacked segments:

* **Remote data wait** — cycles a processor stalls on non-local shared data,
* **Predictive protocol** — cycles spent in the pre-send phase,
* **Compute + Synch** — computation plus barrier-synchronization time.

We track four raw categories (compute and synch separately, which the paper
itself discusses when explaining Adaptive's synchronization win) and fold
them for figure output.  Because every phase ends at a global barrier, each
node's per-category cycles sum to the same wall-clock time; the figure bars
are the across-node means, which therefore also sum to wall time.
"""

from __future__ import annotations

import enum
from dataclasses import asdict, dataclass, field, fields
from typing import Iterable, Mapping


class TimeCategory(enum.Enum):
    COMPUTE = "compute"
    REMOTE_WAIT = "remote_wait"
    PREDICTIVE = "predictive"
    SYNCH = "synch"
    #: cycles a node spent dead between a crash-stop and its restart; zero on
    #: every fault-free run, so the paper-figure breakdown (which folds only
    #: the four categories above) is unchanged there
    DOWNTIME = "downtime"


@dataclass
class NodeStats:
    """Per-node accumulated cycles and protocol event counters."""

    node: int
    cycles: dict[TimeCategory, float] = field(
        default_factory=lambda: {c: 0.0 for c in TimeCategory}
    )
    # protocol counters
    read_misses: int = 0
    write_misses: int = 0
    local_hits: int = 0
    presend_blocks_sent: int = 0
    presend_blocks_received: int = 0
    presend_useless_blocks: int = 0  # pre-sent but invalidated before any use
    messages_sent: int = 0
    bytes_sent: int = 0
    # resilient-transport counters (all zero on the fault-free fast path)
    transport_retries: int = 0       # retransmissions this node issued
    transport_timeouts: int = 0      # sends that exhausted the retry budget
    duplicates_suppressed: int = 0   # already-seen seqs discarded on arrival
    # crash-recovery counters (all zero on the fault-free fast path)
    crashes: int = 0                 # crash-stop failures of this node
    reissued_requests: int = 0       # faults re-sent after a home crashed

    def add(self, category: TimeCategory, cycles: float) -> None:
        if cycles < 0:
            raise ValueError(f"negative time {cycles} for {category}")
        self.cycles[category] += cycles

    @property
    def total(self) -> float:
        return sum(self.cycles.values())

    def to_dict(self) -> dict:
        d = {f.name: getattr(self, f.name) for f in fields(self)}
        d["cycles"] = {c.value: t for c, t in self.cycles.items()}
        return d

    @classmethod
    def from_dict(cls, d: Mapping) -> "NodeStats":
        d = dict(d)
        d["cycles"] = {TimeCategory(k): v for k, v in d["cycles"].items()}
        return cls(**d)


@dataclass
class PhaseBreakdown:
    """Aggregate timing for one parallel phase execution (all nodes)."""

    phase_name: str
    directive_id: int | None
    wall_start: float
    wall_end: float
    #: protocol activity during this phase (deltas of the run counters)
    misses: int = 0
    hits: int = 0
    messages: int = 0
    #: per-category cycles charged across all nodes during this phase
    #: (deltas of the node accumulators, nonzero categories only, keyed by
    #: ``TimeCategory.value``).  This is the accounting schema shared by the
    #: simulator, the ``repro.obs`` profiler, and the ``repro.model``
    #: analytical predictor; pre-send (PREDICTIVE) charges land in the phase
    #: that *follows* the directive's ``begin_group``.
    cycles: dict[str, float] = field(default_factory=dict)

    @property
    def wall(self) -> float:
        return self.wall_end - self.wall_start

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 1.0

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: Mapping) -> "PhaseBreakdown":
        return cls(**d)


class RunStats:
    """Statistics for one full program run on the simulated machine."""

    def __init__(self, n_nodes: int):
        self.nodes = [NodeStats(i) for i in range(n_nodes)]
        self.phases: list[PhaseBreakdown] = []
        self.wall_time: float = 0.0
        self.total_remote_requests: int = 0
        #: predictive schedules flushed for chronic misprediction (degradation)
        self.schedules_degraded: int = 0

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe form; :meth:`from_dict` reconstructs an equal object.

        This is the transport format farm workers use to ship a run's
        accounting back to the coordinator (``repro.farm``); it is lossless,
        unlike the reporting-oriented ``repro.obs.run_stats_json``.
        """
        return {
            "nodes": [n.to_dict() for n in self.nodes],
            "phases": [p.to_dict() for p in self.phases],
            "wall_time": self.wall_time,
            "total_remote_requests": self.total_remote_requests,
            "schedules_degraded": self.schedules_degraded,
        }

    @classmethod
    def from_dict(cls, d: Mapping) -> "RunStats":
        stats = cls(n_nodes=len(d["nodes"]))
        stats.nodes = [NodeStats.from_dict(n) for n in d["nodes"]]
        stats.phases = [PhaseBreakdown.from_dict(p) for p in d["phases"]]
        stats.wall_time = d["wall_time"]
        stats.total_remote_requests = d["total_remote_requests"]
        stats.schedules_degraded = d["schedules_degraded"]
        return stats

    # -- summaries ------------------------------------------------------------

    def mean(self, category: TimeCategory) -> float:
        return sum(n.cycles[category] for n in self.nodes) / len(self.nodes)

    def totals(self) -> dict[TimeCategory, float]:
        return {c: self.mean(c) for c in TimeCategory}

    def figure_breakdown(self) -> dict[str, float]:
        """The three stacked segments of the paper's figures (mean cycles)."""
        t = self.totals()
        return {
            "Remote data wait": t[TimeCategory.REMOTE_WAIT],
            "Predictive protocol": t[TimeCategory.PREDICTIVE],
            "Compute+Synch": t[TimeCategory.COMPUTE] + t[TimeCategory.SYNCH],
        }

    @property
    def local_hits(self) -> int:
        return sum(n.local_hits for n in self.nodes)

    @property
    def misses(self) -> int:
        return sum(n.read_misses + n.write_misses for n in self.nodes)

    @property
    def hit_rate(self) -> float:
        accesses = self.local_hits + self.misses
        return self.local_hits / accesses if accesses else 1.0

    @property
    def messages(self) -> int:
        return sum(n.messages_sent for n in self.nodes)

    @property
    def bytes_on_wire(self) -> int:
        return sum(n.bytes_sent for n in self.nodes)

    @property
    def transport_retries(self) -> int:
        return sum(n.transport_retries for n in self.nodes)

    @property
    def transport_timeouts(self) -> int:
        return sum(n.transport_timeouts for n in self.nodes)

    @property
    def duplicates_suppressed(self) -> int:
        return sum(n.duplicates_suppressed for n in self.nodes)

    @property
    def crashes(self) -> int:
        return sum(n.crashes for n in self.nodes)

    @property
    def reissued_requests(self) -> int:
        return sum(n.reissued_requests for n in self.nodes)

    @property
    def downtime(self) -> float:
        return sum(n.cycles[TimeCategory.DOWNTIME] for n in self.nodes)

    def check_conservation(self, tol: float = 1e-6) -> None:
        """Assert each node's category cycles sum to wall time.

        Holds exactly because every run ends at a global barrier; tests use
        this as an invariant.
        """
        for n in self.nodes:
            if abs(n.total - self.wall_time) > tol * max(1.0, self.wall_time):
                raise AssertionError(
                    f"node {n.node}: categories sum to {n.total}, wall={self.wall_time}"
                )

    def phase_category_totals(self) -> dict[str, float]:
        """Per-category cycles summed over all recorded phase breakdowns."""
        totals: dict[str, float] = {}
        for p in self.phases:
            for key, cycles in p.cycles.items():
                totals[key] = totals.get(key, 0.0) + cycles
        return totals

    def check_phase_conservation(self, tol: float = 1e-6) -> None:
        """Assert the per-phase cycle breakdowns telescope to the node totals.

        Each phase records the across-node delta of every category
        accumulator, so summing the phases must reproduce the across-node
        totals exactly (up to float tolerance).  Guards the schema the
        analytical model predicts into.
        """
        phase_totals = self.phase_category_totals()
        for c in TimeCategory:
            node_total = sum(n.cycles[c] for n in self.nodes)
            phase_total = phase_totals.get(c.value, 0.0)
            if abs(node_total - phase_total) > tol * max(1.0, node_total):
                raise AssertionError(
                    f"category {c.value}: phases sum to {phase_total}, "
                    f"nodes sum to {node_total}"
                )

    def phase_rows(self) -> list[list[object]]:
        """Per-phase activity (name, wall, misses, hit rate) for reports."""
        return [
            [p.phase_name, p.wall, float(p.misses), p.hit_rate]
            for p in self.phases
        ]

    def summary_rows(self) -> list[list[object]]:
        b = self.figure_breakdown()
        return [
            ["wall time (cycles)", self.wall_time],
            ["remote data wait (mean)", b["Remote data wait"]],
            ["predictive protocol (mean)", b["Predictive protocol"]],
            ["compute+synch (mean)", b["Compute+Synch"]],
            ["local hit rate", self.hit_rate],
            ["remote misses", float(self.misses)],
            ["protocol messages", float(self.messages)],
        ] + self._resilience_rows()

    def _resilience_rows(self) -> list[list[object]]:
        """Transport/degradation rows, emitted only when nonzero.

        Fault-free runs produce none of these events, so their summaries —
        and the determinism fingerprints built from them — are unchanged.
        """
        rows: list[list[object]] = []
        if self.transport_retries:
            rows.append(["transport retries", float(self.transport_retries)])
        if self.transport_timeouts:
            rows.append(["transport timeouts", float(self.transport_timeouts)])
        if self.duplicates_suppressed:
            rows.append(["duplicates suppressed", float(self.duplicates_suppressed)])
        if self.schedules_degraded:
            rows.append(["schedules degraded", float(self.schedules_degraded)])
        if self.crashes:
            rows.append(["node crashes", float(self.crashes)])
            rows.append(["downtime (cycles)", self.downtime])
        if self.reissued_requests:
            rows.append(["requests reissued", float(self.reissued_requests)])
        return rows
