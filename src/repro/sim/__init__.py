"""Discrete-event simulation core.

:class:`~repro.sim.engine.Engine` is a classic event-queue simulator; all
timing behaviour of the DSM machine (network flights, handler occupancy,
barrier waits) is expressed as events scheduled on one engine instance.
"""

from repro.sim.engine import Engine, Event
from repro.sim.stats import TimeCategory, NodeStats, PhaseBreakdown, RunStats

__all__ = [
    "Engine",
    "Event",
    "TimeCategory",
    "NodeStats",
    "PhaseBreakdown",
    "RunStats",
]
