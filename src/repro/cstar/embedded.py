"""The embedded C** frontend.

The paper's applications (Adaptive, Barnes, Water) use C++ pointer structures
our textual mini-language does not model, but the *compiler analysis never
looks below the level of access summaries on a control-flow graph* (its
Figure 4).  This frontend therefore lets an application written in Python
declare exactly that information — each parallel function's
:class:`~repro.cstar.access.AccessSummary` and the ``main`` flow tree — and
feeds it through the very same dataflow and directive-placement passes as
the textual compiler.  Invocation bodies are Python callables executed under
the trace-capturing runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.cstar.access import Access, AccessKind, AccessSummary, Locality
from repro.cstar.driver import Env, execute
from repro.cstar.flow import FlowCall, FlowIf, FlowLoop, FlowSeq, FlowStmt
from repro.cstar.placement import PlacementResult, place_directives
from repro.cstar.runtime import CStarRuntime, ElementContext
from repro.tempest.machine import Machine
from repro.util.errors import CompileError


def access(aggregate: str, kind: str, locality: str) -> Access:
    """Shorthand: ``access("dual", "r", "non-home")``."""
    return Access(
        aggregate,
        AccessKind.READ if kind == "r" else AccessKind.WRITE,
        Locality.HOME if locality == "home" else Locality.NON_HOME,
    )


@dataclass
class CallSpec:
    """Runtime payload of an embedded parallel call site."""

    function: str
    over: str
    snapshot: tuple[str, ...] = ()
    #: body(ctx, env) — invoked once per element
    body: Callable[[ElementContext, Env], None] | None = None
    #: optional element-set restriction: elements(env) -> iterable of indices
    elements: Callable[[Env], Iterable[tuple[int, ...]]] | None = None


@dataclass
class LoopSpec:
    """Runtime payload of an embedded loop: fixed count or predicate."""

    count: int | Callable[[Env], int] | None = None
    cond: Callable[[Env], bool] | None = None

    def trip_count(self, env: Env) -> int | None:
        if self.count is None:
            return None
        return self.count(env) if callable(self.count) else self.count


class EmbeddedProgram:
    """An application declared at the compiler's level of abstraction."""

    def __init__(self, name: str, setup: Callable[[Env], None]):
        self.name = name
        self.setup = setup
        self.functions: dict[str, AccessSummary] = {}
        self._bodies: dict[str, Callable] = {}
        self.main: FlowSeq | None = None
        self._placement: PlacementResult | None = None

    # -- declaring parallel functions ---------------------------------------------

    def parallel(
        self,
        name: str,
        accesses: Sequence[Access],
        body: Callable[[ElementContext, Env], None],
    ) -> str:
        if name in self.functions:
            raise CompileError(f"parallel function {name!r} already declared")
        self.functions[name] = AccessSummary(name, accesses)
        self._bodies[name] = body
        return name

    # -- building main ------------------------------------------------------------

    def call(
        self,
        function: str,
        over: str,
        snapshot: Sequence[str] = (),
        elements: Callable[[Env], Iterable] | None = None,
    ) -> FlowCall:
        if function not in self.functions:
            raise CompileError(f"call to undeclared parallel function {function!r}")
        spec = CallSpec(
            function=function,
            over=over,
            snapshot=tuple(snapshot),
            body=self._bodies[function],
            elements=elements,
        )
        return FlowCall(function=function, summary=self.functions[function], payload=spec)

    @staticmethod
    def stmt(fn: Callable[[Env], None]) -> FlowStmt:
        return FlowStmt(payload=fn)

    @staticmethod
    def seq(*nodes) -> FlowSeq:
        return FlowSeq(list(nodes))

    @staticmethod
    def loop(count, *nodes) -> FlowLoop:
        """loop(10, ...) or loop(lambda env: env.params["iters"], ...) or
        loop(LoopSpec(cond=...), ...)."""
        spec = count if isinstance(count, LoopSpec) else LoopSpec(count=count)
        return FlowLoop(body=FlowSeq(list(nodes)), payload=spec)

    @staticmethod
    def if_(cond: Callable[[Env], bool], then_nodes, else_nodes=()) -> FlowIf:
        return FlowIf(
            then_body=FlowSeq(list(then_nodes)),
            else_body=FlowSeq(list(else_nodes)),
            payload=cond,
        )

    def build(self, *nodes) -> None:
        self.main = FlowSeq(list(nodes))

    # -- compile & run ----------------------------------------------------------------

    def compile(self) -> PlacementResult:
        """Run access analysis + dataflow + directive placement (cached)."""
        if self.main is None:
            raise CompileError(f"program {self.name!r} has no main")
        if self._placement is None:
            self._placement = place_directives(self.main, label_prefix=f"{self.name}:")
        return self._placement

    def run(
        self,
        machine: Machine,
        params: dict[str, Any] | None = None,
        optimized: bool = True,
    ) -> Env:
        """Execute on ``machine``.

        ``optimized=True`` runs the directive-annotated program (the paper's
        "optimized communication" versions); ``False`` runs the same program
        with no directives (the unoptimized baseline), regardless of
        protocol.
        """
        runtime = CStarRuntime(machine)
        env = Env(runtime=runtime, params=dict(params or {}))
        self.setup(env)
        root = self.compile().root if optimized else self.main
        execute(root, env)
        return env
