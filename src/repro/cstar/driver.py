"""Executor for (placed) flow trees with embedded-frontend payloads.

Walks a :mod:`repro.cstar.flow` tree, issuing runtime directives at
:class:`~repro.cstar.flow.FlowGroup` boundaries and running parallel calls
through the trace-capturing runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.cstar.flow import (
    FlowCall,
    FlowGroup,
    FlowIf,
    FlowLoop,
    FlowNode,
    FlowSeq,
    FlowStmt,
)
from repro.cstar.runtime import CStarRuntime
from repro.util.errors import SimulationError


@dataclass
class Env:
    """Execution environment shared by setup, bodies, and sequential steps."""

    runtime: CStarRuntime
    params: dict[str, Any] = field(default_factory=dict)
    #: free-form application state (trees, element lists, iteration counters)
    state: dict[str, Any] = field(default_factory=dict)

    def agg(self, name: str):
        return self.runtime.aggregates[name]

    @property
    def machine(self):
        return self.runtime.machine

    def finish(self):
        return self.runtime.finish()


def execute(node: FlowNode, env: Env) -> None:
    """Execute one flow node (and its subtree)."""
    if isinstance(node, FlowSeq):
        for child in node.children:
            execute(child, env)
    elif isinstance(node, FlowStmt):
        if callable(node.payload):
            node.payload(env)
    elif isinstance(node, FlowGroup):
        env.runtime.begin_group(node.directive_id)
        try:
            execute(node.body, env)
        finally:
            env.runtime.end_group()
    elif isinstance(node, FlowLoop):
        spec = node.payload
        if spec is None:
            raise SimulationError("embedded loop without a LoopSpec payload")
        count = spec.trip_count(env)
        if count is not None:
            for _ in range(count):
                execute(node.body, env)
        else:
            if spec.cond is None:
                raise SimulationError("LoopSpec needs a count or a cond")
            while spec.cond(env):
                execute(node.body, env)
    elif isinstance(node, FlowIf):
        cond = node.payload
        if not callable(cond):
            raise SimulationError("embedded if without a condition payload")
        execute(node.then_body if cond(env) else node.else_body, env)
    elif isinstance(node, FlowCall):
        spec = node.payload
        if spec is None or spec.body is None:
            raise SimulationError(f"call site {node!r} has no executable payload")
        over = env.agg(spec.over)
        snapshot = [env.agg(n) for n in spec.snapshot]
        elements = spec.elements(env) if spec.elements is not None else None
        env.runtime.par_call(
            lambda ctx: spec.body(ctx, env),
            over=over,
            snapshot_of=snapshot,
            name=spec.function,
            elements=elements,
        )
    else:
        raise SimulationError(f"cannot execute flow node {node!r}")
