"""Semantic analysis for the C** mini-language.

Two jobs:

1. **Checking** — names resolve, arities match, aggregates are indexed with
   the right rank, position pseudo-variables stay within the parallel
   parameter's rank, main never touches aggregate elements directly.
2. **Access-pattern analysis** (paper §4.2) — produce each parallel
   function's :class:`~repro.cstar.access.AccessSummary`: every aggregate
   element access is classified Home (the invocation's own element: the
   parallel parameter indexed by exactly ``[#0][#1]...``) or Non-Home
   (everything else — neighbor offsets, indirection, other aggregates),
   and Read or Write.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cstar import astnodes as A
from repro.cstar.access import Access, AccessKind, AccessSummary, Locality
from repro.util.errors import CompileError


@dataclass
class FunctionInfo:
    decl: A.ParallelDecl
    summary: AccessSummary
    #: param name -> aggregate type name (None for scalar params)
    agg_params: dict[str, str]
    parallel_param: str


@dataclass
class ProgramInfo:
    program: A.Program
    agg_decls: dict[str, A.AggregateDecl]
    functions: dict[str, FunctionInfo]


def analyze(program: A.Program) -> ProgramInfo:
    agg_decls = {}
    for d in program.aggregates:
        if d.name in agg_decls:
            raise CompileError(f"duplicate aggregate type {d.name!r}")
        agg_decls[d.name] = d

    functions: dict[str, FunctionInfo] = {}
    for f in program.functions:
        if f.name in functions:
            raise CompileError(f"duplicate parallel function {f.name!r}")
        functions[f.name] = _analyze_function(f, agg_decls)

    _check_main(program.main, agg_decls, functions)
    return ProgramInfo(program, agg_decls, functions)


# --------------------------------------------------------------------------- #
# parallel functions
# --------------------------------------------------------------------------- #


def _is_own_indices(indices: tuple[A.Node, ...], rank: int) -> bool:
    """True iff the index list is exactly ``[#0][#1]...[#rank-1]``."""
    if len(indices) != rank:
        return False
    return all(
        isinstance(e, A.Pos) and e.dim == i for i, e in enumerate(indices)
    )


def _analyze_function(
    decl: A.ParallelDecl, agg_decls: dict[str, A.AggregateDecl]
) -> FunctionInfo:
    agg_params: dict[str, str] = {}
    scalar_params: set[str] = set()
    for p in decl.params:
        if p.type_name in ("float", "int"):
            if p.is_parallel:
                raise CompileError(
                    f"{decl.name}: scalar parameter {p.name!r} cannot be parallel"
                )
            scalar_params.add(p.name)
        elif p.type_name in agg_decls:
            agg_params[p.name] = p.type_name
        else:
            raise CompileError(
                f"{decl.name}: unknown parameter type {p.type_name!r}"
            )

    # the parallel parameter: explicit keyword, else the first aggregate param
    parallel_param = None
    for p in decl.params:
        if p.is_parallel:
            if p.name not in agg_params:
                raise CompileError(f"{decl.name}: parallel parameter must be an aggregate")
            parallel_param = p.name
            break
    if parallel_param is None:
        for p in decl.params:
            if p.name in agg_params:
                parallel_param = p.name
                break
    if parallel_param is None:
        raise CompileError(f"{decl.name}: no aggregate parameter to parallelize over")

    own_rank = agg_decls[agg_params[parallel_param]].rank
    summary = AccessSummary(decl.name)
    locals_: set[str] = set(scalar_params)

    def classify(index: A.Index) -> Locality:
        if index.aggregate == parallel_param and _is_own_indices(index.indices, own_rank):
            return Locality.HOME
        return Locality.NON_HOME

    def check_index(index: A.Index) -> None:
        if index.aggregate not in agg_params:
            raise CompileError(
                f"{decl.name}: {index.aggregate!r} is not an aggregate parameter"
            )
        rank = agg_decls[agg_params[index.aggregate]].rank
        if len(index.indices) != rank:
            raise CompileError(
                f"{decl.name}: {index.aggregate!r} has rank {rank}, indexed "
                f"with {len(index.indices)} subscripts"
            )
        for e in index.indices:
            walk_expr(e)

    def walk_expr(e: A.Node) -> None:
        if isinstance(e, A.Num):
            return
        if isinstance(e, A.Pos):
            if e.dim >= own_rank:
                raise CompileError(
                    f"{decl.name}: #{e.dim} exceeds the parallel aggregate's "
                    f"rank {own_rank}"
                )
            return
        if isinstance(e, A.Name):
            if e.ident in agg_params:
                raise CompileError(
                    f"{decl.name}: aggregate {e.ident!r} used without subscripts"
                )
            if e.ident not in locals_:
                raise CompileError(f"{decl.name}: undefined variable {e.ident!r}")
            return
        if isinstance(e, A.Index):
            check_index(e)
            summary.add(Access(e.aggregate, AccessKind.READ, classify(e)))
            return
        if isinstance(e, A.BinOp):
            walk_expr(e.left)
            walk_expr(e.right)
            return
        if isinstance(e, A.UnOp):
            walk_expr(e.operand)
            return
        if isinstance(e, A.Intrinsic):
            from repro.cstar.parser import REDUCE_OPS

            if e.func in REDUCE_OPS:
                raise CompileError(
                    f"{decl.name}: reductions are main-level operations"
                )
            for a in e.args:
                walk_expr(a)
            return
        raise CompileError(f"{decl.name}: unexpected expression {e!r}")

    def walk_stmt(s: A.Node) -> None:
        if isinstance(s, A.Let):
            walk_expr(s.value)
            locals_.add(s.name)
            return
        if isinstance(s, A.AssignVar):
            if s.name not in locals_:
                raise CompileError(
                    f"{decl.name}: assignment to undeclared variable {s.name!r}"
                )
            walk_expr(s.value)
            return
        if isinstance(s, A.AssignElem):
            check_index(s.target)
            walk_expr(s.value)
            summary.add(
                Access(s.target.aggregate, AccessKind.WRITE, classify(s.target))
            )
            return
        if isinstance(s, A.If):
            walk_expr(s.cond)
            for b in s.then_body:
                walk_stmt(b)
            for b in s.else_body:
                walk_stmt(b)
            return
        if isinstance(s, A.For):
            locals_.add(s.init.name)
            walk_expr(s.init.value)
            walk_expr(s.cond)
            walk_expr(s.step.value)
            for b in s.body:
                walk_stmt(b)
            return
        if isinstance(s, A.While):
            walk_expr(s.cond)
            for b in s.body:
                walk_stmt(b)
            return
        if isinstance(s, (A.ParCallStmt, A.NewAggregate)):
            raise CompileError(
                f"{decl.name}: nested parallel calls / aggregate creation are "
                f"not allowed in parallel functions"
            )
        raise CompileError(f"{decl.name}: unexpected statement {s!r}")

    for s in decl.body:
        walk_stmt(s)

    return FunctionInfo(
        decl=decl,
        summary=summary,
        agg_params=dict(agg_params),
        parallel_param=parallel_param,
    )


# --------------------------------------------------------------------------- #
# main
# --------------------------------------------------------------------------- #


def _check_main(
    main: A.MainDecl,
    agg_decls: dict[str, A.AggregateDecl],
    functions: dict[str, FunctionInfo],
) -> None:
    from repro.cstar.parser import REDUCE_OPS

    scalars: set[str] = set()
    agg_vars: dict[str, str] = {}  # var name -> aggregate type

    def walk_expr(e: A.Node, allow_reduce: bool = True) -> None:
        if isinstance(e, A.Num):
            return
        if isinstance(e, A.Name):
            if e.ident in agg_vars:
                raise CompileError(
                    f"main: aggregate {e.ident!r} used in a scalar expression"
                )
            if e.ident not in scalars:
                raise CompileError(f"main: undefined variable {e.ident!r}")
            return
        if isinstance(e, A.Pos):
            raise CompileError("main: position pseudo-variables only exist in parallel functions")
        if isinstance(e, A.Index):
            raise CompileError(
                "main: aggregate elements may only be accessed in parallel functions"
            )
        if isinstance(e, A.BinOp):
            walk_expr(e.left, allow_reduce)
            walk_expr(e.right, allow_reduce)
            return
        if isinstance(e, A.UnOp):
            walk_expr(e.operand, allow_reduce)
            return
        if isinstance(e, A.Intrinsic):
            if e.func in REDUCE_OPS:
                if not allow_reduce:
                    raise CompileError(
                        "main: reductions are not allowed inside parallel "
                        "call arguments"
                    )
                if len(e.args) != 1 or not isinstance(e.args[0], A.Name):
                    raise CompileError(
                        f"main: {e.func} takes exactly one aggregate argument"
                    )
                if e.args[0].ident not in agg_vars:
                    raise CompileError(
                        f"main: {e.func} argument must be an aggregate"
                    )
                return
            for a in e.args:
                walk_expr(a, allow_reduce)
            return
        raise CompileError(f"main: unexpected expression {e!r}")

    def walk_stmt(s: A.Node) -> None:
        if isinstance(s, A.Let):
            walk_expr(s.value)
            scalars.add(s.name)
            return
        if isinstance(s, A.AssignVar):
            if s.name not in scalars:
                raise CompileError(f"main: assignment to undeclared variable {s.name!r}")
            walk_expr(s.value)
            return
        if isinstance(s, A.AssignElem):
            raise CompileError(
                "main: aggregate elements may only be written in parallel functions"
            )
        if isinstance(s, A.NewAggregate):
            if s.type_name not in agg_decls:
                raise CompileError(f"main: unknown aggregate type {s.type_name!r}")
            if s.name in agg_vars or s.name in scalars:
                raise CompileError(f"main: {s.name!r} redeclared")
            rank = agg_decls[s.type_name].rank
            if len(s.dims) != rank:
                raise CompileError(
                    f"main: {s.type_name} has rank {rank}, got {len(s.dims)} dimensions"
                )
            for d in s.dims:
                walk_expr(d)
            agg_vars[s.name] = s.type_name
            return
        if isinstance(s, A.If):
            walk_expr(s.cond)
            for b in s.then_body:
                walk_stmt(b)
            for b in s.else_body:
                walk_stmt(b)
            return
        if isinstance(s, A.For):
            scalars.add(s.init.name)
            walk_expr(s.init.value)
            walk_expr(s.cond)
            if s.step.name not in scalars:
                raise CompileError(f"main: for-step assigns undeclared {s.step.name!r}")
            walk_expr(s.step.value)
            for b in s.body:
                walk_stmt(b)
            return
        if isinstance(s, A.While):
            walk_expr(s.cond)
            for b in s.body:
                walk_stmt(b)
            return
        if isinstance(s, A.ParCallStmt):
            info = functions.get(s.func)
            if info is None:
                raise CompileError(f"main: call to unknown parallel function {s.func!r}")
            params = info.decl.params
            if len(s.args) != len(params):
                raise CompileError(
                    f"main: {s.func} takes {len(params)} arguments, got {len(s.args)}"
                )
            for arg, p in zip(s.args, params):
                if p.name in info.agg_params:
                    if not isinstance(arg, A.Name) or arg.ident not in agg_vars:
                        raise CompileError(
                            f"main: argument for {s.func}.{p.name} must be an aggregate"
                        )
                    if agg_vars[arg.ident] != p.type_name:
                        raise CompileError(
                            f"main: {s.func}.{p.name} expects {p.type_name}, "
                            f"got {agg_vars[arg.ident]}"
                        )
                else:
                    walk_expr(arg, allow_reduce=False)
            return
        raise CompileError(f"main: unexpected statement {s!r}")

    for s in main.body:
        walk_stmt(s)
