"""AST node definitions for the C** mini-language."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Node:
    pass


# -- expressions ---------------------------------------------------------------


@dataclass(frozen=True)
class Num(Node):
    value: float | int


@dataclass(frozen=True)
class Name(Node):
    ident: str


@dataclass(frozen=True)
class Pos(Node):
    """Position pseudo-variable #k (paper Figure 2)."""

    dim: int


@dataclass(frozen=True)
class BinOp(Node):
    op: str
    left: Node
    right: Node


@dataclass(frozen=True)
class UnOp(Node):
    op: str  # "-" or "!"
    operand: Node


@dataclass(frozen=True)
class Index(Node):
    """Aggregate element access: ``name[e0][e1]...``."""

    aggregate: str
    indices: tuple[Node, ...]


@dataclass(frozen=True)
class Intrinsic(Node):
    """Built-in math call: sqrt, abs, min, max, floor, pow, exp."""

    func: str
    args: tuple[Node, ...]


# -- statements -----------------------------------------------------------------


@dataclass(frozen=True)
class Let(Node):
    name: str
    value: Node


@dataclass(frozen=True)
class AssignVar(Node):
    name: str
    value: Node


@dataclass(frozen=True)
class AssignElem(Node):
    target: Index
    value: Node


@dataclass(frozen=True)
class NewAggregate(Node):
    """``Grid a(64, 64);`` — create an aggregate at runtime (paper §4.1)."""

    type_name: str
    name: str
    dims: tuple[Node, ...]


@dataclass(frozen=True)
class If(Node):
    cond: Node
    then_body: tuple[Node, ...]
    else_body: tuple[Node, ...] = ()


@dataclass(frozen=True)
class For(Node):
    init: AssignVar
    cond: Node
    step: AssignVar
    body: tuple[Node, ...]


@dataclass(frozen=True)
class While(Node):
    cond: Node
    body: tuple[Node, ...]


@dataclass(frozen=True)
class ParCallStmt(Node):
    """Parallel function call in main."""

    func: str
    args: tuple[Node, ...]  # Name for aggregates, exprs for scalars


# -- declarations ------------------------------------------------------------------


@dataclass(frozen=True)
class AggregateDecl(Node):
    """``aggregate Grid(float)[][];`` — an aggregate class (paper Figure 1)."""

    name: str
    base_type: str  # "float" | "int"
    rank: int


@dataclass(frozen=True)
class Param(Node):
    type_name: str  # aggregate class name or "float"/"int"
    name: str
    is_parallel: bool = False


@dataclass(frozen=True)
class ParallelDecl(Node):
    """A user-defined data-parallel function (paper §4.1)."""

    name: str
    params: tuple[Param, ...]
    body: tuple[Node, ...]

    def parallel_param(self) -> Param:
        for p in self.params:
            if p.is_parallel:
                return p
        return self.params[0]


@dataclass(frozen=True)
class MainDecl(Node):
    body: tuple[Node, ...]


@dataclass(frozen=True)
class Program(Node):
    aggregates: tuple[AggregateDecl, ...]
    functions: tuple[ParallelDecl, ...]
    main: MainDecl
