"""Directive placement (paper §4.3).

A parallel call requires a communication schedule and a preceding
predictive-protocol phase if, for any Aggregate:

1. the call is *reached by unstructured accesses* (of that aggregate) and
   includes *owner write accesses* to it — the writes will fault to
   invalidate remote copies, which the pre-send phase can anticipate; or
2. the call itself includes unstructured accesses, reached or not.

The placement then runs the paper's coalescing optimization, "an inside-out
pass on the CFG to coalesce neighboring phases that include only home
accesses", which also "moves schedules out of loops that contain only home
accesses" (the center-of-mass loop of Barnes, Figure 4) — amortizing one
pre-send over several parallel calls.

The result is a transformed flow tree in which spans of calls are wrapped in
:class:`~repro.cstar.flow.FlowGroup` nodes, each carrying the
:class:`~repro.core.directives.Directive` whose schedule persists across
dynamic executions of that program point.  Groups never nest.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.directives import Directive
from repro.cstar.dataflow import ReachingUnstructured
from repro.cstar.flow import (
    FlowCall,
    FlowGroup,
    FlowIf,
    FlowLoop,
    FlowNode,
    FlowSeq,
    FlowStmt,
    iter_calls,
)
from repro.util.errors import CompileError


@dataclass
class PhaseGroup:
    """One placed directive and the call sites its schedule covers."""

    directive: Directive
    site_ids: list[int] = field(default_factory=list)
    hoisted: bool = False  # True if the group wraps a whole loop

    def __repr__(self) -> str:
        h = " hoisted" if self.hoisted else ""
        return f"<PhaseGroup {self.directive} sites={self.site_ids}{h}>"


@dataclass
class PlacementResult:
    root: FlowNode
    groups: list[PhaseGroup]
    needs_schedule: dict[int, bool]  # per call site_id
    analysis: ReachingUnstructured

    def group_of(self, site_id: int) -> PhaseGroup | None:
        for g in self.groups:
            if site_id in g.site_ids:
                return g
        return None

    def describe(self) -> str:
        """A human-readable placement report (compiler -v output)."""
        lines = [f"{len(self.groups)} phase group(s) placed:"]
        for g in self.groups:
            calls = {
                c.site_id: c.function for c in iter_calls(self.root)
            }
            names = [calls.get(s, "?") for s in g.site_ids]
            kind = "hoisted loop" if g.hoisted else "phase"
            lines.append(
                f"  {g.directive}: {kind} covering {names}"
            )
        return "\n".join(lines)


def _call_needs(analysis: ReachingUnstructured, call: FlowCall) -> bool:
    s = call.summary
    if s.unstructured():
        return True  # rule 2
    reaching = analysis.reaching_set(call)
    return bool(s.owner_writes() & reaching)  # rule 1


def _is_home_only(node: FlowNode) -> bool:
    return all(c.summary.is_home_only() for c in iter_calls(node))


def _has_calls(node: FlowNode) -> bool:
    return any(True for _ in iter_calls(node))


def place_directives(root: FlowNode, label_prefix: str = "") -> PlacementResult:
    """Analyze ``root`` and return the directive-annotated program."""
    analysis = ReachingUnstructured(root)
    needs: dict[int, bool] = {
        c.site_id: _call_needs(analysis, c) for c in iter_calls(root)
    }
    groups: list[PhaseGroup] = []

    def needs_any(node: FlowNode) -> bool:
        return any(needs[c.site_id] for c in iter_calls(node))

    next_id = iter(range(1, 1 << 30))

    def new_group(members: list[FlowNode], hoisted: bool) -> FlowGroup:
        # Ids are allocated per compilation, not from the process-global
        # counter: compiling the same source twice must yield identical
        # programs (directive ids key schedules only within one machine).
        d = Directive(id=next(next_id), label=label_prefix + "phase")
        g = PhaseGroup(directive=d, hoisted=hoisted)
        for m in members:
            g.site_ids.extend(c.site_id for c in iter_calls(m))
        groups.append(g)
        return FlowGroup(directive_id=d.id, body=FlowSeq(list(members)))

    def transform(node: FlowNode, in_group: bool) -> FlowNode:
        if isinstance(node, (FlowStmt, FlowCall)):
            return node
        if isinstance(node, FlowIf):
            return FlowIf(
                then_body=_seq(transform(node.then_body, in_group)),
                else_body=_seq(transform(node.else_body, in_group)),
                payload=node.payload,
            )
        if isinstance(node, FlowLoop):
            # Hoisting is decided by the parent sequence; reaching here means
            # the loop was not hoisted (or we are already inside a group).
            return FlowLoop(
                body=_seq(transform(node.body, in_group)), payload=node.payload
            )
        if isinstance(node, FlowSeq):
            if in_group:
                return FlowSeq([transform(c, True) for c in node.children])
            return _group_sequence(node)
        if isinstance(node, FlowGroup):
            raise CompileError("directive placement run twice on one tree")
        raise CompileError(f"unknown flow node {node!r}")

    def _seq(node: FlowNode) -> FlowSeq:
        return node if isinstance(node, FlowSeq) else FlowSeq([node])

    def _groupable(child: FlowNode) -> str:
        """Classify a sequence child for run formation.

        * "anchor"  — home-only and requires a schedule (or a hoistable
          home-only loop containing such calls): starts/extends a group;
        * "neutral" — can be absorbed into a surrounding group (sequential
          statements, home-only calls without schedules);
        * "breaker" — ends any open run (unstructured calls, ifs, loops with
          unstructured accesses).
        """
        if isinstance(child, FlowStmt):
            return "neutral"
        if isinstance(child, FlowCall):
            if not child.summary.is_home_only():
                return "breaker"
            return "anchor" if needs[child.site_id] else "neutral"
        if isinstance(child, FlowLoop):
            if _is_home_only(child) and needs_any(child):
                return "anchor"  # hoist the schedule out of the loop
            return "breaker"
        return "breaker"  # FlowIf and anything else

    def _group_sequence(seq: FlowSeq) -> FlowSeq:
        out: list[FlowNode] = []
        i = 0
        children = seq.children
        n = len(children)
        while i < n:
            child = children[i]
            kind = _groupable(child)
            if kind != "anchor":
                if kind == "breaker" and isinstance(child, FlowCall):
                    # unstructured call: its own (single-call) phase group
                    out.append(new_group([child], hoisted=False))
                else:
                    out.append(transform(child, False))
                i += 1
                continue
            # grow a run of [anchor | neutral]* ending at the last anchor
            j = i
            last_anchor = i
            while j < n:
                k = _groupable(children[j])
                if k == "anchor":
                    last_anchor = j
                elif k != "neutral":
                    break
                j += 1
            members = [
                transform(c, True) for c in children[i : last_anchor + 1]
            ]
            hoisted = any(isinstance(c, FlowLoop) for c in children[i : last_anchor + 1])
            out.append(new_group(members, hoisted=hoisted))
            i = last_anchor + 1
        return FlowSeq(out)

    new_root = transform(root, False)
    return PlacementResult(
        root=new_root, groups=groups, needs_schedule=needs, analysis=analysis
    )
