"""Control-flow graph construction from the structured flow tree.

The dataflow pass (paper §4.3) is "an iterative bit-vector based data-flow
computation on the sequential control flow graph"; this module lowers the
structured tree into basic blocks and edges so the fixpoint runs on a real
CFG (including the back edges loops introduce).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cstar.flow import FlowCall, FlowIf, FlowLoop, FlowNode, FlowSeq, FlowStmt
from repro.util.errors import CompileError


@dataclass
class BasicBlock:
    """A CFG node.  ``calls`` holds the parallel call sites executed in it
    (sequential statements are irrelevant to the analysis and dropped)."""

    id: int
    calls: list[FlowCall] = field(default_factory=list)
    succs: list["BasicBlock"] = field(default_factory=list)
    preds: list["BasicBlock"] = field(default_factory=list)
    label: str = ""

    def __repr__(self) -> str:
        lbl = f" {self.label}" if self.label else ""
        return f"<BB{self.id}{lbl} calls={[c.function for c in self.calls]}>"


class CFG:
    """A control-flow graph with distinguished entry and exit blocks."""

    def __init__(self) -> None:
        self.blocks: list[BasicBlock] = []
        self.entry = self.new_block("entry")
        self.exit = self.new_block("exit")

    def new_block(self, label: str = "") -> BasicBlock:
        bb = BasicBlock(id=len(self.blocks), label=label)
        self.blocks.append(bb)
        return bb

    def edge(self, a: BasicBlock, b: BasicBlock) -> None:
        if b not in a.succs:
            a.succs.append(b)
            b.preds.append(a)

    def reverse_postorder(self) -> list[BasicBlock]:
        """Blocks in reverse postorder from entry (fast fixpoint order)."""
        seen: set[int] = set()
        order: list[BasicBlock] = []

        def dfs(bb: BasicBlock) -> None:
            seen.add(bb.id)
            for s in bb.succs:
                if s.id not in seen:
                    dfs(s)
            order.append(bb)

        dfs(self.entry)
        order.reverse()
        return order


def build_cfg(root: FlowNode) -> tuple[CFG, dict[int, BasicBlock]]:
    """Lower a flow tree to a CFG.

    Returns the CFG and a map from call ``site_id`` to its basic block.
    Every parallel call gets its own basic block (the analysis needs
    per-call-site IN sets).
    """
    cfg = CFG()
    call_block: dict[int, BasicBlock] = {}

    def lower(node: FlowNode, current: BasicBlock) -> BasicBlock:
        """Append ``node`` after ``current``; return the block control
        reaches afterwards."""
        if isinstance(node, FlowStmt):
            return current
        if isinstance(node, FlowCall):
            bb = cfg.new_block(node.function)
            bb.calls.append(node)
            cfg.edge(current, bb)
            call_block[node.site_id] = bb
            return bb
        if isinstance(node, FlowSeq):
            for child in node.children:
                current = lower(child, current)
            return current
        if isinstance(node, FlowLoop):
            head = cfg.new_block("loop-head")
            cfg.edge(current, head)
            body_end = lower(node.body, head)
            cfg.edge(body_end, head)  # back edge
            after = cfg.new_block("loop-exit")
            cfg.edge(head, after)  # zero-trip path
            return after
        if isinstance(node, FlowIf):
            then_entry = cfg.new_block("then")
            else_entry = cfg.new_block("else")
            cfg.edge(current, then_entry)
            cfg.edge(current, else_entry)
            then_end = lower(node.then_body, then_entry)
            else_end = lower(node.else_body, else_entry)
            join = cfg.new_block("join")
            cfg.edge(then_end, join)
            cfg.edge(else_end, join)
            return join
        raise CompileError(f"unknown flow node {node!r}")

    last = lower(root, cfg.entry)
    cfg.edge(last, cfg.exit)
    return cfg, call_block
