"""The structured control-flow representation of a C** ``main``.

Both frontends lower ``main`` to a tree of flow nodes; the analysis passes
then (a) derive a conventional basic-block CFG from it for the iterative
dataflow, and (b) walk the tree inside-out for the phase coalescing /
loop-hoisting optimization, which needs loop structure.

Nodes:

* :class:`FlowSeq`   — straight-line sequence of children;
* :class:`FlowLoop`  — a loop whose body executes zero or more times
  (``for``/``while``; trip counts are irrelevant to an any-path analysis);
* :class:`FlowIf`    — two-way branch;
* :class:`FlowCall`  — a parallel function call site, annotated with the
  callee's :class:`~repro.cstar.access.AccessSummary`;
* :class:`FlowStmt`  — sequential statements (opaque to the analysis).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.cstar.access import AccessSummary

_site_ids = itertools.count(1)


def fresh_site_id() -> int:
    return next(_site_ids)


@dataclass
class FlowNode:
    pass


@dataclass
class FlowCall(FlowNode):
    """A parallel call site."""

    function: str
    summary: AccessSummary
    site_id: int = field(default_factory=fresh_site_id)
    #: opaque payload the frontend uses to execute the call (AST node,
    #: python closure, argument list, ...)
    payload: Any = None

    def __repr__(self) -> str:
        return f"<FlowCall #{self.site_id} {self.function}>"


@dataclass
class FlowStmt(FlowNode):
    """Sequential code with no aggregate communication."""

    payload: Any = None

    def __repr__(self) -> str:
        return "<FlowStmt>"


@dataclass
class FlowSeq(FlowNode):
    children: list[FlowNode] = field(default_factory=list)

    def __repr__(self) -> str:
        return f"<FlowSeq {len(self.children)}>"


@dataclass
class FlowLoop(FlowNode):
    body: FlowSeq = field(default_factory=FlowSeq)
    #: opaque loop header payload (init/cond/step for the interpreter)
    payload: Any = None

    def __repr__(self) -> str:
        return f"<FlowLoop {len(self.body.children)}>"


@dataclass
class FlowIf(FlowNode):
    then_body: FlowSeq = field(default_factory=FlowSeq)
    else_body: FlowSeq = field(default_factory=FlowSeq)
    payload: Any = None

    def __repr__(self) -> str:
        return "<FlowIf>"


@dataclass
class FlowGroup(FlowNode):
    """A compiler-directed phase group: ``BEGIN_PHASE(directive)`` is issued
    before the body and ``END_PHASE`` after.  Produced by directive
    placement; never nested."""

    directive_id: int
    body: FlowSeq = field(default_factory=FlowSeq)

    def __repr__(self) -> str:
        return f"<FlowGroup d={self.directive_id} {len(self.body.children)}>"


def iter_calls(node: FlowNode) -> Iterator[FlowCall]:
    """All call sites in tree order."""
    if isinstance(node, FlowCall):
        yield node
    elif isinstance(node, FlowSeq):
        for child in node.children:
            yield from iter_calls(child)
    elif isinstance(node, FlowLoop):
        yield from iter_calls(node.body)
    elif isinstance(node, FlowGroup):
        yield from iter_calls(node.body)
    elif isinstance(node, FlowIf):
        yield from iter_calls(node.then_body)
        yield from iter_calls(node.else_body)


def collect_aggregates(node: FlowNode) -> list[str]:
    """Every aggregate named by any call summary, in first-seen order."""
    seen: dict[str, None] = {}
    for call in iter_calls(node):
        for name in sorted(call.summary.aggregates()):
            seen.setdefault(name)
    return list(seen)
