"""A mini C** compiler and data-parallel runtime (paper §4).

C** is a large-grain data-parallel language based on C++ [Larus, Richards &
Viswanathan 1996].  We implement the subset the paper's analysis operates on:

* **Aggregates** — global data collections distributed across the machine
  (``repro.cstar.runtime``);
* **parallel functions** — one invocation per element of a parallel
  Aggregate argument, with ``#0``/``#1`` position pseudo-variables and
  copy-in (phase-snapshot) semantics;
* a **sequential main** of loops, conditionals, and parallel calls.

Two frontends feed one analysis pipeline:

* the **textual** frontend (``lexer`` → ``parser`` → ``sema`` →
  ``interp``) compiles and runs actual C** source;
* the **embedded** frontend (``embedded``) lets applications written in
  Python declare their parallel functions' access summaries and main
  control flow — the exact information level the paper's compiler
  operates at (its Figure 4).

The pipeline shared by both: per-function access-pattern summaries
(``access``), control-flow graph construction (``cfg``), the
*reaching-unstructured-accesses* bit-vector dataflow (``dataflow``), and
directive placement with phase coalescing and loop hoisting
(``placement``).
"""

from repro.cstar.access import Access, AccessKind, Locality, AccessSummary
from repro.cstar.flow import FlowCall, FlowIf, FlowLoop, FlowSeq, FlowStmt
from repro.cstar.runtime import Aggregate, CStarRuntime, Block1D, RowBlock2D, Tiled2D
from repro.cstar.dataflow import ReachingUnstructured
from repro.cstar.placement import PlacementResult, place_directives
from repro.cstar.compiler import compile_source, CompiledProgram

__all__ = [
    "Access",
    "AccessKind",
    "Locality",
    "AccessSummary",
    "FlowSeq",
    "FlowLoop",
    "FlowIf",
    "FlowCall",
    "FlowStmt",
    "Aggregate",
    "CStarRuntime",
    "Block1D",
    "RowBlock2D",
    "Tiled2D",
    "ReachingUnstructured",
    "PlacementResult",
    "place_directives",
    "compile_source",
    "CompiledProgram",
]
