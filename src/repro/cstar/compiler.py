"""The C** compiler driver: source text -> analyzed, directive-placed program.

Pipeline: lex/parse (:mod:`parser`) -> semantic + access-pattern analysis
(:mod:`sema`, paper §4.2) -> lower ``main`` to a flow tree with call-site
access summaries substituted for actuals (paper §4.3: "mapping parallel
function data access lists back to function call sites") -> reaching
unstructured accesses dataflow + directive placement (:mod:`placement`).

:class:`CompiledProgram` can then run on a simulated machine with
(``optimized=True``) or without (``optimized=False``) the predictive-protocol
directives — the two program versions the paper's figures compare.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.cstar import astnodes as A
from repro.cstar.access import Access, AccessSummary
from repro.cstar.driver import Env, execute
from repro.cstar.embedded import CallSpec, LoopSpec
from repro.cstar.flow import FlowCall, FlowIf, FlowLoop, FlowNode, FlowSeq, FlowStmt
from repro.cstar.interp import BodyInterp, eval_scalar
from repro.cstar.parser import parse
from repro.cstar.placement import PlacementResult, place_directives
from repro.cstar.runtime import CStarRuntime
from repro.cstar.sema import FunctionInfo, ProgramInfo, analyze
from repro.tempest.machine import Machine
from repro.util.errors import CompileError


def _site_summary(info: FunctionInfo, actuals: dict[str, str]) -> AccessSummary:
    """The callee's access summary with formal aggregate names replaced by
    the actual aggregate variables of this call site."""
    out = AccessSummary(info.decl.name)
    for acc in info.summary:
        out.add(Access(actuals[acc.aggregate], acc.kind, acc.locality))
    return out


class CompiledProgram:
    """A compiled C** program, ready to execute on a machine."""

    def __init__(self, info: ProgramInfo):
        self.info = info
        self.flow: FlowSeq = self._lower_main()
        self.placement: PlacementResult = place_directives(self.flow)

    # -- introspection ---------------------------------------------------------

    @property
    def summaries(self) -> dict[str, AccessSummary]:
        return {name: fi.summary for name, fi in self.info.functions.items()}

    def describe(self) -> str:
        lines = [f"compiled program: {len(self.info.functions)} parallel function(s)"]
        for name, fi in sorted(self.info.functions.items()):
            lines.append(f"  {name}: {list(fi.summary)}")
        lines.append(self.placement.describe())
        return "\n".join(lines)

    # -- lowering ------------------------------------------------------------------

    def _lower_main(self) -> FlowSeq:
        return FlowSeq(self._lower_block(self.info.program.main.body))

    def _lower_block(self, stmts) -> list[FlowNode]:
        out: list[FlowNode] = []
        for s in stmts:
            out.extend(self._lower_stmt(s))
        return out

    def _lower_stmt(self, s: A.Node) -> list[FlowNode]:
        if isinstance(s, A.Let) or isinstance(s, A.AssignVar):
            def run_assign(env: Env, s=s) -> None:
                env.state["vars"][s.name] = eval_scalar(s.value, env.state["vars"], env)

            return [FlowStmt(payload=run_assign)]
        if isinstance(s, A.NewAggregate):
            decl = self.info.agg_decls[s.type_name]

            def run_new(env: Env, s=s, decl=decl) -> None:
                dims = [int(eval_scalar(d, env.state["vars"], env)) for d in s.dims]
                env.runtime.aggregate(s.name, dims, dtype=decl.base_type)

            return [FlowStmt(payload=run_new)]
        if isinstance(s, A.If):
            def cond(env: Env, s=s) -> bool:
                return bool(eval_scalar(s.cond, env.state["vars"], env))

            return [
                FlowIf(
                    then_body=FlowSeq(self._lower_block(s.then_body)),
                    else_body=FlowSeq(self._lower_block(s.else_body)),
                    payload=cond,
                )
            ]
        if isinstance(s, A.For):
            def run_init(env: Env, s=s) -> None:
                env.state["vars"][s.init.name] = eval_scalar(
                    s.init.value, env.state["vars"], env
                )

            def loop_cond(env: Env, s=s) -> bool:
                return bool(eval_scalar(s.cond, env.state["vars"], env))

            def run_step(env: Env, s=s) -> None:
                env.state["vars"][s.step.name] = eval_scalar(
                    s.step.value, env.state["vars"], env
                )

            body = self._lower_block(s.body)
            body.append(FlowStmt(payload=run_step))
            return [
                FlowStmt(payload=run_init),
                FlowLoop(body=FlowSeq(body), payload=LoopSpec(cond=loop_cond)),
            ]
        if isinstance(s, A.While):
            def while_cond(env: Env, s=s) -> bool:
                return bool(eval_scalar(s.cond, env.state["vars"], env))

            return [
                FlowLoop(
                    body=FlowSeq(self._lower_block(s.body)),
                    payload=LoopSpec(cond=while_cond),
                )
            ]
        if isinstance(s, A.ParCallStmt):
            return [self._lower_call(s)]
        raise CompileError(f"cannot lower statement {s!r}")

    def _lower_call(self, s: A.ParCallStmt) -> FlowCall:
        info = self.info.functions[s.func]
        params = info.decl.params
        # formal aggregate name -> actual aggregate variable name
        actuals: dict[str, str] = {}
        scalar_args: list[tuple[str, A.Node]] = []
        for arg, p in zip(s.args, params):
            if p.name in info.agg_params:
                assert isinstance(arg, A.Name)  # checked in sema
                actuals[p.name] = arg.ident
            else:
                scalar_args.append((p.name, arg))

        over_name = actuals[info.parallel_param]
        snapshot = tuple(sorted(set(actuals.values())))

        def body(ctx, env: Env, info=info, actuals=actuals, scalar_args=scalar_args):
            # scalars are loop-invariant within one phase: evaluate once per
            # phase, not once per element (memoized on the phase counter)
            memo = env.state.setdefault("_call_scalars", {})
            key = (id(info), env.runtime.phase_count)
            scalars = memo.get(key)
            if scalars is None:
                memo.clear()
                scalars = {
                    name: eval_scalar(expr, env.state["vars"])
                    for name, expr in scalar_args
                }
                memo[key] = scalars
            aggs = {formal: env.agg(actual) for formal, actual in actuals.items()}
            BodyInterp(ctx, scalars, aggs).exec_block(info.decl.body)

        spec = CallSpec(
            function=s.func, over=over_name, snapshot=snapshot, body=body
        )
        return FlowCall(
            function=s.func,
            summary=_site_summary(info, actuals),
            payload=spec,
        )

    # -- execution ----------------------------------------------------------------------

    def run(
        self,
        machine: Machine,
        optimized: bool = True,
        params: dict[str, Any] | None = None,
    ) -> Env:
        runtime = CStarRuntime(machine)
        env = Env(runtime=runtime, params=dict(params or {}))
        env.state["vars"] = {}
        root = self.placement.root if optimized else self.flow
        execute(root, env)
        return env


def compile_source(source: str) -> CompiledProgram:
    """Compile C** source text."""
    return CompiledProgram(analyze(parse(source)))
