"""Access-pattern summaries for parallel functions (paper §4.2).

"For each parallel function, the C** compiler uses context-insensitive
analysis to compile a list of all Aggregate member accesses that potentially
require communication.  Each access is (conservatively) categorized as a
Home access (for example, access to the 'own' element), or a Non-Home access
(for all other accesses)."

The summary carries no index arithmetic — only (aggregate, read/write,
home/non-home) triples.  That deliberate imprecision is the paper's point:
the compiler never needs to know the actual communication pattern.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator


class AccessKind(enum.Enum):
    READ = "read"
    WRITE = "write"


class Locality(enum.Enum):
    #: the invocation's "own" element (plus anything provably local)
    HOME = "home"
    #: any other element: neighbors, indirection, pointers — all conservatively
    #: "unstructured" for the analysis
    NON_HOME = "non-home"


@dataclass(frozen=True)
class Access:
    """One summarized aggregate access of a parallel function."""

    aggregate: str
    kind: AccessKind
    locality: Locality

    def __repr__(self) -> str:
        return f"({self.aggregate}: {self.kind.value.capitalize()} access, {'Home' if self.locality is Locality.HOME else 'Non-Home'})"

    def to_dict(self) -> dict:
        """JSON-safe form (the model/export schema for compiler summaries)."""
        return {
            "aggregate": self.aggregate,
            "kind": self.kind.value,
            "locality": self.locality.value,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Access":
        return cls(d["aggregate"], AccessKind(d["kind"]), Locality(d["locality"]))


class AccessSummary:
    """The deduplicated access list of one parallel function."""

    def __init__(self, function: str, accesses: Iterable[Access] = ()):
        self.function = function
        self._accesses: set[Access] = set(accesses)

    def add(self, access: Access) -> None:
        self._accesses.add(access)

    def __iter__(self) -> Iterator[Access]:
        return iter(sorted(self._accesses, key=lambda a: (a.aggregate, a.kind.value, a.locality.value)))

    def __len__(self) -> int:
        return len(self._accesses)

    def __contains__(self, access: Access) -> bool:
        return access in self._accesses

    # -- queries used by dataflow and placement ------------------------------------

    def aggregates(self) -> set[str]:
        return {a.aggregate for a in self._accesses}

    def owner_writes(self) -> set[str]:
        """Aggregates written at Home ("owner write accesses")."""
        return {
            a.aggregate
            for a in self._accesses
            if a.kind is AccessKind.WRITE and a.locality is Locality.HOME
        }

    def unstructured_writes(self) -> set[str]:
        return {
            a.aggregate
            for a in self._accesses
            if a.kind is AccessKind.WRITE and a.locality is Locality.NON_HOME
        }

    def unstructured_reads(self) -> set[str]:
        return {
            a.aggregate
            for a in self._accesses
            if a.kind is AccessKind.READ and a.locality is Locality.NON_HOME
        }

    def unstructured(self) -> set[str]:
        return self.unstructured_reads() | self.unstructured_writes()

    def is_home_only(self) -> bool:
        """True if every summarized access is a Home access."""
        return not self.unstructured()

    # -- stable export (consumed by repro.model and external tooling) --------------

    def to_dict(self) -> dict:
        """Canonical JSON-safe form; iteration order is the sorted one."""
        return {
            "function": self.function,
            "accesses": [a.to_dict() for a in self],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "AccessSummary":
        return cls(d["function"], (Access.from_dict(a) for a in d["accesses"]))

    def __repr__(self) -> str:
        return f"<AccessSummary {self.function}: {sorted(map(repr, self._accesses))}>"
