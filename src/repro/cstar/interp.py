"""Interpreter for the C** mini-language.

Two evaluation contexts:

* **main** — sequential scalar code; variables live in a flat scope dict.
* **parallel function bodies** — run once per aggregate element under an
  :class:`~repro.cstar.runtime.ElementContext`; aggregate accesses go
  through ``ctx.read``/``ctx.write`` (which records the communication
  trace) and every operator evaluation charges one cycle of modelled
  compute, so invocation cost tracks expression complexity.
"""

from __future__ import annotations

import math
from typing import Any

from repro.cstar import astnodes as A
from repro.cstar.runtime import Aggregate, ElementContext
from repro.util.errors import CompileError, SimulationError

_MAX_LOOP = 10_000_000  # runaway-loop guard for interpreted whiles

_INTRINSIC_IMPL = {
    "sqrt": math.sqrt,
    "abs": abs,
    "min": min,
    "max": max,
    "floor": math.floor,
    "pow": pow,
    "exp": math.exp,
}


def _binop(op: str, left, right):
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if isinstance(left, int) and isinstance(right, int):
            return left // right if right != 0 else _div_zero()
        return left / right if right != 0 else _div_zero()
    if op == "%":
        return left % right if right != 0 else _div_zero()
    if op == "==":
        return 1 if left == right else 0
    if op == "!=":
        return 1 if left != right else 0
    if op == "<":
        return 1 if left < right else 0
    if op == "<=":
        return 1 if left <= right else 0
    if op == ">":
        return 1 if left > right else 0
    if op == ">=":
        return 1 if left >= right else 0
    raise CompileError(f"unknown operator {op!r}")


def _div_zero():
    raise SimulationError("division by zero in C** program")


# --------------------------------------------------------------------------- #
# sequential (main) evaluation
# --------------------------------------------------------------------------- #


#: reduction operator -> numpy-style combiner over the aggregate's data
_REDUCE_IMPL = {
    "reduce_add": lambda data: float(data.sum()),
    "reduce_min": lambda data: float(data.min()),
    "reduce_max": lambda data: float(data.max()),
}


def run_reduction(func: str, agg_name: str, env) -> float:
    """Execute a data-parallel reduction (main-level language support).

    Each owner reads its own elements in a home-only parallel phase (one
    cycle of combining work per element); the cross-node combine rides the
    phase barrier — the CM-5's control network performs global reductions
    in hardware, which is why data-parallel languages offer them natively
    rather than through the coherence protocol.
    """
    agg = env.runtime.aggregates[agg_name]

    def body(ctx):
        ctx.charge(1)
        ctx.read(agg, ctx.pos)

    env.runtime.par_call(body, over=agg, name=f"{func}({agg_name})")
    return _REDUCE_IMPL[func](agg.data)


def eval_scalar(e: A.Node, vars: dict[str, Any], env=None):
    """Evaluate a main-context scalar expression.

    ``env`` (the execution environment) is required only when the
    expression contains a reduction, which runs a parallel phase.
    """
    if isinstance(e, A.Num):
        return e.value
    if isinstance(e, A.Name):
        return vars[e.ident]
    if isinstance(e, A.UnOp):
        v = eval_scalar(e.operand, vars, env)
        return -v if e.op == "-" else (0 if v else 1)
    if isinstance(e, A.BinOp):
        if e.op == "&&":
            return 1 if (eval_scalar(e.left, vars, env)
                         and eval_scalar(e.right, vars, env)) else 0
        if e.op == "||":
            return 1 if (eval_scalar(e.left, vars, env)
                         or eval_scalar(e.right, vars, env)) else 0
        return _binop(e.op, eval_scalar(e.left, vars, env),
                      eval_scalar(e.right, vars, env))
    if isinstance(e, A.Intrinsic):
        if e.func in _REDUCE_IMPL:
            if env is None:
                raise CompileError(
                    f"{e.func} needs a runtime environment to execute"
                )
            return run_reduction(e.func, e.args[0].ident, env)
        fn = _INTRINSIC_IMPL[e.func]
        return fn(*(eval_scalar(a, vars, env) for a in e.args))
    raise CompileError(f"cannot evaluate {e!r} in main")


# --------------------------------------------------------------------------- #
# parallel-body evaluation
# --------------------------------------------------------------------------- #


class BodyInterp:
    """Evaluates one parallel-function invocation for one element."""

    __slots__ = ("ctx", "scope", "aggs")

    def __init__(
        self,
        ctx: ElementContext,
        scalars: dict[str, Any],
        aggs: dict[str, Aggregate],
    ):
        self.ctx = ctx
        self.scope = dict(scalars)
        self.aggs = aggs

    # -- expressions --------------------------------------------------------------

    def eval(self, e: A.Node):
        if isinstance(e, A.Num):
            return e.value
        if isinstance(e, A.Pos):
            return self.ctx.pos[e.dim]
        if isinstance(e, A.Name):
            return self.scope[e.ident]
        if isinstance(e, A.Index):
            agg = self.aggs[e.aggregate]
            idx = tuple(int(self.eval(i)) for i in e.indices)
            self.ctx.charge(1)
            return agg_value(self.ctx.read(agg, idx), agg)
        if isinstance(e, A.BinOp):
            self.ctx.charge(1)
            if e.op == "&&":
                return 1 if (self.eval(e.left) and self.eval(e.right)) else 0
            if e.op == "||":
                return 1 if (self.eval(e.left) or self.eval(e.right)) else 0
            return _binop(e.op, self.eval(e.left), self.eval(e.right))
        if isinstance(e, A.UnOp):
            self.ctx.charge(1)
            v = self.eval(e.operand)
            return -v if e.op == "-" else (0 if v else 1)
        if isinstance(e, A.Intrinsic):
            self.ctx.charge(2)
            fn = _INTRINSIC_IMPL[e.func]
            return fn(*(self.eval(a) for a in e.args))
        raise CompileError(f"cannot evaluate {e!r} in a parallel function")

    # -- statements ----------------------------------------------------------------

    def exec_block(self, stmts) -> None:
        for s in stmts:
            self.exec(s)

    def exec(self, s: A.Node) -> None:
        if isinstance(s, A.Let) or isinstance(s, A.AssignVar):
            self.scope[s.name] = self.eval(s.value)
            return
        if isinstance(s, A.AssignElem):
            agg = self.aggs[s.target.aggregate]
            idx = tuple(int(self.eval(i)) for i in s.target.indices)
            value = self.eval(s.value)
            self.ctx.write(agg, idx, value)
            return
        if isinstance(s, A.If):
            self.ctx.charge(1)
            if self.eval(s.cond):
                self.exec_block(s.then_body)
            else:
                self.exec_block(s.else_body)
            return
        if isinstance(s, A.For):
            self.scope[s.init.name] = self.eval(s.init.value)
            count = 0
            while self.eval(s.cond):
                self.exec_block(s.body)
                self.scope[s.step.name] = self.eval(s.step.value)
                count += 1
                if count > _MAX_LOOP:
                    raise SimulationError("parallel-function for-loop exceeded limit")
            return
        if isinstance(s, A.While):
            count = 0
            while self.eval(s.cond):
                self.exec_block(s.body)
                count += 1
                if count > _MAX_LOOP:
                    raise SimulationError("parallel-function while-loop exceeded limit")
            return
        raise CompileError(f"cannot execute {s!r} in a parallel function")


def agg_value(raw, agg: Aggregate):
    """Convert a numpy scalar read from an aggregate to a Python number."""
    return int(raw) if agg.dtype == "int" else float(raw)
