"""The C** data-parallel runtime on the simulated DSM machine.

Aggregates (paper §4.1) are global collections that look like arrays of
values.  The runtime:

* allocates each aggregate in the machine's shared address space, with page
  homes aligned to the computation distribution (so an invocation's "own"
  element is home-local — the property the compiler's Home/Non-Home
  classification relies on);
* executes parallel calls with the two-pass model of DESIGN.md: the *value
  pass* runs one invocation per element under copy-in (phase-snapshot)
  semantics while recording each invocation's shared accesses; the recorded
  per-processor traces are then replayed on the machine for timing;
* issues the compiler-placed directives (``begin_group`` / ``end_group`` /
  ``flush``) around phase groups.

Invocation bodies receive an :class:`ElementContext` and use ``ctx.read`` /
``ctx.write`` for aggregate elements and ``ctx.charge`` for compute cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.tempest.machine import Machine, PhaseTrace
from repro.tempest.tags import AccessTag
from repro.util.errors import ConfigError, SimulationError

# --------------------------------------------------------------------------- #
# computation distributions (paper §4.1: block, row-block, tiled)
# --------------------------------------------------------------------------- #


class Distribution:
    """Maps an element index to the processor that owns it."""

    def owner(self, idx: tuple[int, ...]) -> int:
        raise NotImplementedError

    def validate(self, shape: tuple[int, ...]) -> None:
        raise NotImplementedError


@dataclass(frozen=True)
class Block1D(Distribution):
    """Contiguous chunks of a 1-D aggregate."""

    n: int  # elements
    nodes: int

    def owner(self, idx: tuple[int, ...]) -> int:
        per = -(-self.n // self.nodes)
        return min(idx[0] // per, self.nodes - 1)

    def validate(self, shape: tuple[int, ...]) -> None:
        if len(shape) != 1 or shape[0] != self.n:
            raise ConfigError(f"Block1D({self.n}) does not match shape {shape}")


@dataclass(frozen=True)
class RowBlock2D(Distribution):
    """Contiguous row bands of a 2-D aggregate."""

    rows: int
    cols: int
    nodes: int

    def owner(self, idx: tuple[int, ...]) -> int:
        per = -(-self.rows // self.nodes)
        return min(idx[0] // per, self.nodes - 1)

    def validate(self, shape: tuple[int, ...]) -> None:
        if tuple(shape) != (self.rows, self.cols):
            raise ConfigError(f"RowBlock2D does not match shape {shape}")


@dataclass(frozen=True)
class Tiled2D(Distribution):
    """2-D tiles; the node grid is as square as the node count allows."""

    rows: int
    cols: int
    nodes: int

    def _grid(self) -> tuple[int, int]:
        r = int(np.sqrt(self.nodes))
        while self.nodes % r:
            r -= 1
        return r, self.nodes // r

    def owner(self, idx: tuple[int, ...]) -> int:
        gr, gc = self._grid()
        tr = min(idx[0] * gr // max(self.rows, 1), gr - 1)
        tc = min(idx[1] * gc // max(self.cols, 1), gc - 1)
        return tr * gc + tc

    def validate(self, shape: tuple[int, ...]) -> None:
        if tuple(shape) != (self.rows, self.cols):
            raise ConfigError(f"Tiled2D does not match shape {shape}")


# --------------------------------------------------------------------------- #
# aggregates
# --------------------------------------------------------------------------- #

_DTYPES = {"float": np.float64, "int": np.int64}
ELEMENT_SIZE = 8  # bytes, both element types


class Aggregate:
    """One C** aggregate: data + layout + distribution."""

    def __init__(
        self,
        runtime: "CStarRuntime",
        name: str,
        shape: tuple[int, ...],
        dtype: str,
        dist: Distribution,
        home: str = "owner",
        pad: int = 1,
    ):
        if dtype not in _DTYPES:
            raise ConfigError(f"aggregate dtype must be float or int, got {dtype!r}")
        if pad < 1:
            raise ConfigError(f"pad must be >= 1, got {pad}")
        if home not in ("owner", "round_robin"):
            raise ConfigError(f"home policy must be 'owner' or 'round_robin', got {home!r}")
        self.runtime = runtime
        self.name = name
        self.shape = tuple(shape)
        self.dtype = dtype
        self.dist = dist
        dist.validate(self.shape)
        self.data = np.zeros(self.shape, dtype=_DTYPES[dtype])
        #: bytes per element; C** aggregate elements are class instances, so
        #: an element may occupy more than one 8-byte value (pad models the
        #: object's other members)
        self.stride_bytes = ELEMENT_SIZE * pad
        nbytes = int(np.prod(self.shape)) * self.stride_bytes
        machine = runtime.machine
        page = machine.config.page_size

        if home == "owner":
            # Home pages where their first element's owner lives: aligns home
            # placement with the computation distribution.
            def home_policy(page_idx: int, _self=self) -> int:
                flat = page_idx * (page // _self.stride_bytes)
                flat = min(flat, int(np.prod(_self.shape)) - 1)
                return _self.dist.owner(_self._unflatten(flat))

        else:
            # Stache's default policy (round-robin pages): what a program
            # "optimized for transparent shared memory" gets, with no
            # owner-alignment (the Splash baseline in Figure 7).
            def home_policy(page_idx: int, _n=machine.config.n_nodes) -> int:
                return page_idx % _n

        self.region = machine.addr_space.allocate(name, nbytes, home_policy)
        # The home node of each block starts with the (writable) data.
        first = machine.addr_space.block_of(self.region.base)
        nblocks = self.region.size // machine.config.block_size
        for b in range(first, first + nblocks):
            machine.nodes[machine.home(b)].tags.set(b, AccessTag.READ_WRITE)
        # hot-path precomputation: row-major strides and block arithmetic.
        # An element (8 B) never straddles blocks: block_size >= 32 and the
        # page-aligned region base is block-aligned.
        strides = []
        acc = 1
        for dim in reversed(self.shape):
            strides.append(acc)
            acc *= dim
        self._strides = tuple(reversed(strides))
        self._nelems = acc
        self._block_shift = machine.config.block_size.bit_length() - 1
        self._base = self.region.base

    # -- layout ----------------------------------------------------------------

    def _unflatten(self, flat: int) -> tuple[int, ...]:
        return tuple(int(v) for v in np.unravel_index(flat, self.shape))

    def flatten(self, idx: tuple[int, ...]) -> int:
        if len(idx) != len(self.shape):
            raise SimulationError(
                f"{self.name}: {len(self.shape)}-D aggregate indexed with {idx}"
            )
        flat = 0
        for v, dim, stride in zip(idx, self.shape, self._strides):
            if not 0 <= v < dim:
                raise SimulationError(
                    f"{self.name}: index {idx} out of bounds {self.shape}"
                )
            flat += v * stride
        return flat

    def element_block(self, idx: tuple[int, ...]) -> int:
        """The cache block holding element ``idx`` (hot path).

        With pad > 1 an element may span blocks; the trace records the block
        of its first byte, which is the faulting access in practice."""
        return (self._base + self.flatten(idx) * self.stride_bytes) >> self._block_shift

    def addr(self, idx: tuple[int, ...]) -> int:
        return self.region.base + self.flatten(idx) * self.stride_bytes

    def blocks(self, idx: tuple[int, ...]) -> range:
        return self.runtime.machine.addr_space.blocks_of_range(
            self.addr(idx), self.stride_bytes
        )

    def owner(self, idx: tuple[int, ...]) -> int:
        return self.dist.owner(idx)

    def elements(self):
        """All element indices, row-major."""
        return np.ndindex(*self.shape)

    def __repr__(self) -> str:
        return f"<Aggregate {self.name}{list(self.shape)} {self.dtype}>"


# --------------------------------------------------------------------------- #
# element context (what a parallel-function invocation sees)
# --------------------------------------------------------------------------- #


class ElementContext:
    """Per-invocation view: position pseudo-variables, reads/writes, cost.

    Reads observe the phase-entry snapshot (C**'s copy-in semantics make
    parallel execution nearly deterministic); writes are buffered and applied
    at phase end.
    """

    __slots__ = ("runtime", "pos", "node", "_ops", "_pending")

    def __init__(self, runtime: "CStarRuntime", pos: tuple[int, ...], node: int, ops: list):
        self.runtime = runtime
        self.pos = pos
        self.node = node
        self._ops = ops
        self._pending = 0.0

    def charge(self, cycles: float) -> None:
        """Model computation cost (cycles at full speed)."""
        if cycles > 0:
            self._pending += cycles

    def _flush_compute(self) -> None:
        if self._pending > 0:
            self._ops.append(("c", self._pending))
            self._pending = 0.0

    def read(self, agg: Aggregate, idx: tuple[int, ...]) -> float:
        if self._pending > 0:
            self._ops.append(("c", self._pending))
            self._pending = 0.0
        self._ops.append(("r", agg.element_block(idx)))
        snap = self.runtime._snapshot.get(agg.name)
        arr = snap if snap is not None else agg.data
        return arr[idx]

    def write(self, agg: Aggregate, idx: tuple[int, ...], value) -> None:
        if self._pending > 0:
            self._ops.append(("c", self._pending))
            self._pending = 0.0
        self._ops.append(("w", agg.element_block(idx)))
        self.runtime._writes.append((agg, tuple(int(i) for i in idx), value, False))

    def update(self, agg: Aggregate, idx: tuple[int, ...], delta) -> None:
        """Read-modify-write accumulation (e.g. `force[j] += f`).

        Used by shared-memory codes that accumulate into other elements'
        state (SPLASH-style paired force updates); deltas commute, so the
        value pass applies them associatively while the trace records the
        read+write the protocol must serialize.
        """
        if self._pending > 0:
            self._ops.append(("c", self._pending))
            self._pending = 0.0
        block = agg.element_block(idx)
        self._ops.append(("r", block))
        self._ops.append(("w", block))
        self.runtime._writes.append((agg, tuple(int(i) for i in idx), delta, True))


# --------------------------------------------------------------------------- #
# the runtime
# --------------------------------------------------------------------------- #

#: Invocation body: body(ctx) — position available as ctx.pos.
Body = Callable[[ElementContext], None]


class CStarRuntime:
    """Executes data-parallel programs on a simulated machine."""

    #: per-invocation context class; ``repro.model`` substitutes a recording
    #: subclass to capture aggregate-level access streams without a machine
    context_factory = ElementContext

    def __init__(self, machine: Machine):
        self.machine = machine
        self.aggregates: dict[str, Aggregate] = {}
        self._snapshot: dict[str, np.ndarray] = {}
        self._writes: list[tuple[Aggregate, tuple[int, ...], object]] = []
        self.phase_count = 0

    # -- aggregate management --------------------------------------------------

    def aggregate(
        self,
        name: str,
        shape: Sequence[int],
        dtype: str = "float",
        dist: Distribution | None = None,
        home: str = "owner",
        pad: int = 1,
    ) -> Aggregate:
        shape = tuple(int(s) for s in shape)
        if dist is None:
            n = self.machine.config.n_nodes
            if len(shape) == 1:
                dist = Block1D(shape[0], n)
            elif len(shape) == 2:
                dist = RowBlock2D(shape[0], shape[1], n)
            else:
                raise ConfigError(
                    f"no default distribution for {len(shape)}-D aggregate {name!r}"
                )
        agg = Aggregate(self, name, shape, dtype, dist, home=home, pad=pad)
        self.aggregates[name] = agg
        return agg

    # -- directives --------------------------------------------------------------

    def begin_group(self, directive_id: int) -> None:
        self.machine.begin_group(directive_id)

    def end_group(self) -> None:
        self.machine.end_group()

    def flush_schedule(self, directive_id: int) -> None:
        flush = getattr(self.machine.protocol, "flush_schedule", None)
        if flush is not None:
            flush(directive_id)

    # -- parallel invocation ---------------------------------------------------------

    def par_call(
        self,
        body: Body,
        over: Aggregate,
        snapshot_of: Sequence[Aggregate] = (),
        name: str = "parallel",
        elements=None,
    ) -> PhaseTrace:
        """Invoke ``body`` once per element of ``over`` (value pass), then
        replay the recorded traces on the machine (timing pass).

        ``snapshot_of`` lists the aggregates whose phase-entry values reads
        must observe; ``over`` is always included.  ``elements`` restricts
        the invocation set (used by applications with active-element lists,
        e.g. red-black sweeps).
        """
        n_nodes = self.machine.config.n_nodes
        ops: list[list] = [[] for _ in range(n_nodes)]

        snapshots = {over.name: over.data.copy()}
        for agg in snapshot_of:
            snapshots.setdefault(agg.name, agg.data.copy())
        self._snapshot = snapshots
        self._writes = []

        element_iter = elements if elements is not None else over.elements()
        for idx in element_iter:
            idx = tuple(int(i) for i in idx)
            node = over.owner(idx)
            ctx = self.context_factory(self, idx, node, ops[node])
            body(ctx)
            ctx._flush_compute()

        # apply buffered writes (phase-end visibility)
        for agg, idx, value, accumulate in self._writes:
            if accumulate:
                agg.data[idx] += value
            else:
                agg.data[idx] = value
        self._snapshot = {}
        self._writes = []

        self.phase_count += 1
        trace = PhaseTrace(f"{name}#{self.phase_count}", ops)
        self.machine.run_phase(trace)
        return trace

    # -- finishing -----------------------------------------------------------------

    def finish(self):
        return self.machine.finish()
