"""Lexer for the C** mini-language.

Token kinds: keywords, identifiers, integer/float literals, position
pseudo-variables (``#0``, ``#1``, ...), operators, and punctuation.
C/C++-style comments (``//`` and ``/* */``) are skipped.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import CompileError

KEYWORDS = {
    "aggregate",
    "parallel",
    "main",
    "let",
    "if",
    "else",
    "for",
    "while",
    "float",
    "int",
    "return",
}

#: multi-character operators first (maximal munch)
OPERATORS = [
    "==", "!=", "<=", ">=", "&&", "||",
    "+", "-", "*", "/", "%", "<", ">", "=", "!",
]

PUNCT = ["(", ")", "{", "}", "[", "]", ",", ";"]


@dataclass(frozen=True)
class Token:
    kind: str  # "name", "number", "pos", "kw", "op", "punct", "eof"
    text: str
    line: int
    col: int
    value: float | int | None = None

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r} @{self.line}:{self.col})"


def tokenize(source: str) -> list[Token]:
    """Lex ``source`` into tokens; raises :class:`CompileError` on bad input."""
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def error(msg: str) -> CompileError:
        return CompileError(msg, line=line, col=col)

    while i < n:
        ch = source[i]
        # whitespace
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        # comments
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise error("unterminated block comment")
            skipped = source[i : end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                col = len(skipped) - skipped.rfind("\n")
            else:
                col += len(skipped)
            i = end + 2
            continue
        # position pseudo-variable
        if ch == "#":
            j = i + 1
            if j >= n or not source[j].isdigit():
                raise error("'#' must be followed by a dimension number")
            k = j
            while k < n and source[k].isdigit():
                k += 1
            text = source[i:k]
            tokens.append(Token("pos", text, line, col, value=int(source[j:k])))
            col += k - i
            i = k
            continue
        # numbers
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            k = i
            is_float = False
            while k < n and (source[k].isdigit() or source[k] == "."):
                if source[k] == ".":
                    if is_float:
                        raise error("malformed number")
                    is_float = True
                k += 1
            # exponent
            if k < n and source[k] in "eE":
                k2 = k + 1
                if k2 < n and source[k2] in "+-":
                    k2 += 1
                if k2 >= n or not source[k2].isdigit():
                    raise error("malformed exponent")
                while k2 < n and source[k2].isdigit():
                    k2 += 1
                k = k2
                is_float = True
            text = source[i:k]
            value = float(text) if is_float else int(text)
            tokens.append(Token("number", text, line, col, value=value))
            col += k - i
            i = k
            continue
        # names / keywords
        if ch.isalpha() or ch == "_":
            k = i
            while k < n and (source[k].isalnum() or source[k] == "_"):
                k += 1
            text = source[i:k]
            kind = "kw" if text in KEYWORDS else "name"
            tokens.append(Token(kind, text, line, col))
            col += k - i
            i = k
            continue
        # operators (maximal munch)
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line, col))
                col += len(op)
                i += len(op)
                break
        else:
            if ch in PUNCT:
                tokens.append(Token("punct", ch, line, col))
                i += 1
                col += 1
            else:
                raise error(f"unexpected character {ch!r}")
    tokens.append(Token("eof", "", line, col))
    return tokens
