"""Pretty-printer for C** ASTs.

Produces parseable source text: ``parse(pprint(ast)) == ast`` (the
round-trip property the fuzz tests verify).  Used by the CLI's
``compile --dump-ast`` and handy when generating programs.
"""

from __future__ import annotations

from repro.cstar import astnodes as A
from repro.util.errors import CompileError

_INDENT = "  "

#: operators that need no parens around equal-precedence right operands
_PRECEDENCE = {
    "||": 1, "&&": 2,
    "==": 3, "!=": 3,
    "<": 4, "<=": 4, ">": 4, ">=": 4,
    "+": 5, "-": 5,
    "*": 6, "/": 6, "%": 6,
}


def pprint_expr(e: A.Node, parent_prec: int = 0) -> str:
    if isinstance(e, A.Num):
        if isinstance(e.value, float) and e.value == int(e.value):
            return f"{e.value:.1f}"
        return repr(e.value)
    if isinstance(e, A.Name):
        return e.ident
    if isinstance(e, A.Pos):
        return f"#{e.dim}"
    if isinstance(e, A.Index):
        return e.aggregate + "".join(f"[{pprint_expr(i)}]" for i in e.indices)
    if isinstance(e, A.Intrinsic):
        args = ", ".join(pprint_expr(a) for a in e.args)
        return f"{e.func}({args})"
    if isinstance(e, A.UnOp):
        inner = pprint_expr(e.operand, 7)
        return f"{e.op}{inner}"
    if isinstance(e, A.BinOp):
        prec = _PRECEDENCE[e.op]
        left = pprint_expr(e.left, prec)
        # right operand of a left-associative operator needs parens at
        # equal precedence
        right = pprint_expr(e.right, prec + 1)
        text = f"{left} {e.op} {right}"
        if prec < parent_prec:
            return f"({text})"
        return text
    raise CompileError(f"cannot pretty-print expression {e!r}")


def _pprint_block(stmts, depth: int) -> str:
    pad = _INDENT * depth
    if not stmts:
        return pad + "{\n" + pad + "}"
    inner = "\n".join(pprint_stmt(s, depth + 1) for s in stmts)
    return pad + "{\n" + inner + "\n" + pad + "}"


def pprint_stmt(s: A.Node, depth: int = 0) -> str:
    pad = _INDENT * depth
    if isinstance(s, A.Let):
        return f"{pad}let {s.name} = {pprint_expr(s.value)};"
    if isinstance(s, A.AssignVar):
        return f"{pad}{s.name} = {pprint_expr(s.value)};"
    if isinstance(s, A.AssignElem):
        return f"{pad}{pprint_expr(s.target)} = {pprint_expr(s.value)};"
    if isinstance(s, A.NewAggregate):
        dims = ", ".join(pprint_expr(d) for d in s.dims)
        return f"{pad}{s.type_name} {s.name}({dims});"
    if isinstance(s, A.ParCallStmt):
        args = ", ".join(pprint_expr(a) for a in s.args)
        return f"{pad}{s.func}({args});"
    if isinstance(s, A.If):
        out = f"{pad}if ({pprint_expr(s.cond)})\n" + _pprint_block(s.then_body, depth)
        if s.else_body:
            out += f"\n{pad}else\n" + _pprint_block(s.else_body, depth)
        return out
    if isinstance(s, A.For):
        hdr = (f"{pad}for ({s.init.name} = {pprint_expr(s.init.value)}; "
               f"{pprint_expr(s.cond)}; "
               f"{s.step.name} = {pprint_expr(s.step.value)})")
        return hdr + "\n" + _pprint_block(s.body, depth)
    if isinstance(s, A.While):
        return (f"{pad}while ({pprint_expr(s.cond)})\n"
                + _pprint_block(s.body, depth))
    raise CompileError(f"cannot pretty-print statement {s!r}")


def pprint_program(p: A.Program) -> str:
    parts: list[str] = []
    for agg in p.aggregates:
        dims = "[]" * agg.rank
        parts.append(f"aggregate {agg.name}({agg.base_type}){dims};")
    for fn in p.functions:
        params = ", ".join(
            f"{prm.type_name} {prm.name}" + (" parallel" if prm.is_parallel else "")
            for prm in fn.params
        )
        parts.append(f"parallel {fn.name}({params})\n" + _pprint_block(fn.body, 0))
    parts.append("main()\n" + _pprint_block(p.main.body, 0))
    return "\n\n".join(parts) + "\n"
