"""Recursive-descent parser for the C** mini-language.

Grammar (EBNF; see tests/cstar/test_parser.py for examples)::

    program   := (aggdecl | pardecl | maindecl)*
    aggdecl   := "aggregate" NAME "(" ("float"|"int") ")" ("[" "]")+ ";"
    pardecl   := "parallel" NAME "(" param ("," param)* ")" block
    param     := TYPE NAME ["parallel"]
    maindecl  := "main" "(" ")" block
    block     := "{" stmt* "}"
    stmt      := "let" NAME "=" expr ";"
               | TYPE NAME "(" expr ("," expr)* ")" ";"
               | NAME ("[" expr "]")* "=" expr ";"
               | "if" "(" expr ")" block ["else" block]
               | "for" "(" NAME "=" expr ";" expr ";" NAME "=" expr ")" block
               | "while" "(" expr ")" block
               | NAME "(" [expr ("," expr)*] ")" ";"
    expr      := precedence climbing over || && == != < <= > >= + - * / % unary- !
    primary   := NUMBER | "#"K | NAME | NAME ("[" expr "]")+
               | INTRINSIC "(" args ")" | "(" expr ")"
"""

from __future__ import annotations

from repro.cstar import astnodes as A
from repro.cstar.lexer import Token, tokenize
from repro.util.errors import CompileError

INTRINSICS = {"sqrt", "abs", "min", "max", "floor", "pow", "exp"}

#: data-parallel reductions, valid only in main (the language-level support
#: the paper contrasts with the predictive protocol: "reductions, for which
#: high-level language support is available in data-parallel languages")
REDUCE_OPS = {"reduce_add", "reduce_min", "reduce_max"}

#: binary operator precedence (higher binds tighter)
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3, "!=": 3,
    "<": 4, "<=": 4, ">": 4, ">=": 4,
    "+": 5, "-": 5,
    "*": 6, "/": 6, "%": 6,
}


class Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing -------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def check(self, kind: str, text: str | None = None) -> bool:
        tok = self.peek()
        return tok.kind == kind and (text is None or tok.text == text)

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        tok = self.peek()
        if not self.check(kind, text):
            want = text if text is not None else kind
            raise CompileError(
                f"expected {want!r}, found {tok.text or tok.kind!r}",
                line=tok.line,
                col=tok.col,
            )
        return self.advance()

    def error(self, msg: str) -> CompileError:
        tok = self.peek()
        return CompileError(msg, line=tok.line, col=tok.col)

    # -- declarations ------------------------------------------------------------

    def parse_program(self) -> A.Program:
        aggs: list[A.AggregateDecl] = []
        funcs: list[A.ParallelDecl] = []
        main: A.MainDecl | None = None
        while not self.check("eof"):
            if self.check("kw", "aggregate"):
                aggs.append(self.parse_aggdecl())
            elif self.check("kw", "parallel"):
                funcs.append(self.parse_pardecl())
            elif self.check("kw", "main"):
                if main is not None:
                    raise self.error("duplicate main()")
                main = self.parse_main()
            else:
                raise self.error("expected a declaration (aggregate/parallel/main)")
        if main is None:
            raise CompileError("program has no main()")
        return A.Program(tuple(aggs), tuple(funcs), main)

    def parse_aggdecl(self) -> A.AggregateDecl:
        self.expect("kw", "aggregate")
        name = self.expect("name").text
        self.expect("punct", "(")
        base = self.peek()
        if base.text not in ("float", "int"):
            raise self.error("aggregate base type must be float or int")
        self.advance()
        self.expect("punct", ")")
        rank = 0
        while self.accept("punct", "["):
            self.expect("punct", "]")
            rank += 1
        if rank == 0:
            raise self.error("aggregate needs at least one dimension: []")
        self.expect("punct", ";")
        return A.AggregateDecl(name=name, base_type=base.text, rank=rank)

    def parse_pardecl(self) -> A.ParallelDecl:
        self.expect("kw", "parallel")
        name = self.expect("name").text
        self.expect("punct", "(")
        params: list[A.Param] = []
        while True:
            ttok = self.peek()
            if ttok.kind == "kw" and ttok.text in ("float", "int"):
                type_name = self.advance().text
            else:
                type_name = self.expect("name").text
            pname = self.expect("name").text
            is_par = self.accept("kw", "parallel") is not None
            params.append(A.Param(type_name, pname, is_par))
            if not self.accept("punct", ","):
                break
        self.expect("punct", ")")
        body = self.parse_block()
        if not params:
            raise self.error(f"parallel function {name} needs parameters")
        n_par = sum(p.is_parallel for p in params)
        if n_par > 1:
            raise CompileError(f"parallel function {name} has {n_par} parallel parameters")
        return A.ParallelDecl(name=name, params=tuple(params), body=body)

    def parse_main(self) -> A.MainDecl:
        self.expect("kw", "main")
        self.expect("punct", "(")
        self.expect("punct", ")")
        return A.MainDecl(body=self.parse_block())

    # -- statements ------------------------------------------------------------------

    def parse_block(self) -> tuple[A.Node, ...]:
        self.expect("punct", "{")
        stmts: list[A.Node] = []
        while not self.check("punct", "}"):
            stmts.append(self.parse_stmt())
        self.expect("punct", "}")
        return tuple(stmts)

    def parse_stmt(self) -> A.Node:
        if self.check("kw", "let"):
            self.advance()
            name = self.expect("name").text
            self.expect("op", "=")
            value = self.parse_expr()
            self.expect("punct", ";")
            return A.Let(name, value)
        if self.check("kw", "if"):
            return self.parse_if()
        if self.check("kw", "for"):
            return self.parse_for()
        if self.check("kw", "while"):
            self.advance()
            self.expect("punct", "(")
            cond = self.parse_expr()
            self.expect("punct", ")")
            return A.While(cond, self.parse_block())
        if self.check("name"):
            # NAME NAME ( ... ) ;       aggregate instantiation
            # NAME ( ... ) ;            parallel call
            # NAME [...]* = expr ;      assignment
            if self.peek(1).kind == "name":
                return self.parse_new_aggregate()
            if self.peek(1).text == "(":
                return self.parse_call_stmt()
            return self.parse_assign()
        raise self.error("expected a statement")

    def parse_new_aggregate(self) -> A.NewAggregate:
        type_name = self.expect("name").text
        name = self.expect("name").text
        self.expect("punct", "(")
        dims = [self.parse_expr()]
        while self.accept("punct", ","):
            dims.append(self.parse_expr())
        self.expect("punct", ")")
        self.expect("punct", ";")
        return A.NewAggregate(type_name, name, tuple(dims))

    def parse_call_stmt(self) -> A.ParCallStmt:
        func = self.expect("name").text
        self.expect("punct", "(")
        args: list[A.Node] = []
        if not self.check("punct", ")"):
            args.append(self.parse_expr())
            while self.accept("punct", ","):
                args.append(self.parse_expr())
        self.expect("punct", ")")
        self.expect("punct", ";")
        return A.ParCallStmt(func, tuple(args))

    def parse_assign(self) -> A.Node:
        name = self.expect("name").text
        if self.check("punct", "["):
            indices: list[A.Node] = []
            while self.accept("punct", "["):
                indices.append(self.parse_expr())
                self.expect("punct", "]")
            self.expect("op", "=")
            value = self.parse_expr()
            self.expect("punct", ";")
            return A.AssignElem(A.Index(name, tuple(indices)), value)
        self.expect("op", "=")
        value = self.parse_expr()
        self.expect("punct", ";")
        return A.AssignVar(name, value)

    def parse_if(self) -> A.If:
        self.expect("kw", "if")
        self.expect("punct", "(")
        cond = self.parse_expr()
        self.expect("punct", ")")
        then_body = self.parse_block()
        else_body: tuple[A.Node, ...] = ()
        if self.accept("kw", "else"):
            if self.check("kw", "if"):
                else_body = (self.parse_if(),)
            else:
                else_body = self.parse_block()
        return A.If(cond, then_body, else_body)

    def parse_for(self) -> A.For:
        self.expect("kw", "for")
        self.expect("punct", "(")
        init_name = self.expect("name").text
        self.expect("op", "=")
        init = A.AssignVar(init_name, self.parse_expr())
        self.expect("punct", ";")
        cond = self.parse_expr()
        self.expect("punct", ";")
        step_name = self.expect("name").text
        self.expect("op", "=")
        step = A.AssignVar(step_name, self.parse_expr())
        self.expect("punct", ")")
        return A.For(init, cond, step, self.parse_block())

    # -- expressions (precedence climbing) ----------------------------------------------

    def parse_expr(self, min_prec: int = 1) -> A.Node:
        left = self.parse_unary()
        while True:
            tok = self.peek()
            if tok.kind != "op":
                break
            prec = _PRECEDENCE.get(tok.text)
            if prec is None or prec < min_prec:
                break
            self.advance()
            right = self.parse_expr(prec + 1)
            left = A.BinOp(tok.text, left, right)
        return left

    def parse_unary(self) -> A.Node:
        if self.check("op", "-"):
            self.advance()
            return A.UnOp("-", self.parse_unary())
        if self.check("op", "!"):
            self.advance()
            return A.UnOp("!", self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> A.Node:
        tok = self.peek()
        if tok.kind == "number":
            self.advance()
            return A.Num(tok.value)
        if tok.kind == "pos":
            self.advance()
            return A.Pos(tok.value)
        if self.accept("punct", "("):
            e = self.parse_expr()
            self.expect("punct", ")")
            return e
        if tok.kind == "name":
            self.advance()
            if self.check("punct", "("):
                if tok.text not in INTRINSICS and tok.text not in REDUCE_OPS:
                    raise CompileError(
                        f"only intrinsic functions may be called in expressions, "
                        f"got {tok.text!r}",
                        line=tok.line,
                        col=tok.col,
                    )
                self.advance()
                args: list[A.Node] = []
                if not self.check("punct", ")"):
                    args.append(self.parse_expr())
                    while self.accept("punct", ","):
                        args.append(self.parse_expr())
                self.expect("punct", ")")
                return A.Intrinsic(tok.text, tuple(args))
            if self.check("punct", "["):
                indices: list[A.Node] = []
                while self.accept("punct", "["):
                    indices.append(self.parse_expr())
                    self.expect("punct", "]")
                return A.Index(tok.text, tuple(indices))
            return A.Name(tok.text)
        raise self.error(f"expected an expression, found {tok.text or tok.kind!r}")


def parse(source: str) -> A.Program:
    """Parse C** source text into a :class:`~repro.cstar.astnodes.Program`."""
    return Parser(tokenize(source)).parse_program()
