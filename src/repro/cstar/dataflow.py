"""The *reaching unstructured accesses* dataflow analysis (paper §4.3).

"Analogous to reaching definitions, we define the reaching unstructured
accesses property, which is true whenever cached copies of an Aggregate
element may exist on remote processors.  The compiler uses a forward-flow,
any-path data-flow analysis ... using a framework identical to the
reaching-definition problem."

Domain: one bit per Aggregate.  Transfer function of a parallel call, per
aggregate (the paper's three rules):

1. **Owner write accesses kill** reaching unstructured accesses (remote
   copies are invalidated by the write-invalidate protocol);
2. **Unstructured writes kill then generate** (the write invalidates old
   copies but leaves a new cached copy at the writer);
3. **Unstructured reads generate** and kill nothing (multiple readers).

Join is set union (any-path); the fixpoint iterates in reverse postorder
over the CFG using :class:`~repro.util.bitvec.BitVector` — or, for wide
lattices, its packed word-array twin
:class:`~repro.fastpath.packed.PackedBitVector` (see :func:`new_vector`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cstar.cfg import CFG, BasicBlock, build_cfg
from repro.cstar.flow import FlowCall, FlowNode, collect_aggregates
from repro.fastpath.packed import HAVE_NUMPY, PackedBitVector
from repro.util.bitvec import BitVector

#: programs with at least this many aggregates get the packed word-array
#: vector (O(width/64) whole-vector ops instead of big-int shifting);
#: below it the single-int BitVector wins on constant factors
PACKED_WIDTH_THRESHOLD = 256


def new_vector(width: int):
    """Pick the bit-vector representation for one analysis instance.

    All vectors of one :class:`ReachingUnstructured` share a width, so the
    choice is consistent per analysis — the two classes never mix (both
    reject foreign operands).
    """
    if HAVE_NUMPY and width >= PACKED_WIDTH_THRESHOLD:
        return PackedBitVector(width)
    return BitVector(width)


@dataclass
class TransferFunction:
    """gen/kill bit vectors of one basic block (composed over its calls)."""

    gen: "BitVector | PackedBitVector"
    kill: "BitVector | PackedBitVector"

    def apply(self, in_):
        return (in_ - self.kill) | self.gen


class ReachingUnstructured:
    """Computes, for each call site, which aggregates may have remote cached
    copies when control reaches it."""

    def __init__(self, root: FlowNode):
        self.root = root
        self.aggregates = collect_aggregates(root)
        self.index = {name: i for i, name in enumerate(self.aggregates)}
        self.cfg, self.call_block = build_cfg(root)
        self.block_in: dict = {}
        self.block_out: dict = {}
        #: IN set *at each call site* (before the call executes)
        self.call_in: dict = {}
        self.iterations = 0
        self._solve()

    # -- transfer functions -----------------------------------------------------

    def _call_transfer(self, call: FlowCall) -> TransferFunction:
        width = len(self.aggregates)
        gen = new_vector(width)
        kill = new_vector(width)
        s = call.summary
        for agg in s.owner_writes():
            kill.set(self.index[agg])  # rule 1
        for agg in s.unstructured_writes():
            kill.set(self.index[agg])  # rule 2 (kill ...)
            gen.set(self.index[agg])   # ... then gen
        for agg in s.unstructured_reads():
            gen.set(self.index[agg])   # rule 3
        return TransferFunction(gen=gen, kill=kill)

    def _block_transfer(self, bb: BasicBlock) -> TransferFunction:
        """Compose call transfer functions left to right."""
        width = len(self.aggregates)
        tf = TransferFunction(gen=new_vector(width), kill=new_vector(width))
        for call in bb.calls:
            ct = self._call_transfer(call)
            # (x - K1 | G1) - K2 | G2  ==  x - (K1|K2) | ((G1 - K2) | G2)
            tf.kill |= ct.kill
            tf.gen = (tf.gen - ct.kill) | ct.gen
        return tf

    # -- fixpoint -----------------------------------------------------------------

    def _solve(self) -> None:
        width = len(self.aggregates)
        tfs = {bb.id: self._block_transfer(bb) for bb in self.cfg.blocks}
        for bb in self.cfg.blocks:
            self.block_in[bb.id] = new_vector(width)
            self.block_out[bb.id] = new_vector(width)
        order = self.cfg.reverse_postorder()
        changed = True
        while changed:
            changed = False
            self.iterations += 1
            for bb in order:
                in_ = new_vector(width)
                for p in bb.preds:
                    in_ |= self.block_out[p.id]
                out = tfs[bb.id].apply(in_)
                if in_ != self.block_in[bb.id] or out != self.block_out[bb.id]:
                    changed = True
                self.block_in[bb.id] = in_
                self.block_out[bb.id] = out
        # per-call IN sets: compose transfers of earlier calls in the block
        for bb in self.cfg.blocks:
            cur = self.block_in[bb.id]
            for call in bb.calls:
                self.call_in[call.site_id] = cur
                cur = self._call_transfer(call).apply(cur)

    # -- queries --------------------------------------------------------------------

    def reaches(self, call: FlowCall, aggregate: str) -> bool:
        """May remote cached copies of ``aggregate`` exist at this call?"""
        idx = self.index.get(aggregate)
        if idx is None:
            return False
        return self.call_in[call.site_id].test(idx)

    def reaching_set(self, call: FlowCall) -> set[str]:
        return {
            self.aggregates[i] for i in self.call_in[call.site_id].indices()
        }
