"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``compile FILE.cstar``
    Compile a C** source file and print the access summaries, the
    reaching-unstructured-accesses results, and the placed directives.

``run FILE.cstar [--protocol P] [--nodes N] [--block-size B] [--unoptimized]``
    Compile and execute on a simulated machine; print the paper-style time
    breakdown (optionally ``--trace-stats``).

``figure {table1,fig5,fig6,fig7}``
    Regenerate a table/figure of the paper.

``ablation {coalescing,incremental,flush,blocks}``
    Run one of the design-choice ablations.

``model [APP] [--validate | --calibrate | --suite]``
    The analytical performance model (``repro.model``): predict a run's
    statistics in closed form — no event loop — from the compiler's access
    summaries, the machine parameters, and the protocol.  ``--validate``
    simulates the same configuration and prints both side by side;
    ``--calibrate`` fits the per-protocol residual coefficients from short
    reference sims; ``--suite`` cross-validates model vs. simulator over
    the full Figure-5/6/7 matrix and gates the committed error budgets
    (``--quick`` for the CI subset, ``--write``/``--check`` for the
    ``benchmarks/MODEL_validation.json`` artifact).

``sweep APP --axis name=v1,v2,... [--model] [--out FILE]``
    Cartesian machine-parameter grids.  The default backend simulates
    every point; ``--model`` predicts each point analytically —
    milliseconds for grids that take the simulator minutes, since
    cost-axis points reuse one cached walk.  Both backends emit identical
    document shapes, so exported grids (atomic ``.json``/``.csv``) are
    diffable point by point.

``audit``
    Statically audit the shipped protocols' transition tables.

``verify [--seeds N] [--replay SEED] [--dfs N]``
    Dynamically verify the shipped protocols: fuzz seeded workloads under
    adversarial message interleavings with the coherence-invariant monitor
    and the differential oracle attached; optionally model-check a few
    workloads exhaustively (bounded DFS).  Violations print a minimized,
    seed-replayable counterexample.

``faults [--plans P,Q] [--crash] [--seeds N] [--variants N] [--list-plans]``
    Run the fault-injection campaign: every bundled fault plan (message
    drops, duplicates, delays, handler stalls, schedule staleness and
    corruption) against generated workloads and the bundled traces, under
    the invariant monitor and differential oracle.  ``--crash`` selects the
    crash-stop plans instead (node failures with detection, coherence-state
    recovery, and restart).  A failing stochastic run is replayed through a
    scripted plan and shrunk to a minimal fault reproducer;
    ``--dump-scripts DIR`` archives each reproducer as replayable JSON.
    Also checks the deliberately unrecoverable plan fails fast with
    structured context.

``corpus doctor DIR [--compact] [--scrub]``
    Inspect (and optionally compact/scrub) a durable schedule corpus.
    Opening a corpus is itself the repair: torn tails are truncated and
    damaged records quarantined, so the doctor reports what a run would
    see.  ``run``, ``verify``, ``faults``, ``bench``, ``figure``, and
    ``reproduce`` all accept ``--corpus DIR`` to warm-start from (and,
    where learning is fault-free, harvest into) the same store.
"""

from __future__ import annotations

import argparse
import sys

from repro.util.errors import ReproError


def _cmd_compile(args: argparse.Namespace) -> int:
    from repro.cstar import compile_source

    source = open(args.file).read()
    program = compile_source(source)
    if args.dump_ast:
        from repro.cstar.pprint import pprint_program

        print(pprint_program(program.info.program))
        print("// --- analysis ---")
    print(program.describe())
    if args.verbose:
        analysis = program.placement.analysis
        print("\nreaching unstructured accesses (per call site):")
        from repro.cstar.flow import iter_calls

        for call in iter_calls(program.flow):
            reaching = sorted(analysis.reaching_set(call))
            needs = program.placement.needs_schedule[call.site_id]
            print(f"  {call.function}#{call.site_id}: reached by {reaching or '{}'}"
                  f"{'  [needs schedule]' if needs else ''}")
    return 0


def _simulate_file(args: argparse.Namespace, tracer=None, corpus=None):
    """Compile ``args.file`` and run it on a machine built from the common
    run/trace/profile options; returns (stats, config).

    With ``corpus``, the run warm-starts from schedules a previous run of
    the same (source, protocol, placement) persisted, and harvests what it
    learned back into the store afterwards.  The corpus key hashes the
    source text itself, so an edited program simply misses.
    """
    from repro.core import make_machine
    from repro.cstar import compile_source
    from repro.util.config import MachineConfig

    source = open(args.file).read()
    program = compile_source(source)
    cfg = MachineConfig(n_nodes=args.nodes, block_size=args.block_size,
                        page_size=max(args.page_size, args.block_size))
    warm = None
    key = None
    if corpus is not None:
        from repro.corpus import (corpus_key, placement_signature,
                                  program_signature, supports_warm)

        if supports_warm(args.protocol):
            key = corpus_key(program_signature(source), args.protocol,
                             placement_signature(cfg))
            entry = corpus.lookup(key, cfg.n_nodes)
            if entry is not None:
                warm = entry["records"]
    machine = make_machine(cfg, args.protocol,
                           fast=getattr(args, "fast", False), warm=warm)
    if tracer is not None:
        machine.attach_tracer(tracer)
    env = program.run(machine, optimized=not args.unoptimized)
    stats = env.finish()
    if key is not None:
        store = getattr(machine.protocol, "schedules", None)
        if store is not None:
            records = [s.to_record() for s in store.values() if s.entries]
            if records:
                corpus.store(key, {"protocol": args.protocol,
                                   "n_nodes": cfg.n_nodes,
                                   "records": records})
    return stats, cfg


def _run_meta(args: argparse.Namespace) -> dict:
    meta = dict(app=args.file, protocol=args.protocol, nodes=args.nodes,
                block_size=args.block_size, optimized=not args.unoptimized)
    # only label fast-path runs, so reference-path metric labels are stable
    if getattr(args, "fast", False):
        meta["fast"] = True
    return meta


def _write_json(path: str, doc: dict) -> None:
    import pathlib

    from repro.util.atomicio import atomic_write_json

    out = pathlib.Path(path)
    if out.parent != pathlib.Path():
        out.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_json(out, doc)


def _open_corpus(args):
    """Open the durable schedule corpus when ``--corpus DIR`` asks (else None).

    :func:`repro.corpus.open_corpus` never raises: an unusable directory
    degrades to a ``NullCorpus`` that warms nothing and stores nothing, so
    the command still runs — just cold, with a warning here.
    """
    root = getattr(args, "corpus", None)
    if not root:
        return None
    from repro.corpus import open_corpus

    corpus = open_corpus(root)
    if not corpus.ok:
        print(f"corpus: unusable ({corpus.reason}); running cold",
              file=sys.stderr)
    return corpus


def _farm_tracer(args):
    """An EventTrace for farm lifecycle events when ``--farm-events`` asks."""
    if getattr(args, "farm_events", None):
        from repro.obs import EventTrace

        return EventTrace()
    return None


def _write_farm_events(args, tracer) -> None:
    if tracer is None:
        return
    from repro.obs import write_jsonl

    n = write_jsonl(args.farm_events, tracer.events)
    print(f"farm events: {n} event(s) -> {args.farm_events}")


def _build_farm_transport(args, tracer):
    """The multi-host socket transport when ``--hosts N`` asks (else None).

    Binds immediately and prints the listen address; worker agents attach
    with ``repro farm-worker --connect HOST:PORT``.  ``--chaos-seed``
    wraps the transport in seeded drop/dup/delay/disconnect injection —
    reports must stay byte-identical regardless.
    """
    if not getattr(args, "hosts", None):
        return None
    from repro.farm import ChaosTransport, SocketTransport

    transport = SocketTransport(args.hosts, bind=args.bind, port=args.port,
                                tracer=tracer)
    print(f"farm: listening on {transport.host}:{transport.port}, waiting "
          f"for {args.hosts} worker agent(s) "
          f"(repro farm-worker --connect {transport.host}:{transport.port})")
    if args.chaos_seed is not None:
        transport = ChaosTransport(transport, seed=args.chaos_seed,
                                   tracer=tracer)
        print(f"farm: chaos injection armed (seed {args.chaos_seed})")
    return transport


def _cmd_farm_worker(args: argparse.Namespace) -> int:
    from repro.farm import worker_agent

    host, _, port = args.connect.rpartition(":")
    if not host or not port.isdigit():
        print(f"error: --connect wants HOST:PORT, got {args.connect!r}",
              file=sys.stderr)
        return 2
    return worker_agent(host, int(port), heartbeat=args.heartbeat,
                        watchdog=args.watchdog,
                        connect_timeout=args.connect_timeout,
                        max_attempts=args.connect_attempts,
                        label=args.label, progress=print)


def _export_trace(path: str, tracer, n_nodes: int) -> list[str]:
    """Write a Chrome trace and validate it; returns the problem list."""
    from repro.obs import validate_chrome_trace, write_chrome_trace

    doc = write_chrome_trace(path, tracer.events, n_nodes)
    problems = validate_chrome_trace(doc)
    print(f"trace: {len(tracer.events)} events -> {path} "
          f"({'VALID' if not problems else 'INVALID'} Chrome trace)")
    for problem in problems:
        print(f"  trace problem: {problem}", file=sys.stderr)
    return problems


def _cmd_run(args: argparse.Namespace) -> int:
    tracer = None
    if args.trace:
        from repro.obs import EventTrace

        tracer = EventTrace()
    stats, cfg = _simulate_file(args, tracer, corpus=_open_corpus(args))
    meta = _run_meta(args)

    if args.json:
        import json

        from repro.obs import run_stats_json

        doc = run_stats_json(stats, **meta)
        if args.json == "-":
            print(json.dumps(doc, indent=2, sort_keys=True))
        else:
            _write_json(args.json, doc)
    if args.json != "-":
        print(f"protocol={args.protocol} nodes={args.nodes} "
              f"block={args.block_size}B optimized={not args.unoptimized}")
        from repro.util.tables import format_table

        print(format_table(["metric", "value"], stats.summary_rows(),
                           floatfmt=".6g"))
        if args.trace_stats:
            print()
            print(f"(phase count: {len(stats.phases)})")
    if args.metrics_out:
        from repro.obs import registry_from_run

        _write_json(args.metrics_out,
                    registry_from_run(stats, **meta).to_dict())
    if args.trace and _export_trace(args.trace, tracer, cfg.n_nodes):
        return 1
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Run a program with tracing on; export (and validate) the timeline."""
    from repro.obs import EventTrace, write_jsonl
    from repro.util.tables import format_table

    tracer = EventTrace()
    stats, cfg = _simulate_file(args, tracer)
    print(f"protocol={args.protocol} nodes={args.nodes} "
          f"block={args.block_size}B optimized={not args.unoptimized} "
          f"wall={stats.wall_time:g} cycles")
    rows = [[kind, float(n)] for kind, n in sorted(tracer.counts().items())]
    print(format_table(["event kind", "count"], rows, floatfmt=".0f"))
    if args.jsonl:
        n = write_jsonl(args.jsonl, tracer.events)
        print(f"event log: {n} events -> {args.jsonl}")
    problems = _export_trace(args.out, tracer, cfg.n_nodes)
    return 1 if problems else 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Run a program with tracing on; print the per-phase profile."""
    from repro.obs import EventTrace, profile_run

    tracer = EventTrace()
    stats, cfg = _simulate_file(args, tracer)
    report = profile_run(stats, tracer)
    print(f"protocol={args.protocol} nodes={args.nodes} "
          f"block={args.block_size}B optimized={not args.unoptimized} "
          f"wall={stats.wall_time:g} cycles")
    print()
    print(report.render())
    if args.json:
        _write_json(args.json, report.to_dict())
        print(f"\nprofile written to {args.json}")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.bench import figures

    if args.name == "table1":
        print(figures.table1())
        return 0
    fig = {
        "fig5": figures.fig5_adaptive,
        "fig6": figures.fig6_barnes,
        "fig7": figures.fig7_water,
    }[args.name](fast=args.fast, jobs=args.jobs, corpus=_open_corpus(args))
    print(fig.render())
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    from repro.bench import ablations

    fn = {
        "coalescing": ablations.ablation_coalescing,
        "incremental": ablations.ablation_incremental,
        "flush": ablations.ablation_flush,
        "blocks": ablations.ablation_block_sweep,
    }[args.name]
    print(fn())
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    """Run every table, figure, ablation, and sweep; write a full report."""
    import pathlib
    import time

    from repro.bench import ablations, figures, sweeps

    sections: list[tuple[str, str]] = []
    t0 = time.time()
    sections.append(("Table 1", figures.table1()))

    # Corpus-warmed figure runs skip pre-send learning, which shifts the
    # bar ratios the check_* shape checks assert about cold runs — so the
    # checks only gate cold reproductions.  The warmed report is still
    # written; its note lines record the warm-start.
    corpus = _open_corpus(args)
    warmed = corpus is not None

    fig5 = figures.fig5_adaptive(fast=args.fast, jobs=args.jobs, corpus=corpus)
    if not warmed:
        figures.check_fig5(fig5)
    sections.append(("Figure 5", fig5.render()))

    fig6 = figures.fig6_barnes(fast=args.fast, jobs=args.jobs, corpus=corpus)
    if not warmed:
        figures.check_fig6(fig6)
    sections.append(("Figure 6", fig6.render()))

    fig7 = figures.fig7_water(fast=args.fast, jobs=args.jobs, corpus=corpus)
    if not warmed:
        figures.check_fig7(fig7)
    sections.append(("Figure 7", fig7.render()))

    sections.append(("Ablation (a): coalescing", ablations.ablation_coalescing()))
    sections.append(("Ablation (b): incremental", ablations.ablation_incremental()))
    sections.append(("Ablation (c): flush", ablations.ablation_flush()))
    sections.append(("Ablation (d): block sizes", ablations.ablation_block_sweep()))
    sections.append(("Ablation (e): latency", ablations.ablation_latency_sweep()))
    sections.append(("Sweep: node scaling", sweeps.node_scaling()))
    sections.append(("Sweep: paper geometry", sweeps.paper_geometry_fig5()))

    report = []
    for title, body in sections:
        report.append("=" * 72)
        report.append(title)
        report.append("=" * 72)
        report.append(body)
        report.append("")
    tail = ("corpus-warmed run; shape checks skipped" if warmed
            else "all shape checks passed")
    report.append(f"({tail}; total {time.time() - t0:.1f}s)")
    text = "\n".join(report)
    print(text)
    out = pathlib.Path(args.output)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(text + "\n")
    print(f"\nreport written to {out}")

    figure_results = [fig5, fig6, fig7]
    if args.json:
        from repro.obs import STATS_SCHEMA, run_stats_json

        doc = {
            "schema": "repro.reproduce/v1",
            "stats_schema": STATS_SCHEMA,
            "sections": [title for title, _ in sections],
            "runs": [
                run_stats_json(v.stats, figure=fig.name, version=v.spec.label,
                               protocol=v.spec.protocol,
                               optimized=v.spec.optimized,
                               block_size=v.spec.config.block_size)
                for fig in figure_results for v in fig.versions
            ],
        }
        _write_json(args.json, doc)
        print(f"figure stats written to {args.json}")
    if args.metrics_out:
        from repro.obs import MetricsRegistry

        merged = MetricsRegistry.merge_all(f.metrics() for f in figure_results)
        _write_json(args.metrics_out, merged.to_dict())
        print(f"metrics written to {args.metrics_out}")
    if args.trace:
        # Timeline of the paper's headline configuration: optimized water
        # under the predictive protocol (Figure 7's fastest bar).
        from repro.apps import water
        from repro.bench.figures import WATER_CFG, WATER_KW
        from repro.bench.harness import VersionSpec, run_version
        from repro.obs import EventTrace

        spec = VersionSpec("C** opt (32)", water, "predictive", True,
                           WATER_CFG.with_(block_size=32), dict(WATER_KW))
        tracer = EventTrace()
        run_version(spec, tracer=tracer, fast=args.fast)
        if _export_trace(args.trace, tracer, spec.config.n_nodes):
            return 1
    return 0


def _check_snapshot(args, committed_path, measured) -> int:
    """Gate a measured snapshot doc against a committed one; 0 = pass."""
    import json

    from repro.bench import perf

    if not committed_path.is_file():
        print(f"error: no committed snapshot at {committed_path}",
              file=sys.stderr)
        return 2
    problems = perf.compare_snapshots(
        perf.load_snapshot(json.loads(committed_path.read_text())),
        measured, tolerance=args.tolerance,
    )
    if problems:
        print(f"\nPERF GATE: {len(problems)} regression(s) "
              f"vs {committed_path}:")
        for p in problems:
            print(f"  {p}")
        return 1
    print(f"\nperf gate passed (tolerance {args.tolerance:.0%}, "
          f"vs {committed_path})")
    return 0


def _cmd_bench_farm(args: argparse.Namespace) -> int:
    """Measure the farm scaling curve; write/check BENCH_farm.json."""
    import pathlib

    from repro.bench import perf
    from repro.util.tables import format_table

    curve = tuple(int(x) for x in args.jobs_curve.split(","))
    doc = perf.farm_scaling(curve, progress=print)
    rows = [[w["label"], float(w["workers"]), w["sim_seconds"],
             w["speedup_sim"]] for w in doc["workloads"]]
    print(format_table(
        ["sweep", "workers", "seconds", "speedup"], rows, floatfmt=".3g",
        title=f"farm scaling (byte-identical reports; "
              f"host has {doc['host_cpus']} cpu(s))",
    ))
    path = pathlib.Path(args.dir) / "BENCH_farm.json"
    if args.write:
        _write_json(str(path), doc)
        print(f"farm snapshot written to {path}")
    if args.check:
        return _check_snapshot(args, path, doc)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Time the fast path against the reference path; write/check snapshots."""
    import pathlib

    from repro.bench import perf

    if args.farm:
        return _cmd_bench_farm(args)

    profile = "quick" if args.quick else None
    cases = perf.table1_cases(profile)
    corpus = _open_corpus(args)
    if args.jobs > 1 or corpus is not None:
        # the payload path carries the corpus warm envelope at any job
        # count (jobs=1 runs the same computation in-process)
        payloads = perf.measure_payloads(cases, repeats=args.repeats,
                                         jobs=args.jobs, progress=print,
                                         corpus=corpus)
        print(perf.render_payloads(payloads))

        def snapshot(mode):
            return perf.snapshot_from_payloads(payloads, mode,
                                               repeats=args.repeats)
    else:
        pairs = perf.measure(cases, repeats=args.repeats)
        print(perf.render_pairs(pairs))

        def snapshot(mode):
            return perf.snapshot(pairs, mode, repeats=args.repeats)

    if args.write:
        out_dir = pathlib.Path(args.dir)
        for mode, name in (("baseline", "BENCH_baseline.json"),
                           ("fastpath", "BENCH_fastpath.json")):
            _write_json(str(out_dir / name), snapshot(mode))
            print(f"{mode} snapshot written to {out_dir / name}")

    if args.check:
        committed = pathlib.Path(args.dir) / "BENCH_fastpath.json"
        return _check_snapshot(args, committed, snapshot("fastpath"))
    return 0


_MODEL_APPS = ("adaptive", "barnes", "water")


def _resolve_app(name: str):
    """A benchmark app by name, with its Figure-5/6/7 workload defaults."""
    from repro.apps import adaptive, barnes, water
    from repro.bench import figures

    module, kwargs, cfg = {
        "adaptive": (adaptive, figures.ADAPTIVE_KW, figures.ADAPTIVE_CFG),
        "barnes": (barnes, figures.BARNES_KW, figures.BARNES_CFG),
        "water": (water, figures.WATER_KW, figures.WATER_CFG),
    }[name]
    return module, dict(kwargs), cfg


def _model_config(args, base_cfg):
    """The figure baseline config with any explicit CLI overrides."""
    cfg = base_cfg
    if args.nodes is not None:
        cfg = cfg.with_(n_nodes=args.nodes)
    if args.block_size is not None:
        cfg = cfg.with_(block_size=args.block_size)
    if args.page_size is not None:
        cfg = cfg.with_(page_size=args.page_size)
    return cfg


def _load_model_calibration(args):
    """Resolve the calibration to predict with; returns (cal, source)."""
    import pathlib

    from repro.model import default_calibration, load_calibration

    if getattr(args, "uncalibrated", False):
        return default_calibration(), "identity (--uncalibrated)"
    explicit = getattr(args, "calibration", None)
    if explicit:
        return load_calibration(explicit), explicit
    path = pathlib.Path(args.dir) / "MODEL_calibration.json"
    if path.is_file():
        return load_calibration(path), str(path)
    return default_calibration(), "identity (no committed calibration)"


def _cmd_model(args: argparse.Namespace) -> int:
    """Predict, calibrate, or cross-validate with the analytical model."""
    import pathlib

    from repro.util.tables import format_table

    if args.calibrate:
        from repro.model import calibrate, save_calibration

        cal = calibrate(progress=print)
        rows = [[p, cal.alpha[p], cal.gamma[p], cal.delta[p],
                 cal.diagnostics[p]["rms_wall_err_before"],
                 cal.diagnostics[p]["rms_wall_err_after"]]
                for p in sorted(cal.alpha)]
        print(format_table(
            ["protocol", "alpha", "gamma", "delta", "rms err before",
             "rms err after"],
            rows, title="model calibration", floatfmt=".6g"))
        path = pathlib.Path(args.dir) / "MODEL_calibration.json"
        save_calibration(path, cal)
        print(f"calibration written to {path}")
        return 0

    cal, cal_src = _load_model_calibration(args)

    if args.suite:
        from repro.model import validate as mv

        doc = mv.validate(cal, quick=args.quick, timing=args.timing,
                          progress=print)
        print()
        print(mv.render_validation(doc))
        path = pathlib.Path(args.dir) / "MODEL_validation.json"
        if args.write:
            mv.save_validation(path, doc)
            print(f"validation written to {path}")
        if args.check:
            if not path.is_file():
                print(f"error: no committed validation at {path}",
                      file=sys.stderr)
                return 2
            problems = mv.compare_validation(mv.load_validation(path), doc)
            if problems:
                print(f"\nMODEL GATE: {len(problems)} problem(s) vs {path}:")
                for prob in problems:
                    print(f"  {prob}")
                return 1
            print(f"\nmodel gate passed (vs {path})")
        return 0 if doc["passed"] else 1

    from repro.model import predict

    if args.app is None:
        print("error: an app is required unless --suite or --calibrate "
              f"is given (choose from {', '.join(_MODEL_APPS)})",
              file=sys.stderr)
        return 2
    app, kwargs, base_cfg = _resolve_app(args.app)
    cfg = _model_config(args, base_cfg)
    optimized = not args.unoptimized
    pred = predict(app, kwargs, protocol=args.protocol, optimized=optimized,
                   config=cfg, variant=args.variant, calibration=cal)
    print(f"model: {args.app} [{args.variant}] protocol={args.protocol} "
          f"nodes={cfg.n_nodes} block={cfg.block_size}B "
          f"optimized={optimized}")
    print(f"calibration: {cal_src}")
    if args.validate:
        from repro.bench.harness import VersionSpec, run_version

        sim = run_version(
            VersionSpec("validate", app, args.protocol, optimized, cfg,
                        kwargs, variant=args.variant),
            fast=True).stats
        sim_rows = dict((name, value) for name, value in sim.summary_rows())
        rows = []
        for name, mval in pred.stats.summary_rows():
            sval = sim_rows.get(name)
            if sval in (None, 0):
                err = "n/a" if sval is None or mval != sval else "exact"
            else:
                err = f"{(mval - sval) / sval:+.2%}"
            rows.append([name, mval, sval, err])
        print(format_table(["metric", "model", "simulated", "rel err"],
                           rows, floatfmt=".6g"))
    else:
        print(format_table(["metric", "value"], pred.stats.summary_rows(),
                           floatfmt=".6g"))
    if args.json:
        from repro.obs import run_stats_json

        _write_json(args.json, run_stats_json(
            pred.stats, app=args.app, variant=args.variant,
            protocol=args.protocol, nodes=cfg.n_nodes,
            block_size=cfg.block_size, optimized=optimized, model=True))
        print(f"\nprediction written to {args.json}")
    return 0


def _parse_axes(args) -> dict:
    """``--axis name=v1,v2,...`` flags into a sweep axes dict."""
    from repro.bench.sweeps import SWEEP_AXES
    from repro.util.errors import ConfigError

    axes: dict[str, list] = {}
    for spec in args.axis or []:
        name, _, values = spec.partition("=")
        if not values:
            raise ConfigError(
                f"bad --axis {spec!r}: expected name=v1,v2,...")
        if name not in SWEEP_AXES:
            raise ConfigError(
                f"unknown sweep axis {name!r}; expected one of "
                f"{', '.join(SWEEP_AXES)}")
        if name == "protocol":
            axes[name] = values.split(",")
        elif name == "per_byte_cost":
            axes[name] = [float(v) for v in values.split(",")]
        else:
            axes[name] = [int(v) for v in values.split(",")]
    return axes


def _cmd_sweep(args: argparse.Namespace) -> int:
    """Run a machine-parameter grid, sim- or model-backed."""
    from repro.bench.sweeps import export_grid, render_grid, sweep_grid

    if args.app is None:
        print(f"error: an app is required (choose from "
              f"{', '.join(_MODEL_APPS)})", file=sys.stderr)
        return 2
    app, kwargs, base_cfg = _resolve_app(args.app)
    cfg = _model_config(args, base_cfg)
    axes = _parse_axes(args)
    if not axes:
        print("error: no sweep axes; pass at least one "
              "--axis name=v1,v2,... "
              "(axes: protocol, n_nodes, block_size, msg_latency, "
              "per_byte_cost, fault_cost, handler_cost)", file=sys.stderr)
        return 2
    backend = "model" if args.model else "sim"
    calibration = None
    if backend == "model":
        calibration, cal_src = _load_model_calibration(args)
        print(f"calibration: {cal_src}")
    doc = sweep_grid(
        app, kwargs, base_config=cfg, axes=axes, backend=backend,
        protocol=args.protocol, optimized=not args.unoptimized,
        variant=args.variant, calibration=calibration, fast=args.fast,
        progress=print if args.verbose else None)
    print(render_grid(doc))
    if args.out:
        export_grid(args.out, doc)
        print(f"sweep grid written to {args.out}")
    return 0


def _cmd_corpus_doctor(args: argparse.Namespace) -> int:
    from repro.corpus.doctor import doctor

    report, status = doctor(args.dir, compact=args.compact, scrub=args.scrub)
    print(report)
    return status


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.core.predictive import PredictiveProtocol
    from repro.protocols.directory import DirState
    from repro.protocols.messages import MessageKind as MK
    from repro.protocols.stache import StacheProtocol
    from repro.protocols.verify import STACHE_HOME_SPEC, audit_protocol
    from repro.protocols.writeupdate import UPDATE_SHARED, WriteUpdateProtocol

    ok = True
    for cls, spec in [
        (StacheProtocol, STACHE_HOME_SPEC),
        (PredictiveProtocol, STACHE_HOME_SPEC),
        (WriteUpdateProtocol, {
            DirState.IDLE: {MK.GET_RO, MK.GET_RW},
            UPDATE_SHARED: {MK.GET_RO, MK.GET_RW},
        }),
    ]:
        result = audit_protocol(cls, spec)
        print(result.report())
        print()
        ok = ok and result.ok
    return 0 if ok else 1


def _cmd_verify(args: argparse.Namespace) -> int:
    import pathlib

    from repro.verify import (
        ALL_PROTOCOLS,
        dfs_explore_seed,
        fuzz,
        make_bundled_sessions,
        verify_trace_file,
    )

    protocols = args.protocols.split(",") if args.protocols else list(ALL_PROTOCOLS)
    unknown = set(protocols) - set(ALL_PROTOCOLS)
    if unknown:
        print(f"error: unknown protocol(s) {sorted(unknown)}; "
              f"available: {list(ALL_PROTOCOLS)}", file=sys.stderr)
        return 2

    traces_dir = pathlib.Path(args.traces)
    if args.regen_traces:
        from repro.tempest.tracefile import save_session

        traces_dir.mkdir(parents=True, exist_ok=True)
        for name, workload in make_bundled_sessions().items():
            save_session(workload.events, traces_dir / name,
                         regions=workload.regions)
            print(f"wrote {traces_dir / name} ({workload.describe()})")
        return 0

    failed = False

    if args.replay is not None:
        from repro.verify import replay_seed

        report = replay_seed(args.replay, protocols=protocols)
        print(report.summary())
        failed = not report.ok
    else:
        tracer = _farm_tracer(args)
        report = fuzz(seeds=args.seeds, protocols=protocols,
                      shrink=not args.no_shrink, progress=print,
                      jobs=args.jobs, tracer=tracer,
                      farm_transport=_build_farm_transport(args, tracer),
                      corpus=_open_corpus(args))
        print(report.summary())
        failed = not report.ok
        if args.report_out:
            _write_json(args.report_out, report.to_dict())
            print(f"report written to {args.report_out}")
        _write_farm_events(args, tracer)

    if args.dfs:
        print()
        for protocol in protocols:
            for seed in range(args.dfs_seeds):
                n, violations = dfs_explore_seed(
                    seed, protocol, max_runs=args.dfs, max_depth=args.dfs_depth)
                if n == 0 and not violations:
                    continue  # workload dialect incompatible with protocol
                status = "ok" if not violations else "VIOLATION"
                print(f"dfs [{protocol}] seed {seed}: "
                      f"{n} interleaving(s) explored — {status}")
                for rec in violations:
                    print(rec.report())
                    failed = True

    if traces_dir.is_dir() and not args.no_traces:
        print()
        for path in sorted(traces_dir.glob("*.trace")):
            trace_report = verify_trace_file(path, protocols=protocols)
            status = "ok" if trace_report.ok else "VIOLATION"
            print(f"trace {path.name}: {trace_report.runs} monitored "
                  f"replay(s) — {status}")
            for rec in trace_report.violations:
                print(rec.report())
            failed = failed or not trace_report.ok

    return 1 if failed else 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.faults import BUNDLED_PLANS, CRASH_PLANS, run_campaign
    from repro.verify import ALL_PROTOCOLS

    registry = {**BUNDLED_PLANS, **CRASH_PLANS}
    if args.list_plans:
        for name, plan in registry.items():
            print(f"{name:16s} {plan.describe()}")
        return 0

    plans = None
    if args.crash:
        plans = dict(CRASH_PLANS)
    if args.plans:
        unknown = set(args.plans.split(",")) - set(registry)
        if unknown:
            print(f"error: unknown plan(s) {sorted(unknown)}; "
                  f"available: {list(registry)}", file=sys.stderr)
            return 2
        plans = {**(plans or {}),
                 **{name: registry[name] for name in args.plans.split(",")}}

    protocols = None
    if args.protocols:
        protocols = args.protocols.split(",")
        unknown = set(protocols) - set(ALL_PROTOCOLS)
        if unknown:
            print(f"error: unknown protocol(s) {sorted(unknown)}; "
                  f"available: {list(ALL_PROTOCOLS)}", file=sys.stderr)
            return 2

    tracer = _farm_tracer(args)
    report = run_campaign(
        plans=plans,
        seeds=args.seeds,
        protocols=protocols,
        variants=args.variants,
        traces_dir=None if args.no_traces else args.traces,
        shrink=not args.no_shrink,
        progress=print,
        dump_scripts=args.dump_scripts,
        fast=args.fast,
        jobs=args.jobs,
        tracer=tracer,
        farm_transport=_build_farm_transport(args, tracer),
        corpus=_open_corpus(args),
    )
    print(report.summary())
    if args.report_out:
        _write_json(args.report_out, report.to_dict())
        print(f"report written to {args.report_out}")
    _write_farm_events(args, tracer)

    if args.trace or args.metrics_out:
        # One representative traced run: the first selected plan against the
        # first generated workload, so the timeline shows faults in context.
        from repro.obs import EventTrace, registry_from_run
        from repro.verify.oracle import run_workload
        from repro.verify.workload import generate_workload

        plan_name, plan = next(iter((plans or registry).items()))
        protocol = (protocols or ["predictive"])[0]
        workload = generate_workload(0)
        tracer = EventTrace()
        obs = run_workload(workload, protocol, fault_plan=plan, tracer=tracer,
                           fast=args.fast)
        if args.metrics_out:
            _write_json(
                args.metrics_out,
                registry_from_run(obs.stats, app="fuzz-seed0",
                                  protocol=protocol,
                                  plan=plan_name).to_dict(),
            )
            print(f"metrics written to {args.metrics_out}")
        if args.trace and _export_trace(args.trace, tracer,
                                        workload.config.n_nodes):
            return 1
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Compiler-directed Shared-Memory "
                    "Communication for Iterative Parallel Applications' (SC'96)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="compile a C** file; show the analysis")
    p.add_argument("file")
    p.add_argument("-v", "--verbose", action="store_true")
    p.add_argument("--dump-ast", action="store_true",
                   help="pretty-print the parsed program before the analysis")
    p.set_defaults(fn=_cmd_compile)

    def add_machine_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("file")
        p.add_argument("--protocol", default="predictive",
                       choices=["stache", "predictive", "write-update"])
        p.add_argument("--nodes", type=int, default=8)
        p.add_argument("--block-size", type=int, default=32)
        p.add_argument("--page-size", type=int, default=512)
        p.add_argument("--unoptimized", action="store_true",
                       help="ignore compiler directives (the paper's baseline)")
        p.add_argument("--fast", action="store_true",
                       help="run on the compiled fast path (calendar-queue "
                            "engine + packed state; bit-identical results)")

    def add_corpus_option(p: argparse.ArgumentParser) -> None:
        p.add_argument("--corpus", metavar="DIR",
                       help="durable schedule corpus directory: warm-start "
                            "schedule-learning protocols from previous runs' "
                            "persisted schedules and (where the command "
                            "learns fault-free) harvest new ones back; a "
                            "damaged corpus self-heals on open and a missing "
                            "one is created")

    p = sub.add_parser("run", help="compile and simulate a C** file")
    add_machine_options(p)
    add_corpus_option(p)
    p.add_argument("--trace-stats", action="store_true")
    p.add_argument("--json", nargs="?", const="-", metavar="PATH",
                   help="emit machine-readable run stats (repro.run-stats/v1) "
                        "to PATH, or to stdout instead of the table if PATH "
                        "is omitted or '-'")
    p.add_argument("--metrics-out", metavar="PATH",
                   help="write the run's metrics registry "
                        "(repro.metrics/v1 JSON) to PATH")
    p.add_argument("--trace", metavar="PATH",
                   help="run with event tracing on and export a Chrome/"
                        "Perfetto trace.json timeline to PATH")
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser(
        "trace",
        help="run a C** file with event tracing on; export a validated "
             "Chrome/Perfetto trace.json timeline",
    )
    add_machine_options(p)
    p.add_argument("-o", "--out", default="trace.json",
                   help="output path for the Chrome trace (default: "
                        "trace.json; open in Perfetto or chrome://tracing)")
    p.add_argument("--jsonl", metavar="PATH",
                   help="also write the raw event log as JSON lines")
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser(
        "profile",
        help="run a C** file with event tracing on; print the per-phase "
             "profile and schedule-quality analytics",
    )
    add_machine_options(p)
    p.add_argument("--json", metavar="PATH",
                   help="also write the profile (repro.profile/v1 JSON) "
                        "to PATH")
    p.set_defaults(fn=_cmd_profile)

    p = sub.add_parser("figure", help="regenerate a paper table/figure")
    p.add_argument("name", choices=["table1", "fig5", "fig6", "fig7"])
    add_corpus_option(p)
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="shard the work across N farm worker processes "
                        "(repro.farm; reports are byte-identical to --jobs 1)")
    p.add_argument("--fast", action="store_true",
                   help="run on the compiled fast path (bit-identical)")
    p.set_defaults(fn=_cmd_figure)

    p = sub.add_parser("ablation", help="run a design-choice ablation")
    p.add_argument("name", choices=["coalescing", "incremental", "flush", "blocks"])
    p.set_defaults(fn=_cmd_ablation)

    def add_model_options(p: argparse.ArgumentParser,
                          default_protocol: str) -> None:
        p.add_argument("app", nargs="?", choices=_MODEL_APPS,
                       help="benchmark app (Figure-5/6/7 workload defaults)")
        p.add_argument("--variant", default="cstar",
                       help="app variant (default: cstar; e.g. spmd, splash)")
        p.add_argument("--protocol", default=default_protocol,
                       choices=["stache", "predictive", "write-update"])
        p.add_argument("--nodes", type=int, default=None)
        p.add_argument("--block-size", type=int, default=None)
        p.add_argument("--page-size", type=int, default=None)
        p.add_argument("--unoptimized", action="store_true",
                       help="ignore compiler directives (the paper's "
                            "baseline)")
        p.add_argument("--calibration", metavar="PATH",
                       help="calibration document to predict with (default: "
                            "<--dir>/MODEL_calibration.json when present)")
        p.add_argument("--uncalibrated", action="store_true",
                       help="predict with the identity calibration even if a "
                            "committed one exists")
        p.add_argument("--dir", default="benchmarks",
                       help="artifact directory (default: benchmarks)")

    p = sub.add_parser(
        "model",
        help="predict a run's statistics in closed form (no event loop); "
             "calibrate against, or cross-validate over, the simulator",
    )
    add_model_options(p, "predictive")
    p.add_argument("--validate", action="store_true",
                   help="also simulate the same configuration and print "
                        "model vs. simulated side by side")
    p.add_argument("--calibrate", action="store_true",
                   help="fit per-protocol residual coefficients from short "
                        "reference sims; write <--dir>/MODEL_calibration.json")
    p.add_argument("--suite", action="store_true",
                   help="cross-validate model vs. sim over the full "
                        "Figure-5/6/7 matrix plus the sweep demonstration; "
                        "exit 1 outside the committed error budgets")
    p.add_argument("--quick", action="store_true",
                   help="with --suite: the scaled-down CI subset")
    p.add_argument("--timing", action="store_true",
                   help="with --suite: record measured wall-clock seconds "
                        "and sweep speedup under the 'measured' key (the "
                        "one machine-dependent part of the document)")
    p.add_argument("--write", action="store_true",
                   help="with --suite: write <--dir>/MODEL_validation.json")
    p.add_argument("--check", action="store_true",
                   help="with --suite: gate the fresh run against the "
                        "committed MODEL_validation.json; exit 1 on "
                        "regression")
    p.add_argument("--json", metavar="PATH",
                   help="write the prediction (repro.run-stats/v1 JSON) "
                        "to PATH")
    p.set_defaults(fn=_cmd_model)

    p = sub.add_parser(
        "sweep",
        help="run a Cartesian machine-parameter grid over an app; "
             "--model makes it instant (closed-form, one cached walk)",
    )
    add_model_options(p, "stache")
    p.add_argument("--axis", action="append", metavar="NAME=V1,V2,...",
                   help="one grid axis (repeatable): protocol, n_nodes, "
                        "block_size, msg_latency, per_byte_cost, "
                        "fault_cost, handler_cost")
    p.add_argument("--model", action="store_true",
                   help="predict each point with repro.model instead of "
                        "simulating it (same document shape, milliseconds "
                        "per grid)")
    p.add_argument("--fast", action="store_true",
                   help="sim backend: run on the compiled fast path")
    p.add_argument("--out", metavar="FILE",
                   help="atomically export the grid as .json or .csv "
                        "(sim- and model-backed grids are byte-comparable)")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="print per-point progress")
    p.set_defaults(fn=_cmd_sweep)

    p = sub.add_parser(
        "reproduce",
        help="run every table, figure, ablation, and sweep; write a report",
    )
    p.add_argument("--output", default="benchmarks/results/REPORT.txt")
    p.add_argument("--json", metavar="PATH",
                   help="also write per-figure run stats "
                        "(repro.reproduce/v1 JSON) to PATH")
    p.add_argument("--metrics-out", metavar="PATH",
                   help="write all figures' merged metrics registry "
                        "(repro.metrics/v1 JSON) to PATH")
    p.add_argument("--trace", metavar="PATH",
                   help="also export a Chrome trace of the optimized water "
                        "run (Figure 7's fastest bar) to PATH")
    p.add_argument("--fast", action="store_true",
                   help="run the figure matrix on the compiled fast path "
                        "(bit-identical; ablations and sweeps stay on the "
                        "reference path)")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="shard the work across N farm worker processes "
                        "(repro.farm; reports are byte-identical to --jobs 1)")
    add_corpus_option(p)
    p.set_defaults(fn=_cmd_reproduce)

    p = sub.add_parser(
        "bench",
        help="time the compiled fast path against the reference path on the "
             "Table-1 workloads; write or check BENCH_*.json snapshots",
    )
    p.add_argument("--quick", action="store_true",
                   help="run the scaled-down CI profile instead of the full "
                        "Table-1 matrix")
    p.add_argument("--repeats", type=int, default=3,
                   help="timing repeats per case (best-of; default 3)")
    p.add_argument("--write", action="store_true",
                   help="write BENCH_baseline.json and BENCH_fastpath.json "
                        "snapshots into --dir")
    p.add_argument("--check", action="store_true",
                   help="compare measured speedups against the committed "
                        "BENCH_fastpath.json in --dir; exit 1 on regression")
    p.add_argument("--tolerance", type=float, default=0.15,
                   help="fractional speedup drop tolerated by --check "
                        "(default 0.15)")
    p.add_argument("--dir", default="benchmarks",
                   help="snapshot directory (default: benchmarks)")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="shard the work across N farm worker processes "
                        "(repro.farm; reports are byte-identical to --jobs 1)")
    p.add_argument("--farm", action="store_true",
                   help="instead of the fast-path matrix, measure the farm's "
                        "worker-scaling curve (verify fuzz, fault campaign, "
                        "and quick bench sweeps at each --jobs-curve point, "
                        "asserting byte-identical reports) and write/check "
                        "BENCH_farm.json")
    p.add_argument("--jobs-curve", default="1,2,4,8", metavar="N,N,...",
                   help="worker counts measured by --farm (default: 1,2,4,8)")
    add_corpus_option(p)
    p.set_defaults(fn=_cmd_bench)

    p = sub.add_parser("audit", help="audit protocol transition tables")
    p.set_defaults(fn=_cmd_audit)

    def add_multihost_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--hosts", type=int, default=0, metavar="N",
                       help="farm the campaign over N remote worker agents "
                            "connected via TCP (repro farm-worker); reports "
                            "are byte-identical to --jobs 1")
        p.add_argument("--bind", default="127.0.0.1",
                       help="address the farm coordinator listens on with "
                            "--hosts (default: 127.0.0.1)")
        p.add_argument("--port", type=int, default=0,
                       help="listen port for --hosts (default: 0 = "
                            "OS-assigned, printed at startup)")
        p.add_argument("--chaos-seed", type=int, default=None, metavar="SEED",
                       help="with --hosts, inject seeded drop/dup/delay/"
                            "disconnect chaos into the farm's own transport "
                            "(the report must not change)")

    p = sub.add_parser(
        "verify",
        help="fuzz the protocols under adversarial interleavings with the "
             "coherence-invariant monitor and differential oracle",
    )
    p.add_argument("--seeds", type=int, default=50,
                   help="number of fuzz seeds (each = one workload + one "
                        "interleaving per protocol)")
    p.add_argument("--protocols",
                   help="comma-separated subset of stache,write-update,predictive")
    p.add_argument("--replay", type=int, metavar="SEED",
                   help="re-run exactly one seed (as printed in a violation)")
    p.add_argument("--dfs", type=int, metavar="N", default=0,
                   help="also model-check: enumerate up to N interleavings "
                        "per protocol by bounded DFS")
    p.add_argument("--dfs-seeds", type=int, default=3,
                   help="workload seeds to model-check under --dfs")
    p.add_argument("--dfs-depth", type=int, default=10,
                   help="branching depth bound for --dfs")
    p.add_argument("--traces", default="examples/traces",
                   help="directory of bundled session traces to replay "
                        "under every protocol (skipped if missing)")
    p.add_argument("--no-traces", action="store_true",
                   help="skip bundled-trace verification")
    p.add_argument("--no-shrink", action="store_true",
                   help="skip counterexample minimization")
    p.add_argument("--regen-traces", action="store_true",
                   help="regenerate the bundled traces under --traces and exit")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="shard the work across N farm worker processes "
                        "(repro.farm; reports are byte-identical to --jobs 1)")
    p.add_argument("--report-out", metavar="PATH",
                   help="write the campaign report as canonical JSON to PATH "
                        "(byte-identical across --jobs values; CI diffs it)")
    p.add_argument("--farm-events", metavar="PATH",
                   help="with --jobs > 1, write the farm's lifecycle events "
                        "(farm.* dispatch/steal/retry) as JSON lines to PATH")
    add_multihost_options(p)
    add_corpus_option(p)
    p.set_defaults(fn=_cmd_verify)

    p = sub.add_parser(
        "faults",
        help="run the fault-injection campaign: every fault plan against "
             "generated and bundled workloads, with minimal-reproducer "
             "shrinking for failures",
    )
    p.add_argument("--plans",
                   help="comma-separated subset of the bundled fault plans "
                        "(default: all; see --list-plans)")
    p.add_argument("--seeds", type=int, default=2,
                   help="number of generated fuzz workloads")
    p.add_argument("--variants", type=int, default=1,
                   help="reseedings of each plan per workload")
    p.add_argument("--protocols",
                   help="comma-separated subset of stache,write-update,predictive")
    p.add_argument("--traces", default="examples/traces",
                   help="directory of bundled session traces "
                        "(skipped if missing)")
    p.add_argument("--no-traces", action="store_true",
                   help="skip the bundled traces")
    p.add_argument("--no-shrink", action="store_true",
                   help="skip minimal-reproducer shrinking on failure")
    p.add_argument("--crash", action="store_true",
                   help="run the crash-stop plans (node failures with "
                        "detection, recovery, and restart)")
    p.add_argument("--dump-scripts", metavar="DIR",
                   help="write each failure's scripted reproducer (shrunk "
                        "when possible) as JSON into DIR")
    p.add_argument("--list-plans", action="store_true",
                   help="list the bundled fault plans and exit")
    p.add_argument("--metrics-out", metavar="PATH",
                   help="write the metrics registry of one representative "
                        "faulted run (repro.metrics/v1 JSON) to PATH")
    p.add_argument("--trace", metavar="PATH",
                   help="export a Chrome trace of one representative "
                        "faulted run to PATH")
    p.add_argument("--fast", action="store_true",
                   help="run the campaign's FIFO replays on the compiled "
                        "fast path (bit-identical)")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="shard the work across N farm worker processes "
                        "(repro.farm; reports are byte-identical to --jobs 1)")
    p.add_argument("--report-out", metavar="PATH",
                   help="write the campaign report as canonical JSON to PATH "
                        "(byte-identical across --jobs values; CI diffs it)")
    p.add_argument("--farm-events", metavar="PATH",
                   help="with --jobs > 1, write the farm's lifecycle events "
                        "(farm.* dispatch/steal/retry) as JSON lines to PATH")
    add_multihost_options(p)
    add_corpus_option(p)
    p.set_defaults(fn=_cmd_faults)

    p = sub.add_parser(
        "farm-worker",
        help="run a farm worker agent: connect to a coordinator started "
             "with --hosts and execute campaign jobs on this machine",
    )
    p.add_argument("--connect", required=True, metavar="HOST:PORT",
                   help="the coordinator's listen address (printed by the "
                        "campaign command when --hosts is given)")
    p.add_argument("--label", default=None,
                   help="stable identity this agent presents to the "
                        "coordinator (default: hostname-pid derived)")
    p.add_argument("--heartbeat", type=float, default=0.5,
                   help="heartbeat period in seconds (default: 0.5)")
    p.add_argument("--watchdog", type=float, default=3.0,
                   help="declare the link dead after this many seconds of "
                        "silence (default: 3.0)")
    p.add_argument("--connect-timeout", type=float, default=120.0,
                   help="give up if no coordinator is reachable for this "
                        "many seconds (default: 120)")
    p.add_argument("--connect-attempts", type=int, default=None, metavar="N",
                   help="also give up after N consecutive failed dial "
                        "attempts (default: unbounded; the attempt counter "
                        "resets every time the agent attaches)")
    p.set_defaults(fn=_cmd_farm_worker)

    p = sub.add_parser(
        "corpus",
        help="operate on a durable schedule corpus directory",
    )
    csub = p.add_subparsers(dest="corpus_command", required=True)
    d = csub.add_parser(
        "doctor",
        help="inspect a corpus: replay its segments (recovering torn tails "
             "and quarantining damaged records, exactly as a run would), "
             "report entries and quarantine contents, and exit 0 = healthy, "
             "1 = damage found/recovered, 2 = unusable",
    )
    d.add_argument("dir", help="corpus directory")
    d.add_argument("--compact", action="store_true",
                   help="rewrite live entries into one fresh segment and "
                        "drop superseded segment files")
    d.add_argument("--scrub", action="store_true",
                   help="delete quarantined records after inspection")
    d.set_defaults(fn=_cmd_corpus_doctor)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as e:
        print(f"error: {e}", file=sys.stderr)
        return 1
    except FileNotFoundError as e:
        print(f"error: {e}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
