"""Tests for trace statistics."""

import pytest

from repro.tempest.machine import PhaseTrace
from repro.tempest.tracestats import TraceStats


def trace(*node_ops):
    return PhaseTrace("t", list(node_ops))


class TestCounting:
    def test_empty(self):
        s = TraceStats.of(trace([], []))
        assert s.accesses == 0
        assert s.unique_blocks == 0
        assert s.phases == 1

    def test_reads_writes_compute(self):
        s = TraceStats.of(trace([("r", 1), ("c", 50.0), ("w", 2)], [("r", 1)]))
        assert s.reads == 2
        assert s.writes == 1
        assert s.compute_cycles == 50.0
        assert s.unique_blocks == 2

    def test_multiple_traces_merge(self):
        s = TraceStats.of([trace([("r", 1)], []), trace([], [("w", 1)])])
        assert s.phases == 2
        assert s.block_nodes[1] == {0, 1}


class TestSharing:
    def test_shared_blocks(self):
        s = TraceStats.of(trace([("r", 1), ("r", 2)], [("r", 1)]))
        assert s.shared_blocks() == [1]

    def test_multi_writer_blocks(self):
        s = TraceStats.of(trace([("w", 5)], [("w", 5)], [("w", 6)]))
        assert s.multi_writer_blocks() == [5]

    def test_sharing_histogram(self):
        s = TraceStats.of(trace([("r", 1), ("r", 2)], [("r", 1)], [("r", 1)]))
        assert s.sharing_histogram() == {1: 1, 3: 1}

    def test_report_renders(self):
        s = TraceStats.of(trace([("r", 1), ("c", 10)], [("w", 1)]))
        text = s.report()
        assert "trace statistics" in text
        assert "sharing degree" in text


class TestOnRealRuns:
    def test_water_trace_shape(self):
        from repro.apps import water
        from repro.core import make_machine
        from repro.util import MachineConfig

        captured = []
        prog = water.build(n=16, iterations=1)
        m = make_machine(MachineConfig(n_nodes=4, page_size=512), "stache")
        from repro.cstar.runtime import CStarRuntime

        orig = CStarRuntime.par_call

        def capture(self, *a, **kw):
            t = orig(self, *a, **kw)
            captured.append(t)
            return t

        CStarRuntime.par_call = capture
        try:
            prog.run(m, optimized=False)
        finally:
            CStarRuntime.par_call = orig
        stats = TraceStats.of(captured)
        assert stats.phases == 2  # interactions + update
        assert stats.reads > stats.writes
        # every molecule's position row is read by several nodes
        assert len(stats.shared_blocks()) > 0
        # home-only writes: no multi-writer blocks in water's C** version
        assert stats.multi_writer_blocks() == []
