"""Tests for trace replay: hits, misses, barriers, and time conservation."""

import pytest

from repro.sim import TimeCategory
from repro.tempest.machine import PhaseTrace
from repro.tempest.tags import AccessTag
from repro.util import SimulationError

from tests.helpers import run_one_phase, small_machine


class TestHitsAndMisses:
    def test_home_access_is_local_hit(self):
        m, b = small_machine()
        run_one_phase(m, {0: [("r", b), ("w", b)]})
        assert m.stats.local_hits == 2
        assert m.stats.misses == 0

    def test_remote_read_misses_then_hits(self):
        m, b = small_machine()
        run_one_phase(m, {1: [("r", b)]})
        assert m.stats.misses == 1
        run_one_phase(m, {1: [("r", b)]})
        assert m.stats.misses == 1
        assert m.stats.local_hits == 1

    def test_compute_charges_compute_time(self):
        m, b = small_machine()
        run_one_phase(m, {0: [("c", 500)]})
        assert m.nodes[0].stats.cycles[TimeCategory.COMPUTE] == 500

    def test_remote_wait_positive_on_miss(self):
        m, b = small_machine()
        run_one_phase(m, {1: [("r", b)]})
        wait = m.nodes[1].stats.cycles[TimeCategory.REMOTE_WAIT]
        # at least fault + two message flights
        cfg = m.config
        assert wait >= cfg.fault_cost + 2 * cfg.msg_latency

    def test_read_after_remote_write_misses_again(self):
        m, b = small_machine()
        run_one_phase(m, {1: [("r", b)]})          # node 1 caches RO
        run_one_phase(m, {0: [("w", b)]})          # home upgrade invalidates node 1
        run_one_phase(m, {1: [("r", b)]})          # miss again
        assert m.nodes[1].stats.read_misses == 2


class TestBarriers:
    def test_synch_charged_to_early_finisher(self):
        m, b = small_machine()
        run_one_phase(m, {0: [("c", 10)], 1: [("c", 1000)]})
        assert m.nodes[0].stats.cycles[TimeCategory.SYNCH] > \
               m.nodes[1].stats.cycles[TimeCategory.SYNCH]

    def test_clock_advances_past_slowest(self):
        m, b = small_machine()
        run_one_phase(m, {1: [("c", 1000)]})
        assert m.clock >= 1000 + m.config.barrier_latency

    def test_phases_accumulate(self):
        m, b = small_machine()
        run_one_phase(m, {0: [("c", 100)]})
        t1 = m.clock
        run_one_phase(m, {0: [("c", 100)]})
        assert m.clock > t1
        assert len(m.stats.phases) == 2


class TestConservation:
    def test_categories_sum_to_wall_time(self):
        m, b = small_machine()
        run_one_phase(m, {0: [("c", 50), ("w", b)], 1: [("r", b), ("c", 10)]})
        run_one_phase(m, {1: [("r", b + 1), ("c", 700)]})
        stats = m.finish()
        stats.check_conservation()

    def test_conservation_with_predictive(self):
        m, b = small_machine("predictive")
        for _ in range(3):
            m.begin_group(1)
            run_one_phase(m, {1: [("r", b)]})
            m.end_group()
            m.begin_group(2)
            run_one_phase(m, {0: [("w", b)]})
            m.end_group()
        m.finish().check_conservation()


class TestGuards:
    def test_wrong_stream_count_rejected(self):
        m, b = small_machine()
        with pytest.raises(SimulationError):
            m.run_phase(PhaseTrace("bad", [[]]))

    def test_unknown_op_rejected(self):
        m, b = small_machine()
        with pytest.raises(SimulationError):
            run_one_phase(m, {0: [("x", b)]})

    def test_access_order_preserved_per_node(self):
        # write then read of the same home block must both hit
        m, b = small_machine()
        run_one_phase(m, {0: [("w", b), ("r", b), ("w", b + 1)]})
        assert m.stats.local_hits == 3


class TestHorizonCorrectness:
    def test_invalidation_ordering_respected(self):
        """Node 1 holds a copy; node 0's upgrade mid-phase invalidates it;
        node 1's *later* access must miss, despite node 1 running ahead."""
        m, b = small_machine()
        run_one_phase(m, {1: [("r", b)]})  # node 1 caches
        # node 0 upgrades immediately; node 1 computes for a long time and
        # reads afterwards -> the INV lands before node 1's read
        run_one_phase(m, {0: [("w", b)], 1: [("c", 100000), ("r", b)]})
        assert m.nodes[1].stats.read_misses == 2
        m.finish().check_conservation()
