"""Tests for the network model: latency, bandwidth, bulk costs, delivery."""

import pytest

from repro.sim import Engine
from repro.tempest import Message, Network
from repro.util import MachineConfig, SimulationError


@pytest.fixture
def net():
    eng = Engine()
    cfg = MachineConfig(n_nodes=4, msg_latency=100, per_byte_cost=0.5, bulk_msg_overhead=40)
    n = Network(eng, cfg)
    delivered = []
    n.attach(lambda msg, t: delivered.append((msg, t)))
    return eng, n, delivered


class TestFlightTime:
    def test_control_message(self, net):
        _, n, _ = net
        assert n.flight_time(Message("GET_RO", 0, 1)) == 100

    def test_payload_adds_bandwidth_term(self, net):
        _, n, _ = net
        assert n.flight_time(Message("DATA_RO", 0, 1, payload_bytes=32)) == 116

    def test_bulk_adds_startup(self, net):
        _, n, _ = net
        msg = Message("PRESEND_RO", 0, 1, payload_bytes=64, bulk=True)
        assert n.flight_time(msg) == 100 + 32 + 40


class TestDelivery:
    def test_delivers_at_flight_time(self, net):
        eng, n, delivered = net
        n.send(Message("GET_RO", 0, 1), at=50.0)
        eng.run()
        assert len(delivered) == 1
        msg, t = delivered[0]
        assert t == 150.0
        assert msg.send_time == 50.0

    def test_future_send_allowed(self, net):
        eng, n, delivered = net
        # processors run ahead of the event clock; sends from the future are OK
        n.send(Message("GET_RO", 0, 1), at=1e6)
        eng.run()
        assert delivered[0][1] == 1e6 + 100

    def test_counts_traffic(self, net):
        eng, n, _ = net
        n.send(Message("DATA_RO", 0, 1, payload_bytes=32), at=0.0)
        n.send(Message("GET_RO", 1, 0), at=0.0)
        eng.run()
        assert n.messages_delivered == 2
        assert n.bytes_delivered == 32

    def test_self_send_rejected(self, net):
        _, n, _ = net
        with pytest.raises(SimulationError):
            n.send(Message("GET_RO", 2, 2), at=0.0)

    def test_bad_endpoint_rejected(self, net):
        _, n, _ = net
        with pytest.raises(SimulationError):
            n.send(Message("GET_RO", 0, 9), at=0.0)

    def test_unattached_network_rejects(self):
        n = Network(Engine(), MachineConfig())
        with pytest.raises(SimulationError):
            n.send(Message("GET_RO", 0, 1), at=0.0)

    def test_fifo_per_timestamp(self, net):
        eng, n, delivered = net
        for i in range(5):
            m = Message("GET_RO", 0, 1)
            m.info["i"] = i
            n.send(m, at=0.0)
        eng.run()
        assert [m.info["i"] for m, _ in delivered] == list(range(5))


class TestNodeOccupancy:
    def test_handler_fifo(self):
        from repro.tempest import Node

        node = Node(3)
        assert node.service_handler(arrival=100.0, cost=50.0) == 150.0
        # second message arrives while busy: queued behind
        assert node.service_handler(arrival=120.0, cost=50.0) == 200.0
        # idle gap: starts at arrival
        assert node.service_handler(arrival=500.0, cost=10.0) == 510.0
